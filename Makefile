PYTHON ?= python
export PYTHONPATH := src

.PHONY: test check check-concur bench-smoke bench bench-pipeline bench-lanes bench-links bench-health bench-e7 lint stats monitor

## Tier-1: the full unit/integration suite (tests/ only).
test:
	$(PYTHON) -m pytest -x -q

## lexcheck: static analysis of the shipped mapping configuration
## (docs/ANALYSIS.md).  Fails on any unsuppressed warning or error.
check:
	$(PYTHON) -m repro check --fail-on=warning

## LX5xx: concurrency lints over the runtime source (docs/CONCURRENCY.md)
## plus the witness-enabled threaded stress tests.  Fails on any
## unsuppressed warning or error, or on a witness.violation.
check-concur:
	$(PYTHON) -m repro check --concurrency --fail-on=warning
	$(PYTHON) -m pytest tests/test_threaded_coordinator.py tests/test_stateful_system.py tests/test_lockwitness.py -x -q

## Smoke: one benchmark file with metrics enabled — gates the
## instrumentation overhead of the observability layer.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -m benchmarks -s -p no:cacheprovider

## Serial vs concurrent device fan-out throughput; writes BENCH_pipeline.json.
bench-pipeline:
	$(PYTHON) -m pytest benchmarks/test_pipeline_throughput.py -m benchmarks -s -p no:cacheprovider

## Coordinator-lane sweep (1/2/4/8 lanes, partition-disjoint workload);
## writes BENCH_lanes.json (docs/CONCURRENCY.md).
bench-lanes:
	$(PYTHON) -m pytest benchmarks/test_lane_throughput.py -m benchmarks -s -p no:cacheprovider

## Event-driven device links vs thread-per-device fan-out (16 devices,
## 2 ms serial craft channels); writes BENCH_links.json and fails when
## the link layer is < 2x the baseline (docs/DEVICE_LINKS.md).
bench-links:
	$(PYTHON) -m pytest benchmarks/test_links_throughput.py -m benchmarks -s -p no:cacheprovider

## Health-plane overhead: pipeline throughput with the journal + health
## board + background auditor on vs observability off; writes
## BENCH_health.json and fails on > 5% regression.
bench-health:
	$(PYTHON) -m pytest benchmarks/test_health_overhead.py -m benchmarks -s -p no:cacheprovider

## Rule evaluation engines: interpreter vs compiled closures vs verify
## mode on the E7 image() workload; writes BENCH_e7.json and fails when
## compiled closures are < 2x the interpreter (docs/LEXPRESS_COMPILER.md).
bench-e7:
	$(PYTHON) -m pytest benchmarks/test_e7_compiled.py -m benchmarks -s -p no:cacheprovider

## Static checks (ruff config in pyproject.toml); skips when ruff is absent.
lint:
	@$(PYTHON) -m ruff --version >/dev/null 2>&1 \
		&& $(PYTHON) -m ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping lint"

## The full experiment harness (slow).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Run the demo workload and dump metrics + traces.
stats:
	$(PYTHON) -m repro stats

## Run the demo workload and show the health-plane dashboard.
monitor:
	$(PYTHON) -m repro monitor
