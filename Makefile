PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench stats

## Tier-1: the full unit/integration suite (tests/ only).
test:
	$(PYTHON) -m pytest -x -q

## Smoke: one benchmark file with metrics enabled — gates the
## instrumentation overhead of the observability layer.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -m benchmarks -s -p no:cacheprovider

## The full experiment harness (slow).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Run the demo workload and dump metrics + traces.
stats:
	$(PYTHON) -m repro stats
