"""Shared helpers for the MetaComm experiment harness.

Every module in this directory regenerates one row of the experiment
index in DESIGN.md (the paper has no numeric tables; each experiment
checks the *shape* of a claimed behaviour and reports measurements).
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.schemas import PERSON_CLASSES


def fresh_system(**kwargs) -> MetaComm:
    config = MetaCommConfig(organizations=("Marketing", "R&D"), **kwargs)
    return MetaComm(config)


def person_attrs(cn: str, sn: str, **extra) -> dict:
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


def report(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print one experiment's result table (captured by pytest -s)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def system():
    return fresh_system()
