"""Ablation A1 — What LTAP locking buys (sections 4.3/4.4).

The paper adds entry locks so that "no other LDAP update to this object is
allowed to proceed until the UM completes the update sequence".  We remove
the locks and show the failure mode they prevent: concurrent writers
interleave with in-flight trigger processing, and the device ends up
disagreeing with the directory (a lost update).
"""

import threading

from conftest import fresh_system, person_attrs, report

from repro.ldap import Modification

ROWS: list[tuple] = []


def _disable_locks(system) -> None:
    """Ablate: turn the lock manager into a no-op."""
    system.gateway.locks.acquire = lambda dn, owner, timeout=None: None
    system.gateway.locks.release = lambda dn, owner: None


def _race(system, rounds: int = 30) -> int:
    """Two threads race on the *same* attribute of the same entry;
    returns the number of rounds where the device ended up holding a value
    the directory does not (a lost update at the device)."""
    conn_a = system.connection()
    conn_b = system.connection()
    dn = "cn=Hot,o=Marketing,o=Lucent"
    mismatches = 0
    for i in range(rounds):
        barrier = threading.Barrier(2, timeout=5)

        def write(conn, value):
            try:
                barrier.wait()
                conn.modify(dn, [Modification.replace("definityRoom", value)])
            except Exception:
                pass

        t1 = threading.Thread(target=write, args=(conn_a, f"A{i}"))
        t2 = threading.Thread(target=write, args=(conn_b, f"B{i}"))
        t1.start(); t2.start()
        t1.join(); t2.join()
        entry = system.connection().get(dn)
        station = system.pbx().station("4100")
        if entry.first("definityRoom") != station.get("Room"):
            mismatches += 1
    return mismatches


def _fresh_hot_system():
    system = fresh_system(lock_timeout=5.0)
    system.connection().add(
        "cn=Hot,o=Marketing,o=Lucent",
        person_attrs("Hot", "H", definityExtension="4100"),
    )
    return system


def test_a1_with_locks_no_lost_updates(benchmark):
    def run():
        system = _fresh_hot_system()
        return _race(system, rounds=10), system

    mismatches, system = benchmark.pedantic(run, rounds=1)
    assert mismatches == 0
    assert system.consistent()
    ROWS.append(("with LTAP locks", 10, mismatches, system.consistent()))


def test_a1_without_locks_interleaving_appears(benchmark):
    """Without locks the race *can* interleave.  The probabilistic failure
    is made deterministic by injecting a delay inside trigger processing."""
    import time

    def run():
        system = _fresh_hot_system()
        _disable_locks(system)
        # Widen the snapshot→trigger window: with locks this section is
        # serialized per entry, without them the two writers' trigger
        # processing reorders against their commit order.
        original_snapshot = system.gateway._snapshot

        def slow_snapshot(dn):
            snap = original_snapshot(dn)
            time.sleep(0.003)
            return snap

        system.gateway._snapshot = slow_snapshot
        return _race(system, rounds=10), system

    mismatches, system = benchmark.pedantic(run, rounds=1)
    ROWS.append(("locks ablated", 10, mismatches, system.consistent()))
    report(
        "A1: lost updates with and without LTAP entry locks",
        ["configuration", "racing rounds", "device/directory mismatches",
         "consistent at end"],
        ROWS,
    )
    # Shape: the unlocked system exhibits interleaving the locked one
    # never does.  (The final mismatch count may self-heal on the last
    # round, so assert on the observation count.)
    assert mismatches >= 1, "expected at least one interleaving without locks"
