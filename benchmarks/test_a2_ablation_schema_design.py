"""Ablation A2 — Integrated schema design (section 5.2).

The paper's first design stored each device's data in a *child entry* of
the person; "the lack of transactions in LDAP forced us to give up this
technique", because person+child updates cannot be applied atomically.
The shipped design uses one auxiliary class per device so every read/write
unit is a single entry.

This ablation demonstrates all three corners:

* child-entry design, plain LDAP: a crash between the two updates strands
  a half-updated pair (the failure that killed the design);
* auxiliary-class design: the same logical update is one atomic operation;
* child-entry design *with* the section-5.3 site-transaction extension:
  the original design becomes viable, exactly as the paper predicts
  ("If LDAP were extended with transactions, the original solution would
  be viable as well").
"""

from conftest import report

from repro.ldap import (
    DN,
        LdapConnection,
    LdapServer,
    Modification,
)

ROWS: list[tuple] = []


class MidPairCrash(RuntimeError):
    pass


def build_server() -> LdapServer:
    server = LdapServer(["o=L"])
    conn = LdapConnection(server)
    conn.add("o=L", {"objectClass": "organization", "o": "L"})
    return server


def seed_child_design(conn: LdapConnection) -> None:
    conn.add(
        "cn=P,o=L",
        {"objectClass": "person", "cn": "P", "sn": "P", "description": "v1"},
    )
    conn.add(
        "cn=pbx,cn=P,o=L",
        {"objectClass": "person", "cn": "pbx", "sn": "-",
         "telephoneNumber": "4100", "description": "v1"},
    )


def test_a2_child_entry_design_crash_strands_pair(benchmark):
    """Parent and child must both move from v1 to v2; a crash between the
    two plain LDAP operations leaves a mixed state."""

    def run():
        server = build_server()
        conn = LdapConnection(server)
        seed_child_design(conn)
        try:
            conn.modify("cn=P,o=L", [Modification.replace("description", "v2")])
            raise MidPairCrash()  # the UM dies here
            # never reached:
            conn.modify("cn=pbx,cn=P,o=L", [Modification.replace("description", "v2")])
        except MidPairCrash:
            pass
        parent = conn.get("cn=P,o=L").first("description")
        child = conn.get("cn=pbx,cn=P,o=L").first("description")
        return parent, child

    parent, child = benchmark.pedantic(run, rounds=3)
    assert (parent, child) == ("v2", "v1")  # the stranded mixed state
    ROWS.append(("child entries, plain LDAP", "2 ops", "yes (v2/v1 mix)"))


def test_a2_auxiliary_class_design_atomic(benchmark):
    """The shipped design: both 'sides' live on one entry, so the same
    logical update is a single atomic Modify — no window exists."""

    def run():
        server = build_server()
        conn = LdapConnection(server)
        conn.add(
            "cn=P,o=L",
            {"objectClass": "person", "cn": "P", "sn": "P",
             "description": "v1", "telephoneNumber": "4100"},
        )
        # One operation covers person + device data; a crash before it
        # changes nothing, a crash after it changes everything.
        conn.modify(
            "cn=P,o=L",
            [
                Modification.replace("description", "v2"),
                Modification.replace("telephoneNumber", "4200"),
            ],
        )
        entry = conn.get("cn=P,o=L")
        return entry.first("description"), entry.first("telephoneNumber")

    desc, phone = benchmark.pedantic(run, rounds=3)
    assert (desc, phone) == ("v2", "4200")
    ROWS.append(("auxiliary classes (shipped)", "1 op", "no"))


def test_a2_child_entry_design_with_site_transactions(benchmark):
    """With the section-5.3 extension the original design works: the pair
    commits atomically, and a failure rolls the whole pair back."""

    def run():
        server = build_server()
        conn = LdapConnection(server)
        seed_child_design(conn)
        with server.backend.transaction() as txn:
            txn.modify(
                DN.parse("cn=P,o=L"), [Modification.replace("description", "v2")]
            )
            txn.modify(
                DN.parse("cn=pbx,cn=P,o=L"),
                [Modification.replace("description", "v2")],
            )
        parent = conn.get("cn=P,o=L").first("description")
        child = conn.get("cn=pbx,cn=P,o=L").first("description")

        # And the failure case: nothing moves.
        try:
            with server.backend.transaction() as txn:
                txn.modify(
                    DN.parse("cn=P,o=L"), [Modification.replace("description", "v3")]
                )
                txn.modify(
                    DN.parse("cn=ghost,cn=P,o=L"),
                    [Modification.replace("description", "v3")],
                )
        except Exception:
            pass
        parent_after_abort = conn.get("cn=P,o=L").first("description")
        return parent, child, parent_after_abort

    parent, child, parent_after_abort = benchmark.pedantic(run, rounds=3)
    assert (parent, child) == ("v2", "v2")
    assert parent_after_abort == "v2"  # the aborted v3 pair fully rolled back
    ROWS.append(("child entries + site transactions", "1 txn", "no"))
    report(
        "A2: schema designs vs the crash window (section 5.2)",
        ["design", "update unit", "crash window"],
        ROWS,
    )
