"""Ablation A3 — Failure policy: abort+log vs saga compensation.

Section 4.4 ships abort-and-log ("the update is aborted, an error is
logged into the directory, and a notification is sent to the
administrator") and sketches the future saga version ("use pre-update
information to attempt to undo device updates").  Both are implemented;
this ablation compares the residue each policy leaves after the same
injected failures: orphaned device records for abort+log (manual cleanup
debt), none for sagas — at the price of extra compensation operations.
"""

from conftest import person_attrs, report

from repro.core import MetaComm, MetaCommConfig
from repro.devices import InvalidFieldError

ROWS: list[tuple] = []
FAILURES = 10


def run_faulty_workload(undo: bool):
    system = MetaComm(
        MetaCommConfig(organizations=("Ops",), undo_on_failure=undo)
    )
    conn = system.connection()
    # The messaging platform rejects every provisioning attempt.
    system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
        InvalidFieldError("subscriber limit reached")
    )
    for i in range(FAILURES):
        conn.add(
            f"cn=U{i},o=Ops,o=Lucent",
            person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
        )
    return system


def test_a3_abort_and_log_leaves_orphans(benchmark):
    system = benchmark.pedantic(
        lambda: run_faulty_workload(undo=False), rounds=1
    )
    orphans = system.pbx().size()  # stations whose sequence aborted
    assert orphans == FAILURES
    assert len(system.error_log) == FAILURES
    assert system.um.statistics["compensated"] == 0
    ROWS.append(
        ("abort + log (shipped)", FAILURES, orphans, 0, len(system.error_log))
    )


def test_a3_saga_leaves_no_orphans(benchmark):
    system = benchmark.pedantic(
        lambda: run_faulty_workload(undo=True), rounds=1
    )
    orphans = system.pbx().size()
    assert orphans == 0
    assert system.um.statistics["compensated"] == FAILURES
    assert len(system.error_log) == FAILURES  # failures still reported
    ROWS.append(
        (
            "saga compensation (future work)",
            FAILURES,
            orphans,
            system.um.statistics["compensated"],
            len(system.error_log),
        )
    )
    report(
        "A3: residue after 10 failed update sequences",
        ["policy", "failures", "orphaned device records",
         "compensations", "errors logged"],
        ROWS,
    )
