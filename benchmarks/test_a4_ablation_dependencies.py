"""Ablation A4 — lexpress dependency analysis on vs off.

The compiler records the source attributes each rule reads; the
translation path uses those sets to (a) skip mappings untouched by a
modify and (b) re-evaluate only affected rules in the closure.  We ablate
the analysis (pretend every rule depends on everything) and measure the
extra evaluation work on a realistic modify-heavy stream.
"""

import pytest
from conftest import report

from repro.lexpress import UpdateDescriptor, UpdateOp
from repro.lexpress.mapping import CompiledMapping
from repro.schemas import standard_mappings

ROWS: list[tuple] = []


def make_descriptors(n: int) -> list[UpdateDescriptor]:
    """A stream of small modifies: one attribute changes at a time."""
    out = []
    for i in range(n):
        field, old, new = [
            ("Room", "1A", f"R{i}"),
            ("COS", "1", str(i % 9 + 1)),
            ("Port", "01A0101", "01A0202"),
        ][i % 3]
        base = {"Extension": "4100", "Name": "Doe, John", field: old}
        changed = dict(base)
        changed[field] = new
        out.append(
            UpdateDescriptor(UpdateOp.MODIFY, "pbx", "4100", old=base, new=changed)
        )
    return out


def ablate_dependencies(mapping: CompiledMapping) -> CompiledMapping:
    """Return a clone whose every rule claims to depend on everything."""
    import copy

    clone = copy.copy(mapping)
    all_deps = frozenset().union(*(r.deps for r in mapping.rules))

    class _FatRule:
        def __init__(self, rule):
            self.target = rule.target
            self.code = rule.code

        @property
        def deps(self):
            return all_deps

    clone.rules = tuple(_FatRule(r) for r in mapping.rules)
    return clone


COUNTER = {"evaluations": 0}


def counting_execute(original_execute):
    def wrapper(code, attrs, value=None):
        COUNTER["evaluations"] += 1
        return original_execute(code, attrs, value)

    return wrapper


@pytest.mark.parametrize("analysis", ["on", "off"])
def test_a4_rule_evaluations(benchmark, analysis, monkeypatch):
    import repro.lexpress.mapping as mapping_module

    mapping = standard_mappings()["pbx_to_ldap"]
    if analysis == "off":
        mapping = ablate_dependencies(mapping)
    descriptors = make_descriptors(60)

    COUNTER["evaluations"] = 0
    monkeypatch.setattr(
        mapping_module, "execute", counting_execute(mapping_module.execute)
    )

    def run():
        for descriptor in descriptors:
            mapping.translate(descriptor)

    benchmark.pedantic(run, rounds=1)
    ROWS.append((analysis, len(descriptors), COUNTER["evaluations"]))
    if analysis == "off":
        on_count = next(r[2] for r in ROWS if r[0] == "on")
        off_count = COUNTER["evaluations"]
        report(
            "A4: lexpress rule evaluations, dependency analysis on vs off",
            ["analysis", "modify descriptors", "rule evaluations"],
            ROWS,
        )
        # Shape: the analysis must cut evaluation work substantially.
        assert on_count < off_count
        assert on_count <= off_count * 0.8
