"""E10 — Device-generated information (section 5.5).

Claim: "when a new extension is added to the messaging platform, a unique
id is created which might be needed in other devices.  In such situations,
the update augmented with the newly generated information might have to be
reapplied ... In MetaComm these cases were simple, because all generated
information is only destined for the LDAP server ... we update the LDAP
Server after all other devices are updated."

We verify the mailbox id lands in the directory within the same update
sequence, that the write-back is ordered after all device updates, and
that the augmentation fixpoint needs exactly one extra pass.
"""

import itertools

from conftest import fresh_system, person_attrs, report

_ext = itertools.count(4100)


def test_e10_mailbox_id_written_back(benchmark):
    system = fresh_system()
    conn = system.connection()

    def add_user():
        ext = str(40000 + next(_ext) % 10000)
        conn.add(
            f"cn=User{ext},o=Marketing,o=Lucent",
            person_attrs(f"User{ext}", "User", definityExtension=ext),
        )
        return ext

    ext = benchmark(add_user)
    entry = system.find_person(f"(definityExtension={ext})")[0]
    mailbox = system.messaging.mailbox_of(f"+1 908 582 {ext}")
    assert entry.get("mpMailboxId") == [mailbox]
    report(
        "E10: device-generated mailbox id folded back into the directory",
        ["metric", "value"],
        [
            ("generated id", mailbox),
            ("in directory", entry.first("mpMailboxId")),
            ("supplemental writes", system.um.statistics["supplemental_writes"]),
        ],
    )


def test_e10_ldap_written_after_devices(benchmark):
    """Ordering: the supplemental LDAP write happens after every device."""
    system = fresh_system()
    conn = system.connection()
    order: list[str] = []

    for binding in system.um.bindings:
        original = binding.filter.apply

        def tracking(update, _orig=original, _name=binding.name):
            order.append(_name)
            return _orig(update)

        binding.filter.apply = tracking

    original_supplemental = system.ldap_filter.apply_supplemental

    def tracking_supplemental(dn, attrs, session=None):
        order.append("ldap-write-back")
        return original_supplemental(dn, attrs, session)

    system.ldap_filter.apply_supplemental = tracking_supplemental

    def add():
        order.clear()
        ext = str(40000 + next(_ext) % 10000)
        conn.add(
            f"cn=Order{ext},o=Marketing,o=Lucent",
            person_attrs(f"Order{ext}", "O", definityExtension=ext),
        )

    benchmark(add)
    assert order[-1] == "ldap-write-back"
    assert set(order[:-1]) == {"definity", "messaging"}


def test_e10_generated_ids_unique_across_population(benchmark):
    system = fresh_system()
    conn = system.connection()

    def add_batch():
        ids = []
        for i in range(20):
            ext = str(40000 + next(_ext) % 10000)
            conn.add(
                f"cn=Batch{ext},o=Marketing,o=Lucent",
                person_attrs(f"Batch{ext}", "B", definityExtension=ext),
            )
            (entry,) = system.find_person(f"(definityExtension={ext})")
            ids.append(entry.first("mpMailboxId"))
        return ids

    ids = benchmark.pedantic(add_batch, rounds=1)
    assert len(set(ids)) == len(ids)
    assert all(i and i.startswith("MB-") for i in ids)
