"""E11 — LTAP locking under contention (sections 4.3/4.4).

Claims: LTAP "provides locking facilities, forbidding updates to an entry
while trigger processing is being performed on that entry"; conflicting
LDAP updates are blocked "until the UM completes the update sequence";
independent entries do not contend.  We measure lost updates (none),
blocking behaviour, and lock-manager throughput.
"""

import threading

from conftest import fresh_system, person_attrs, report

from repro.ldap import DN, LdapError, Modification
from repro.ltap import LockManager


def test_e11_no_lost_updates_under_contention(benchmark):
    """Many threads update the same entry through LTAP; every successful
    write is serialized by the entry lock — final state equals some
    write, and the device agrees with the directory."""

    def setup():
        system = fresh_system(lock_timeout=5.0)
        system.connection().add(
            "cn=Hot,o=Marketing,o=Lucent",
            person_attrs("Hot", "H", definityExtension="4100"),
        )
        return (system,), {}

    def hammer(system):
        errors = []

        def writer(worker):
            conn = system.connection()
            for i in range(5):
                try:
                    conn.modify(
                        "cn=Hot,o=Marketing,o=Lucent",
                        [Modification.replace("definityCOS", str(worker))],
                    )
                except LdapError as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(1, 5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return system, errors

    system, errors = benchmark.pedantic(hammer, setup=setup, rounds=3)
    assert errors == []
    entry = system.connection().get("cn=Hot,o=Marketing,o=Lucent")
    cos = entry.first("definityCOS")
    assert cos in {"1", "2", "3", "4"}
    # The device converged to the same final write.
    assert system.pbx().station("4100")["COS"] == cos
    assert system.gateway.locks.held_count() == 0
    report(
        "E11: contended same-entry updates",
        ["metric", "value"],
        [
            ("writers x writes", "4 x 5"),
            ("lost updates", 0),
            ("lock acquisitions", system.gateway.locks.statistics["acquired"]),
            ("contended acquisitions", system.gateway.locks.statistics["contended"]),
        ],
    )


def test_e11_conflicting_update_blocked_while_sequence_runs(benchmark):
    """A writer hitting a locked entry gets BUSY after the timeout."""
    system = fresh_system(lock_timeout=0.02)
    system.connection().add(
        "cn=Hot,o=Marketing,o=Lucent",
        person_attrs("Hot", "H", definityExtension="4100"),
    )
    release = threading.Event()
    entered = threading.Event()
    from repro.ltap import Trigger

    def slow(event):
        entered.set()
        release.wait(5)

    system.gateway.register_trigger(Trigger(action=slow, name="slow"))
    t = threading.Thread(
        target=lambda: system.connection().modify(
            "cn=Hot,o=Marketing,o=Lucent",
            [Modification.replace("definityRoom", "X")],
        )
    )
    t.start()
    entered.wait(5)

    def blocked_probe():
        try:
            system.connection().modify(
                "cn=Hot,o=Marketing,o=Lucent",
                [Modification.replace("definityCOS", "3")],
            )
            return False
        except LdapError:
            return True

    blocked = benchmark(blocked_probe)
    release.set()
    t.join()
    assert blocked


def test_e11_lock_manager_throughput(benchmark):
    """Raw acquire/release cost of the per-DN lock manager."""
    locks = LockManager()
    dn = DN.parse("cn=X,o=Lucent")
    owner = object()

    def cycle():
        locks.acquire(dn, owner)
        locks.release(dn, owner)

    benchmark(cycle)
    assert not locks.is_locked(dn)


def test_e11_independent_entries_parallel(benchmark):
    """Updates to different entries never contend for the same lock."""

    def setup():
        system = fresh_system()
        conn = system.connection()
        for i in range(4):
            conn.add(
                f"cn=U{i},o=Marketing,o=Lucent",
                person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
            )
        return (system,), {}

    def parallel_writers(system):
        threads = []
        for i in range(4):
            conn = system.connection()
            threads.append(
                threading.Thread(
                    target=conn.modify,
                    args=(
                        f"cn=U{i},o=Marketing,o=Lucent",
                        [Modification.replace("definityRoom", f"R{i}")],
                    ),
                )
            )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return system

    system = benchmark.pedantic(parallel_writers, setup=setup, rounds=3)
    assert system.gateway.locks.statistics["contended"] == 0
    assert system.consistent()
