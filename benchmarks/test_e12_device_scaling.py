"""E12 — Scalability in the number of integrated data sources.

Claim (section 7): "We are currently investigating its scalability by
adding new data sources."  We carry the investigation out: deployments
with 1, 2, 4 and 8 PBXes (plus the messaging platform) receive the same
update; per-update propagation cost should grow at most linearly in the
number of devices, and partitioning keeps irrelevant devices untouched
(translate-and-skip, no device I/O).
"""

import itertools

import pytest
from conftest import person_attrs, report

from repro.core import MetaComm, MetaCommConfig, PbxConfig

ROWS: list[tuple] = []
_serial = itertools.count()


def build_system(n_pbx: int) -> MetaComm:
    # Split extension space 4000-4999 into n_pbx prefix ranges like
    # 40xx-41xx..., using 2-digit prefixes.
    prefixes_per_pbx = 10 // n_pbx
    pbxes = []
    for i in range(n_pbx):
        prefixes = tuple(
            f"4{j}" for j in range(i * prefixes_per_pbx, (i + 1) * prefixes_per_pbx)
        )
        pbxes.append(PbxConfig(f"pbx-{i}", prefixes))
    return MetaComm(MetaCommConfig(organizations=("Marketing",), pbxes=pbxes))


@pytest.mark.parametrize("n_pbx", [1, 2, 4, 8])
def test_e12_fanout_cost_vs_device_count(benchmark, n_pbx):
    system = build_system(n_pbx)
    conn = system.connection()

    def add_user():
        serial = next(_serial)
        ext = str(40000 + serial % 10000)
        conn.add(
            f"cn=S{serial},o=Marketing,o=Lucent",
            person_attrs(f"S{serial}", "S", definityExtension=ext),
        )

    benchmark(add_user)

    # Partitioning: each user landed on exactly one PBX.
    total_stations = sum(p.size() for p in system.pbxes.values())
    people = len(system.find_person("(definityExtension=*)"))
    assert total_stations == people
    assert system.consistent()
    ROWS.append((n_pbx, n_pbx + 1, total_stations))
    if n_pbx == 8:
        report(
            "E12: devices in the deployment vs fan-out targets",
            ["PBXes", "devices total (incl. MP)", "stations after run"],
            ROWS,
        )


def test_e12_irrelevant_devices_do_no_io(benchmark):
    """With 4 PBXes, an update inside one partition causes zero device
    operations at the other three (translate yields SKIP)."""
    system = build_system(4)
    conn = system.connection()
    conn.add(
        "cn=Solo,o=Marketing,o=Lucent",
        person_attrs("Solo", "S", definityExtension="4000"),
    )
    before = {
        name: dict(pbx.statistics) for name, pbx in system.pbxes.items()
    }
    counter = itertools.count()

    def modify():
        from repro.ldap import Modification

        conn.modify(
            "cn=Solo,o=Marketing,o=Lucent",
            [Modification.replace("definityRoom", f"R{next(counter) % 997}")],
        )

    benchmark(modify)

    owner = next(
        name for name, pbx in system.pbxes.items() if pbx.manages_extension("4000")
    )
    for name, pbx in system.pbxes.items():
        writes = (
            pbx.statistics["adds"]
            + pbx.statistics["modifies"]
            + pbx.statistics["deletes"]
        )
        before_writes = (
            before[name]["adds"] + before[name]["modifies"] + before[name]["deletes"]
        )
        if name == owner:
            assert writes > before_writes
        else:
            assert writes == before_writes, f"{name} was touched needlessly"
