"""E13 — Directory replication and relaxed write-write consistency.

Claim (section 2): "LDAP servers make extensive use of replication to make
directory information highly available ... Directory systems, such as
LDAP, maintain a relaxed write-write consistency by ensuring that updates
eventually result in the same values for object attributes being present
in each copy of the object."  (Section 4 extends the same model to the
meta-directory.)

We benchmark multi-master propagation, verify convergence under
conflicting writes, and show a read replica soaking up load behind the
LTAP-fronted master (the availability story).
"""

import pytest
from conftest import report

from repro.ldap import LdapConnection, LdapServer, Modification, Scope
from repro.ldap.replication import ReplicationEngine
from repro.ltap import LtapGateway

ROWS: list[tuple] = []


def make_master(sid: str) -> LdapServer:
    server = LdapServer(["o=Lucent"], server_id=sid)
    LdapConnection(server).add(
        "o=Lucent", {"objectClass": "organization", "o": "Lucent"}
    )
    return server


@pytest.mark.parametrize("n_masters", [2, 3, 4])
def test_e13_mesh_convergence(benchmark, n_masters):
    def setup():
        servers = [make_master(f"m{i}") for i in range(n_masters)]
        engine = ReplicationEngine()
        engine.connect_mesh(servers)
        engine.propagate()
        # Each master takes 10 local writes, including conflicts on a
        # shared entry.
        for i, server in enumerate(servers):
            conn = LdapConnection(server)
            conn.add(
                f"cn=local-{i},o=Lucent",
                {"objectClass": "person", "cn": f"local-{i}", "sn": "L"},
            )
            try:
                conn.add(
                    "cn=shared,o=Lucent",
                    {"objectClass": "person", "cn": "shared", "sn": f"from-{i}"},
                )
            except Exception:
                pass
            for j in range(8):
                conn.modify(
                    f"cn=local-{i},o=Lucent",
                    [Modification.replace("description", f"v{j}")],
                )
        return (servers, engine), {}

    def converge(servers, engine):
        shipped = engine.propagate()
        return servers, engine, shipped

    servers, engine, shipped = benchmark.pedantic(converge, setup=setup, rounds=3)
    assert engine.converged()
    # Every master ends with every entry.
    assert all(s.size() == n_masters + 2 for s in servers)
    ROWS.append((n_masters, shipped, "yes"))
    if n_masters == 4:
        report(
            "E13: multi-master convergence",
            ["masters", "changes shipped in final round", "converged"],
            ROWS,
        )


def test_e13_conflicting_writes_converge_lww(benchmark):
    def setup():
        a, b = make_master("a"), make_master("b")
        engine = ReplicationEngine()
        engine.connect_mesh([a, b])
        LdapConnection(a).add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        engine.propagate()
        # Conflicting writes to the same attribute on both masters.
        LdapConnection(a).modify(
            "cn=X,o=Lucent", [Modification.replace("description", "from-a")]
        )
        LdapConnection(b).modify(
            "cn=X,o=Lucent", [Modification.replace("description", "from-b")]
        )
        return (a, b, engine), {}

    def converge(a, b, engine):
        engine.propagate()
        return a, b, engine

    a, b, engine = benchmark.pedantic(converge, setup=setup, rounds=3)
    assert engine.converged()
    va = a.get("cn=X,o=Lucent").first("description")
    vb = b.get("cn=X,o=Lucent").first("description")
    assert va == vb
    assert va in ("from-a", "from-b")


def test_e13_read_replica_behind_ltap_master(benchmark):
    """Availability deployment: clients write through LTAP to the master;
    a replica absorbs the read load and converges."""
    master = make_master("master")
    replica = make_master("replica")
    engine = ReplicationEngine()
    engine.connect(master, replica)
    engine.propagate()
    gateway = LtapGateway(master)
    writer = LdapConnection(gateway)
    reader = LdapConnection(replica)
    for i in range(20):
        writer.add(
            f"cn=U{i},o=Lucent", {"objectClass": "person", "cn": f"U{i}", "sn": "U"}
        )
    engine.propagate()

    def read_burst():
        return len(reader.search("o=Lucent", Scope.SUB, "(objectClass=person)"))

    count = benchmark(read_burst)
    assert count == 20
    # The master served no reads for this burst; the replica carried them.
    assert replica.statistics["reads"] > 0
    report(
        "E13: read replica offloads the LTAP-fronted master",
        ["node", "reads served", "writes"],
        [
            ("master (behind LTAP)", master.statistics["reads"],
             master.statistics["writes"]),
            ("replica", replica.statistics["reads"], replica.statistics["writes"]),
        ],
    )
