"""E14 — Entry-location cost: equality indexes vs tree scans.

Not a paper table (the paper reports no micro-benchmarks), but it
quantifies the substrate choice behind E5/E12: every Update Manager
fan-out locates the person entry by its device key
(``definityExtension=...``).  An equality index turns that from a subtree
scan into a hash probe, which is what keeps sync and fan-out costs linear
rather than quadratic in directory size.
"""

import pytest
from conftest import report

from repro.ldap import DN, Entry, LdapServer

ROWS: list[tuple] = []


def build(size: int, indexed: bool) -> LdapServer:
    server = LdapServer(["o=L"])
    server.backend.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
    if indexed:
        server.backend.create_index("telephoneNumber")
    for i in range(size):
        server.backend.add(
            Entry(
                f"cn=U{i},o=L",
                {"objectClass": "person", "cn": f"U{i}", "sn": "U",
                 "telephoneNumber": str(10000 + i)},
            )
        )
    return server


@pytest.mark.parametrize("size", [100, 1000, 5000])
@pytest.mark.parametrize("indexed", [False, True])
def test_e14_equality_lookup(benchmark, size, indexed):
    server = build(size, indexed)
    base = DN.parse("o=L")
    probe = str(10000 + size // 2)

    def lookup():
        return server.backend.search(
            base, filter=f"(telephoneNumber={probe})"
        )

    hits = benchmark(lookup)
    assert len(hits) == 1
    mode = "indexed" if indexed else "scan"
    ROWS.append((size, mode))
    if size == 5000 and indexed:
        report(
            "E14: equality lookup configurations (times in benchmark table)",
            ["directory size", "mode"],
            ROWS,
        )


def test_e14_scaling_shape(benchmark):
    """Without timing noise: indexed probes touch O(1) entries, scans O(n)."""
    import time

    measurements = {}
    for indexed in (False, True):
        server = build(4000, indexed)
        base = DN.parse("o=L")

        def burst():
            for i in range(50):
                server.backend.search(
                    base, filter=f"(telephoneNumber={10000 + i})"
                )

        start = time.perf_counter()
        burst()
        measurements["indexed" if indexed else "scan"] = (
            time.perf_counter() - start
        )
    benchmark(lambda: server.backend.search(base, filter="(telephoneNumber=10000)"))
    speedup = measurements["scan"] / measurements["indexed"]
    report(
        "E14: 50 key lookups over 4000 entries",
        ["mode", "seconds", "speedup"],
        [
            ("scan", f"{measurements['scan']:.4f}", "1.0x"),
            ("indexed", f"{measurements['indexed']:.4f}", f"{speedup:.0f}x"),
        ],
    )
    assert speedup > 5, f"index speedup only {speedup:.1f}x"
