"""E15 — Materialized view vs virtual mediator (the section-3 decision).

Claim: "unlike mediators where queries posed against the unified system
are dynamically executed at the various data sources, because of
reliability and performance requirements, MetaComm materializes subsets of
the data from the various sources in an integrated directory."

We implement the mediator baseline (`repro.core.mediator.VirtualMediator`)
and measure both stated reasons:

* **performance** — query latency at growing population sizes;
* **reliability** — behaviour when a device becomes unreachable.
"""

import pytest
from conftest import report

from repro.core import MediatorError, VirtualMediator
from conftest import fresh_system
from repro.workloads import make_population, populate_via_ldap

ROWS: list[tuple] = []


def build(size: int):
    system = fresh_system()
    populate_via_ldap(system, make_population(size))
    mediator = VirtualMediator(system.um.bindings, system.suffix)
    probe = f"(definityExtension={4000 + size // 2})"
    return system, mediator, probe


@pytest.mark.parametrize("size", [20, 100, 400])
def test_e15_materialized_query(benchmark, size):
    system, _mediator, probe = build(size)
    conn = system.connection()

    def query():
        return conn.search(system.suffix, filter=probe)

    hits = benchmark(query)
    assert len(hits) == 1


@pytest.mark.parametrize("size", [20, 100, 400])
def test_e15_virtual_query(benchmark, size):
    _system, mediator, probe = build(size)

    def query():
        return mediator.search(probe)

    hits = benchmark(query)
    assert len(hits) == 1
    if size == 400:
        report(
            "E15: one key lookup, materialized directory vs virtual mediator "
            "(times in benchmark table; shape: virtual re-maps every device "
            "record per query, materialized probes an index)",
            ["population", "virtual records mapped per query"],
            [(size, mediator.statistics["records_mapped"]
              // mediator.statistics["queries"])],
        )


def test_e15_equivalent_answers(benchmark):
    """Both architectures answer identically while everything is up."""
    system, mediator, _probe = build(30)
    conn = system.connection()

    def both():
        materialized = {
            e.first("definityExtension")
            for e in conn.search(system.suffix, filter="(definityExtension=*)")
        }
        virtual = {
            e.first("definityExtension")
            for e in mediator.search("(definityExtension=*)")
        }
        return materialized, virtual

    materialized, virtual = benchmark.pedantic(both, rounds=1)
    assert materialized == virtual


def test_e15_availability_under_device_outage(benchmark):
    """The reliability half of the claim: the mediator dies with its
    sources; the materialized directory keeps answering."""
    system, mediator, probe = build(20)
    conn = system.connection()
    system.messaging.available = False  # the MP goes down

    def materialized_query():
        return conn.search(system.suffix, filter=probe)

    hits = benchmark(materialized_query)
    assert len(hits) == 1  # the directory still answers, mailbox data included
    assert hits[0].first("mpMailboxId", "").startswith("MB-")

    with pytest.raises(MediatorError):
        mediator.search(probe)

    report(
        "E15: answering queries while the messaging platform is down",
        ["architecture", "outcome"],
        [
            ("materialized (MetaComm)", "full answer incl. mailbox data"),
            ("virtual mediator", "query fails: source unavailable"),
        ],
    )
