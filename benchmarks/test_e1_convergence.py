"""E1 — Write-write consistency under mixed update streams.

Claim (sections 4.4/5.1): updates may arrive through LDAP and directly at
the devices; MetaComm "ensures that the repositories converge to the same
values after some delay".  We drive mixed streams at several DDU fractions
and verify that *every* repository holds identical data afterwards, at any
mix — the paper's headline consistency guarantee.
"""

import pytest
from conftest import fresh_system, report

from repro.workloads import apply_stream, make_population, make_stream, populate_via_ldap

RESULTS: list[tuple] = []


@pytest.mark.parametrize("ddu_fraction", [0.0, 0.2, 0.5, 0.8])
def test_e1_mixed_stream_converges(benchmark, ddu_fraction):
    people = make_population(15)
    events_per_round = 60

    def setup():
        system = fresh_system()
        populate_via_ldap(system, people)
        events = make_stream(
            people, events_per_round, ddu_fraction=ddu_fraction, seed=17
        )
        return (system, events), {}

    def run(system, events):
        apply_stream(system, events)
        return system

    system = benchmark.pedantic(run, setup=setup, rounds=3)
    problems = system.inconsistencies()
    assert problems == [], problems

    ddus = system.um.statistics["ddus"]
    RESULTS.append(
        (
            f"{ddu_fraction:.0%}",
            events_per_round,
            ddus,
            system.um.statistics["reapplied"],
            "yes",
        )
    )
    if ddu_fraction == 0.8:
        report(
            "E1: convergence under mixed LDAP/DDU update streams",
            ["DDU fraction", "updates", "DDUs seen", "reapplied", "converged"],
            RESULTS,
        )


def test_e1_interleaved_paths_same_entry(benchmark):
    """The adversarial case: alternate LDAP and DDU updates to one entry."""
    system = fresh_system()
    people = make_population(1)
    populate_via_ldap(system, people)
    person = people[0]
    conn = system.connection()
    dn = system.suffix.child(f"cn={person.cn}")
    from repro.ldap import Modification

    counter = iter(range(100000))

    def ping_pong():
        i = next(counter)
        conn.modify(dn, [Modification.replace("definityCOS", str(i % 9 + 1))])
        system.pbx().modify(
            person.extension, {"Room": f"R{i % 100}"}, agent="craft"
        )

    benchmark(ping_pong)
    assert system.consistent()
