"""E2 — Cost of the reapplication technique.

Claim (section 4.4): "This technique works because a small number of DDUs
are made against any given entry per day" — i.e. the price of write-write
consistency is one conditional reapplication per DDU, and it stays cheap
because DDUs are rare.  We sweep the DDU fraction and show:

* reapplications grow linearly with the number of DDUs (one each);
* per-update cost of a DDU (which loops through LTAP and back) is a small
  constant factor over an LDAP-originated update.
"""

import pytest
from conftest import fresh_system, report

from repro.workloads import (
    apply_stream,
    make_population,
    make_stream,
    populate_via_ldap,
)

ROWS: list[tuple] = []


@pytest.mark.parametrize("ddu_fraction", [0.0, 0.25, 0.5, 1.0])
def test_e2_reapplications_track_ddus(benchmark, ddu_fraction):
    people = make_population(10)

    def setup():
        system = fresh_system()
        populate_via_ldap(system, people)
        events = make_stream(people, 40, ddu_fraction=ddu_fraction, seed=3)
        return (system, events), {}

    def run(system, events):
        apply_stream(system, events)
        return system

    system = benchmark.pedantic(run, setup=setup, rounds=3)
    ddus = system.um.statistics["ddus"]
    reapplied = system.um.statistics["reapplied"]
    # One conditional reapplication per effective DDU, none for LDAP
    # updates.  (A DDU that rewrites a field to its current value is a
    # no-op at the directory and is correctly *not* reapplied, so allow a
    # small shortfall.)
    assert reapplied <= ddus
    assert reapplied >= int(ddus * 0.8)
    binding = system.um.binding("definity")
    assert binding.filter.statistics["conditional"] == reapplied
    ROWS.append((f"{ddu_fraction:.0%}", ddus, reapplied))
    if ddu_fraction == 1.0:
        report(
            "E2: reapplication overhead tracks the DDU count exactly",
            ["DDU fraction", "DDUs", "reapplications"],
            ROWS,
        )


def test_e2_ddu_vs_ldap_cost_ratio(benchmark):
    """A DDU costs more than an LDAP update (it makes the extra trip
    through the LDAP filter and back) but by a modest constant factor."""
    import time

    from repro.ldap import Modification

    system = fresh_system()
    people = make_population(1)
    populate_via_ldap(system, people)
    person = people[0]
    conn = system.connection()
    dn = system.suffix.child(f"cn={person.cn}")

    def time_path(fn, n=200):
        start = time.perf_counter()
        for i in range(n):
            fn(i)
        return (time.perf_counter() - start) / n

    ldap_cost = time_path(
        lambda i: conn.modify(
            dn, [Modification.replace("definityCOS", str(i % 9 + 1))]
        )
    )
    ddu_cost = time_path(
        lambda i: system.pbx().modify(
            person.extension, {"Room": f"R{i % 97}"}, agent="craft"
        )
    )
    ratio = ddu_cost / ldap_cost

    def one_ddu(i=iter(range(10**6))):
        system.pbx().modify(
            person.extension, {"Room": f"Q{next(i) % 97}"}, agent="craft"
        )

    benchmark(one_ddu)
    report(
        "E2: per-update cost, DDU path vs LDAP path",
        ["path", "mean cost (us)"],
        [
            ("LDAP-originated", f"{ldap_cost * 1e6:.0f}"),
            ("device-originated (DDU)", f"{ddu_cost * 1e6:.0f}"),
            ("ratio", f"{ratio:.2f}x"),
        ],
    )
    # Shape: the DDU trip is pricier but not catastrophically so.
    assert ratio < 10, f"DDU/LDAP cost ratio {ratio:.1f} is out of shape"
