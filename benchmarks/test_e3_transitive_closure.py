"""E3 — Transitive closure of attribute mappings.

Claims (section 4.2):

* related attributes update together ("If either changes, lexpress changes
  the other");
* propagation crosses repositories ("it also uses the LDAP-to-MP mapping
  to change the voice mailbox identifier");
* cost scales with the length of the dependency chain, reaching a fixpoint.

We benchmark the paper's own 3-repository web, then sweep synthetic chains
of k schemas to chart cost vs chain length.
"""

import pytest
from conftest import report

from repro.lexpress import ClosureEngine, compile_description
from repro.schemas import standard_mappings

ROWS: list[tuple] = []


def test_e3_paper_web(benchmark):
    """The exact PBX <-> LDAP <-> MP scenario from section 4.2."""
    engine = ClosureEngine(standard_mappings().values())

    def propagate():
        return engine.propagate(
            "pbx",
            {"Extension": "4200", "Name": "Doe, John"},
            changed=["Extension"],
        )

    result = benchmark(propagate)
    ldap = result.image("ldap")
    assert ldap["definityExtension"] == ["4200"]
    assert ldap["telephoneNumber"] == ["+1 908 582 4200"]
    mp = result.image("mp")
    assert mp["TelephoneNumber"] == ["+1 908 582 4200"]
    report(
        "E3: one Extension change fans out across three schemas",
        ["schema", "derived attributes"],
        [
            ("ldap", sorted(result.changed.get("ldap", set()))),
            ("mp", sorted(result.changed.get("mp", set()))),
        ],
    )


def chain_description(k: int) -> str:
    """k hops: s0.x -> s1.x -> ... -> sk.x (identity transforms)."""
    parts = []
    for i in range(k):
        parts.append(
            f"""
            mapping hop{i} {{
                source s{i};
                target s{i + 1};
                key k -> k;
                map x = upper(x);
            }}
            """
        )
    return "\n".join(parts)


@pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
def test_e3_chain_length_scaling(benchmark, k):
    engine = ClosureEngine(compile_description(chain_description(k)).values())

    def propagate():
        return engine.propagate("s0", {"x": "seed", "k": "1"}, changed=["x"])

    result = benchmark(propagate)
    # The change reached the end of the chain...
    assert result.image(f"s{k}")["x"] == ["SEED"]
    # ...in one worklist step per hop (plus the initial one).
    assert result.iterations <= k + 1
    ROWS.append((k, result.iterations, len(result.images)))
    if k == 16:
        report(
            "E3: closure cost vs dependency-chain length",
            ["chain length k", "worklist steps", "schemas touched"],
            ROWS,
        )
        # Shape: linear in k, not quadratic.
        steps = {row[0]: row[1] for row in ROWS}
        assert steps[16] <= 2 * 16


def test_e3_first_mapping_wins_conflict(benchmark):
    """Inconsistently set attributes don't fight: first mapping wins."""
    engine = ClosureEngine(standard_mappings().values())

    def conflicting():
        return engine.propagate(
            "ldap",
            {"telephoneNumber": "+1 908 582 4111", "definityExtension": "4999"},
            changed=["telephoneNumber", "definityExtension"],
            explicit=["telephoneNumber", "definityExtension"],
        )

    result = benchmark(conflicting)
    ldap = result.image("ldap")
    assert ldap["telephoneNumber"] == ["+1 908 582 4111"]
    assert ldap["definityExtension"] == ["4999"]
    assert not result.unstable_conflicts()
