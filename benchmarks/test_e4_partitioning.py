"""E4 — Partitioning constraints and update routing.

Claim (section 4.2): "Depending on the combination of constraint
satisfaction by the old and new attributes, different operations are done
on the target directory" — the add/modify/delete/skip matrix — and a
telephone-number change that moves a person between switches becomes a
delete at one PBX plus an add at another.
"""

import pytest
from conftest import person_attrs, report

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.lexpress import (
    MappingInstance,
    PartitionConstraint,
    TargetAction,
    UpdateDescriptor,
    UpdateOp,
    compile_mapping,
)

MAPPING = compile_mapping(
    """
    mapping ldap_to_pbx {
        source ldap;
        target pbx;
        key definityExtension -> Extension;
        map Name = cn;
    }
    """
)

WEST = MappingInstance(
    MAPPING, "ldap", "pbx-west", PartitionConstraint.compile('prefix(Extension, "41")')
)

MATRIX_ROWS: list[tuple] = []


@pytest.mark.parametrize(
    "old_ext,new_ext,expected",
    [
        ("9000", "4100", TargetAction.ADD),      # violates -> satisfies
        ("4100", "4101", TargetAction.MODIFY),   # satisfies -> satisfies
        ("4100", "9000", TargetAction.DELETE),   # satisfies -> violates
        ("9000", "9001", TargetAction.SKIP),     # violates -> violates
    ],
)
def test_e4_routing_matrix(benchmark, old_ext, new_ext, expected):
    descriptor = UpdateDescriptor(
        UpdateOp.MODIFY,
        "ldap",
        old_ext,
        old={"definityExtension": old_ext, "cn": "A B"},
        new={"definityExtension": new_ext, "cn": "A B"},
    )

    update = benchmark(WEST.translate, descriptor)
    assert update.action is expected
    MATRIX_ROWS.append(
        (
            f"{old_ext} ({'in' if old_ext.startswith('41') else 'out'})",
            f"{new_ext} ({'in' if new_ext.startswith('41') else 'out'})",
            expected.name,
        )
    )
    if len(MATRIX_ROWS) == 4:
        report(
            "E4: the section-4.2 partition routing matrix",
            ["old extension", "new extension", "action at pbx-west"],
            MATRIX_ROWS,
        )


def test_e4_full_stack_migration(benchmark):
    """End-to-end: one LDAP modify migrates the station between PBXes."""

    def setup():
        system = MetaComm(
            MetaCommConfig(
                pbxes=[PbxConfig("pbx-west", ("41",)), PbxConfig("pbx-east", ("43",))]
            )
        )
        conn = system.connection()
        conn.add(
            "cn=Mover,o=Lucent", person_attrs("Mover", "M", definityExtension="4100")
        )
        return (system, conn), {}

    def migrate(system, conn):
        from repro.ldap import Modification

        conn.modify(
            "cn=Mover,o=Lucent",
            [
                Modification.replace("definityExtension", "4300"),
                Modification.replace("telephoneNumber", "+1 908 582 4300"),
            ],
        )
        return system

    system = benchmark.pedantic(migrate, setup=setup, rounds=5)
    assert not system.pbx("pbx-west").contains("4100")
    assert system.pbx("pbx-east").contains("4300")
    assert system.consistent()
    west = system.um.binding("pbx-west").filter.statistics
    east = system.um.binding("pbx-east").filter.statistics
    report(
        "E4: cross-PBX migration (delete west, add east)",
        ["switch", "adds", "deletes"],
        [
            ("pbx-west", west["applied"], "1 delete"),
            ("pbx-east", east["applied"], "1 add"),
        ],
    )
