"""E5 — Synchronization of pre-existing repositories.

Claims (sections 4.4/5.1): synchronization populates the directory
initially and repairs divergence after disconnected operation; it runs as
one isolated sequence (quiesce + persistent connection); and its cost is
proportional to repository size.
"""

import pytest
from conftest import fresh_system, report

from repro.workloads import make_population, populate_via_pbx

ROWS: list[tuple] = []


@pytest.mark.parametrize("size", [25, 100, 400])
def test_e5_initial_load_scaling(benchmark, size):
    people = make_population(size)

    def setup():
        system = fresh_system()
        populate_via_pbx(system, people)
        return (system,), {}

    def load(system):
        system.sync.synchronize("definity")
        return system

    system = benchmark.pedantic(load, setup=setup, rounds=3)
    assert len(system.find_person("(objectClass=person)")) == size
    assert system.messaging.size() == size
    assert system.consistent()
    ROWS.append((size, system.um.connections.statistics["persistent"]))
    if size == 400:
        report(
            "E5: initial load by repository size (time in the benchmark table)",
            ["stations", "persistent connections used"],
            ROWS,
        )


def test_e5_incremental_resync_cheaper_than_full(benchmark):
    """Resync after a small divergence skips everything already in sync."""
    system = fresh_system()
    people = make_population(100)
    populate_via_pbx(system, people)
    system.sync.synchronize("definity")

    # Diverge 5 records behind MetaComm's back.
    for person in people[:5]:
        system.pbx()._records[person.extension]["Room"] = "MOVED"

    def resync():
        return system.sync.synchronize("definity")

    report_obj = benchmark.pedantic(resync, rounds=1)
    assert report_obj.modified == 5
    assert report_obj.skipped >= 95
    assert system.consistent()
    report(
        "E5: incremental resync touches only the divergent records",
        ["metric", "value"],
        [
            ("records examined", report_obj.examined),
            ("modified", report_obj.modified),
            ("skipped (already in sync)", report_obj.skipped),
        ],
    )


def test_e5_sync_isolation(benchmark):
    """Updates from other sessions are refused while a sync is running."""
    from repro.ldap import LdapError, ResultCode
    from conftest import person_attrs

    system = fresh_system()
    people = make_population(20)
    populate_via_pbx(system, people)

    refused = []
    original = system.sync._cleanup_directory

    def probing(binding, keys, report_, session, connection):
        try:
            system.connection().add(
                "cn=Intruder,o=Lucent", person_attrs("Intruder", "I")
            )
        except LdapError as exc:
            refused.append(exc.code)
        return original(binding, keys, report_, session, connection)

    system.sync._cleanup_directory = probing

    def sync():
        return system.sync.synchronize("definity")

    benchmark.pedantic(sync, rounds=1)
    assert refused and all(code is ResultCode.BUSY for code in refused)
    report(
        "E5: quiesce refuses concurrent updates during sync",
        ["concurrent update attempts", "refused with BUSY"],
        [(len(refused), len(refused))],
    )
