"""E6 — Running LTAP as a gateway vs as a library (section 5.5).

Claim: "it would have forced the combined LTAP/UM to process read
requests.  As it is now ... the UM machine does not need to do any read
processing.  Since LDAP workloads are heavily read-oriented, this offers
substantial scalability advantages."

We run the same read-heavy workload against both deployments and measure
the read work landing on the UM machine: zero in gateway mode, one unit
per read in library mode.
"""

from conftest import person_attrs, report

from repro.ldap import LdapConnection, LdapServer, Scope
from repro.ltap import LtapGateway

READS_PER_ROUND = 200
ROWS: list[tuple] = []


def build(library_mode: bool):
    server = LdapServer(["o=Lucent"])
    um_work = {"reads": 0}

    def read_tax():
        um_work["reads"] += 1

    gateway = LtapGateway(server, library_mode=library_mode, read_tax=read_tax)
    conn = LdapConnection(gateway)
    conn.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    for i in range(50):
        conn.add(
            f"cn=U{i},o=Lucent", person_attrs(f"U{i}", "U")
        )
    return gateway, conn, um_work


def run_reads(conn):
    for i in range(READS_PER_ROUND):
        conn.search("o=Lucent", Scope.SUB, f"(cn=U{i % 50})")


def test_e6_gateway_mode_reads(benchmark):
    gateway, conn, um_work = build(library_mode=False)
    benchmark(run_reads, conn)
    # The scalability claim: the UM did no read processing at all.
    assert um_work["reads"] == 0
    assert gateway.statistics["reads_forwarded"] >= READS_PER_ROUND
    ROWS.append(("gateway", gateway.statistics["reads_forwarded"], um_work["reads"]))


def test_e6_library_mode_reads(benchmark):
    gateway, conn, um_work = build(library_mode=True)
    benchmark(run_reads, conn)
    # Library coupling: every read also taxes the UM process.
    assert um_work["reads"] == gateway.statistics["reads_forwarded"]
    ROWS.append(("library", gateway.statistics["reads_forwarded"], um_work["reads"]))
    report(
        "E6: read work landing on the UM machine (read-heavy workload)",
        ["LTAP deployment", "reads served", "reads processed by UM"],
        ROWS,
    )


def test_e6_independent_upgrade(benchmark):
    """The second gateway advantage: LTAP and UM upgrade independently.
    Swapping the trigger set (an 'LTAP upgrade') requires no change to the
    server or clients."""
    gateway, conn, _ = build(library_mode=False)
    from repro.ltap import Trigger

    def upgrade_cycle():
        trigger = gateway.register_trigger(Trigger(action=lambda e: None))
        gateway.unregister_trigger(trigger.name)

    benchmark(upgrade_cycle)
    assert conn.search("o=Lucent", Scope.BASE)  # still serving
