"""E7 (compiled tier) — interpreter vs compiled-closure rule evaluation.

The compilation tier (docs/LEXPRESS_COMPILER.md) lowers verified lexpress
byte code into plain Python closures served from the process-wide
compiled-rule cache.  This benchmark measures the payoff on the E7
steady-state workload: full target-schema ``image()`` evaluation of the
standard ``pbx_to_ldap`` mapping — the exact computation the Update
Manager's enrich/plan stages run per update — under each
``lexpress_mode``.

Asserts the headline speedup (compiled >= 2x over the interpreter), that
verify mode completes the whole run with zero divergences, and writes
the results to ``BENCH_e7.json``.  Run with::

    make bench-e7
"""

import json
import time
from pathlib import Path

import pytest

from repro.lexpress import rule_cache
from repro.schemas import standard_mappings

#: image() evaluations per measured run.
ITERATIONS = 10_000
#: Best-of runs per mode.
REPEATS = 3
#: Required speedup of compiled closures over the interpreter.
SPEEDUP_FLOOR = 2.0

#: A representative PBX station record: exercises the regex name swap,
#: prefix concatenation, and the plain identity rules.
RECORD = {
    "Extension": "4100",
    "Name": "Doe, John",
    "Room": "2B-110",
    "COS": "standard",
    "CoveragePath": "ops",
}

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_e7.json"


def _measure(mode: str | None) -> float:
    """Best-of image() evaluations per second under *mode*."""
    mapping = standard_mappings()["pbx_to_ldap"]
    mapping.lexpress_mode = mode
    expected = mapping.image(RECORD)  # warm the cache outside the timing
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            mapping.image(RECORD)
        elapsed = time.perf_counter() - start
        best = max(best, ITERATIONS / elapsed)
    assert mapping.image(RECORD) == expected
    return best


@pytest.mark.benchmarks
def test_e7_compiled_vs_interpreter():
    rule_cache().clear()
    rates = {
        mode or "interpret": _measure(mode)
        for mode in (None, "compiled", "verify")
    }
    speedup = rates["compiled"] / rates["interpret"]
    cache = rule_cache().stats()

    document = {
        "benchmark": "e7_compiled_rule_evaluation",
        "workload": {
            "mapping": "pbx_to_ldap",
            "iterations": ITERATIONS,
            "repeats": REPEATS,
            "metric": "full image() evaluations per second, best of repeats",
        },
        "results": [
            {"mode": mode, "images_per_s": round(rate, 1)}
            for mode, rate in rates.items()
        ],
        "compiled_speedup": round(speedup, 2),
        "cache": {
            "entries": cache["entries"],
            "compiles": cache["compiles"],
            "rejected": cache["rejected"],
        },
    }
    RESULTS_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print("\n=== E7: rule evaluation engines ===")
    print("mode       images/s")
    for mode, rate in rates.items():
        print(f"{mode:<9} {rate:>9,.0f}")
    print(f"compiled speedup: {speedup:.2f}x")

    # verify mode ran both engines for every evaluation without raising:
    # the shipped mapping library has zero divergences on this workload.
    assert cache["rejected"] == 0, "verifier rejected a shipped rule"
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled closures are {speedup:.2f}x the interpreter, below "
        f"the {SPEEDUP_FLOOR}x floor"
    )
