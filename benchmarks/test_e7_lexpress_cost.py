"""E7 — lexpress compilation and translation cost.

Claims (section 4.2): descriptions "can be added dynamically (to running
programs) by compiling them at run-time", and "a few minutes are
sufficient to map a new source to the global schema" — i.e. the human
writes the mapping in minutes and the machine compiles it in negligible
time.  We benchmark compile time for the standard library and synthetic
mappings of growing size, plus steady-state translation throughput.
"""

import pytest
from conftest import report

from repro.lexpress import UpdateDescriptor, UpdateOp, compile_description
from repro.schemas import render_mp_pair, render_pbx_pair, standard_mappings

ROWS: list[tuple] = []


def test_e7_compile_standard_library(benchmark):
    source = render_pbx_pair() + render_mp_pair()

    mappings = benchmark(compile_description, source)
    assert len(mappings) == 4
    total_rules = sum(len(m.rules) for m in mappings.values())
    report(
        "E7: compiling the standard telecom mapping library",
        ["mappings", "rules", "source lines"],
        [(len(mappings), total_rules, source.count("\n"))],
    )


def synthetic_mapping(rules: int) -> str:
    lines = [
        "mapping big {",
        "    source a;",
        "    target b;",
        "    key k -> K;",
    ]
    for i in range(rules):
        lines.append(
            f'    map t{i} = match a{i} {{ /^(\\w+)$/ => upper($1); _ => concat(a{i}, "-{i}"); }};'
        )
    lines.append("}")
    return "\n".join(lines)


@pytest.mark.parametrize("rules", [10, 50, 200])
def test_e7_compile_scaling(benchmark, rules):
    source = synthetic_mapping(rules)
    mappings = benchmark(compile_description, source)
    assert len(mappings["big"].rules) == rules + 1  # + implicit key rule
    ROWS.append((rules, source.count("\n")))
    if rules == 200:
        report(
            "E7: compile input sizes (times in the benchmark table)",
            ["rules", "source lines"],
            ROWS,
        )


def test_e7_translation_throughput(benchmark):
    """Per-update translation cost in steady state (bytecode interpreter)."""
    mapping = standard_mappings()["pbx_to_ldap"]
    descriptor = UpdateDescriptor(
        UpdateOp.MODIFY,
        "pbx",
        "4100",
        old={"Extension": "4100", "Name": "Doe, John", "Room": "1A"},
        new={"Extension": "4100", "Name": "Doe, John", "Room": "2B"},
    )

    update = benchmark(mapping.translate, descriptor)
    assert update.changed == {"definityRoom": ["2B"]}


def test_e7_incremental_vs_full_evaluation(benchmark):
    """Dependency analysis pays: a modify touching one unmapped attribute
    is rejected without evaluating any rule."""
    mapping = standard_mappings()["pbx_to_ldap"]
    irrelevant = UpdateDescriptor(
        UpdateOp.MODIFY,
        "pbx",
        "4100",
        old={"Extension": "4100", "VendorFlag": "a"},
        new={"Extension": "4100", "VendorFlag": "b"},
    )

    result = benchmark(mapping.translate, irrelevant)
    assert result is None or not result.changed
