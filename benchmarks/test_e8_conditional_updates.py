"""E8 — Conditional (Originator) updates.

Claim (section 5.4): "reapplying add or delete requests to devices where
those operations had already occurred produces errors", so lexpress marks
updates headed back to their source as *conditional*: adds are reapplied
as conditional modifies (falling back to add), failed conditional deletes
are tolerated.  We compare the conditional protocol against the naive
reapplication the paper says broke, over a stream of DDU adds/deletes.
"""

from conftest import fresh_system, report

from repro.devices import DuplicateRecordError, NoSuchRecordError

ROWS: list[tuple] = []
N = 25


def test_e8_conditional_protocol_error_free(benchmark):
    """The shipped protocol: a stream of DDU adds and deletes reapplies to
    the originating PBX without a single device error."""

    def setup():
        return (fresh_system(),), {}

    def run(system):
        terminal = system.terminal()
        for i in range(N):
            ext = str(4100 + i)
            assert terminal.execute(f'add station {ext} name "U, {ext}"').ok
        for i in range(0, N, 2):
            assert terminal.execute(f"remove station {4100 + i}").ok
        return system

    system = benchmark.pedantic(run, setup=setup, rounds=3)
    stats = system.um.binding("definity").filter.statistics
    assert stats["failed"] == 0
    assert stats["conditional"] >= N  # every DDU reapplied conditionally
    assert stats["recovered"] >= 1    # conditional semantics actually used
    assert len(system.error_log) == 0
    assert system.consistent()
    ROWS.append(
        ("conditional (section 5.4)", N + N // 2, stats["recovered"], 0)
    )


def test_e8_naive_reapplication_breaks(benchmark):
    """The counterfactual: replaying committed adds/deletes verbatim at the
    device produces one error per reapplied operation."""
    system = fresh_system()
    pbx = system.pbx()
    operations = []
    for i in range(N):
        ext = str(4100 + i)
        pbx.add_station(ext, agent="craft", Name=f"U, {ext}")
        operations.append(("add", ext))
    for i in range(0, N, 2):
        ext = str(4100 + i)
        pbx.remove_station(ext, agent="craft")
        operations.append(("delete", ext))

    def naive_replay():
        errors = 0
        for op, ext in operations:
            try:
                if op == "add":
                    pbx.add_station(ext, agent="um-naive", Name=f"U, {ext}")
                else:
                    pbx.remove_station(ext, agent="um-naive")
            except (DuplicateRecordError, NoSuchRecordError):
                errors += 1
        return errors

    errors = benchmark(naive_replay)
    # Shape: every replayed add against a still-existing station errors
    # out (the deleted ones are silently *resurrected* mid-replay — worse
    # than an error).  Conditional semantics produce zero of either.
    surviving = N - (N + 1) // 2
    assert errors >= surviving
    ROWS.append(("naive replay", len(operations), 0, errors))
    report(
        "E8: reapplication protocol comparison",
        ["protocol", "ops reapplied", "conditional recoveries", "device errors"],
        ROWS,
    )
