"""E9 — The ModifyRDN/Modify window and UM-crash recovery.

Claim (section 5.1): "updates that modify both the RDN and other
attributes must be handled by a ModifyRDN/Modify pair of operations ...
if the UM crashes between the ModifyRDN and the Modify operations, the
entry will be inconsistent for readers ... When the UM restarts and
re-synchronizes the directory with the devices, the inconsistencies will
be eliminated."

We inject the crash at exactly that point, verify readers observe the
half-applied state, and benchmark the restart-resynchronization that
repairs it.  We also confirm the coincidence is as narrow as the paper
argues: only complex DDUs (RDN + other data) open the window at all.
"""

from conftest import fresh_system, report

from repro.core import UmCrash


def crashed_system():
    system = fresh_system()
    system.terminal().execute('add station 4200 name "Smith, Pat" room 1A')

    def crash(stage):
        raise UmCrash(stage)

    system.ldap_filter.crash_hook = crash
    try:
        system.terminal().execute(
            'change station 4200 name "Smith, Patricia" room 9Z'
        )
    except UmCrash:
        pass
    system.ldap_filter.crash_hook = None
    return system


def test_e9_window_visible_then_repaired(benchmark):
    def setup():
        return (crashed_system(),), {}

    def restart_and_resync(system):
        system.sync.synchronize("definity")
        return system

    # Before the repair, readers see the rename without the room change.
    probe = crashed_system()
    (entry,) = probe.find_person("(definityExtension=4200)")
    assert entry.first("cn") == "Patricia Smith"   # ModifyRDN applied
    assert entry.first("definityRoom") == "1A"     # Modify lost in the crash
    assert not probe.consistent()

    system = benchmark.pedantic(restart_and_resync, setup=setup, rounds=3)
    (entry,) = system.find_person("(definityExtension=4200)")
    assert entry.first("cn") == "Patricia Smith"
    assert entry.first("definityRoom") == "9Z"
    assert system.consistent()
    report(
        "E9: reader-visible window after a UM crash mid-rename",
        ["stage", "cn", "definityRoom", "consistent"],
        [
            ("after crash", "Patricia Smith", "1A (stale)", "no"),
            ("after restart+resync", "Patricia Smith", "9Z", "yes"),
        ],
    )


def test_e9_simple_updates_have_no_window(benchmark):
    """A DDU that does not touch the RDN is a single LDAP operation — a
    crash hook at the pair-boundary never fires."""
    system = fresh_system()
    system.terminal().execute('add station 4200 name "Smith, Pat" room 1A')
    fired = []
    system.ldap_filter.crash_hook = lambda stage: fired.append(stage)

    def simple_ddu(counter=iter(range(10**6))):
        system.terminal().execute(
            f"change station 4200 room R{next(counter) % 997}"
        )

    benchmark(simple_ddu)
    assert fired == []  # the window only exists for RDN+data updates
    assert system.consistent()


def test_e9_ltap_locking_prevents_interleaving(benchmark):
    """Section 5.1: "locking at the LTAP level prevents the interleaving
    of operations at the LDAP level" — while a rename pair is in flight,
    another writer to the same entry is blocked (busy), not interleaved."""
    from repro.ldap import LdapError, Modification, ResultCode

    system = fresh_system(lock_timeout=0.05)
    system.terminal().execute('add station 4200 name "Smith, Pat" room 1A')
    outcomes = []

    def contender(stage):
        conn = system.connection()
        (entry,) = system.find_person("(definityExtension=4200)")
        try:
            conn.modify(entry.dn, [Modification.replace("definityCOS", "9")])
            outcomes.append("interleaved")
        except LdapError as exc:
            outcomes.append(
                "blocked" if exc.code is ResultCode.BUSY else "error"
            )

    system.ldap_filter.crash_hook = contender
    names = iter(range(10**6))

    def rename():
        n = next(names)
        system.terminal().execute(
            f'change station 4200 name "Smith, P{n}" room R{n % 97}'
        )

    benchmark(rename)
    system.ldap_filter.crash_hook = None
    assert outcomes and all(o == "blocked" for o in outcomes)
