"""F1 — Figure 1: the MetaComm architecture, end to end.

Claim (sections 1/4): an update entering through *either* path — the LDAP
directory or a legacy device — fans out through LTAP → Update Manager →
filters until every repository agrees.  The benchmark times one complete
traversal of each path and verifies every Figure-1 component took part.
"""

import itertools

from conftest import fresh_system, person_attrs, report


_counter = itertools.count(4100)


def test_f1_ldap_path_full_stack(benchmark):
    """One LDAP add: gateway → trigger → UM → PBX + MP + supplemental."""
    system = fresh_system()
    conn = system.connection()

    def add_user():
        ext = str(next(_counter) % 10000)
        if len(ext) < 4:
            ext = "4" + ext.zfill(3)
        conn.add(
            f"cn=User {ext},o=Marketing,o=Lucent",
            person_attrs(f"User {ext}", "User", definityExtension=ext),
        )
        return ext

    ext = benchmark(add_user)

    # Every component of Figure 1 participated.
    assert system.gateway.statistics["updates_processed"] > 0     # LTAP
    assert system.um.statistics["ldap_events"] > 0                # UM trigger
    assert system.um.statistics["fanned_out"] > 0                 # filters
    assert system.pbx().contains(ext)                             # Definity
    assert system.messaging.contains(f"+1 908 582 {ext}")         # MP
    assert system.um.statistics["supplemental_writes"] > 0        # write-back
    assert system.consistent()

    report(
        "F1: one LDAP-originated update traverses the whole architecture",
        ["component", "evidence"],
        [
            ("LTAP gateway", f"updates_processed={system.gateway.statistics['updates_processed']}"),
            ("Update Manager", f"ldap_events={system.um.statistics['ldap_events']}"),
            ("device filters", f"fanned_out={system.um.statistics['fanned_out']}"),
            ("LDAP write-back", f"supplemental={system.um.statistics['supplemental_writes']}"),
        ],
    )


def test_f1_ddu_path_full_stack(benchmark):
    """One craft-terminal change: device → filter → LDAP filter → LTAP →
    UM → fan-out (including conditional reapply at the origin)."""
    system = fresh_system()
    terminal = system.terminal()
    conn = system.connection()
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        person_attrs("John Doe", "Doe", definityExtension="4100"),
    )
    rooms = itertools.count(100)

    def ddu():
        terminal.execute(f"change station 4100 room R{next(rooms) % 1000}")

    benchmark(ddu)

    assert system.um.statistics["ddus"] > 0
    assert system.um.statistics["reapplied"] > 0  # write-write consistency
    assert system.consistent()
    report(
        "F1: direct device updates loop back through LTAP",
        ["metric", "value"],
        [
            ("DDUs observed", system.um.statistics["ddus"]),
            ("reapplied to origin", system.um.statistics["reapplied"]),
            ("consistent", True),
        ],
    )
