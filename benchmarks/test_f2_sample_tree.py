"""F2 — Figure 2: the sample LDAP tree.

The paper's Figure 2 shows o=Lucent with four organizations and one person
under each: cn=John Doe (Marketing), cn=Pat Smith (Accounting),
cn=Tim Dickens (R&D), cn=Jill Lu (DEN Group).  This experiment builds that
exact tree, verifies the DN semantics the section-2 text walks through,
and benchmarks subtree search over it.
"""

from conftest import person_attrs, report

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import DN, Scope

FIGURE_2 = {
    "Marketing": "John Doe",
    "Accounting": "Pat Smith",
    "R&D": "Tim Dickens",
    "DEN Group": "Jill Lu",
}


def build_tree() -> MetaComm:
    system = MetaComm(
        MetaCommConfig(organizations=tuple(FIGURE_2), messaging_name=None)
    )
    conn = system.connection()
    for org, cn in FIGURE_2.items():
        conn.add(
            f"cn={cn},o={org},o=Lucent",
            person_attrs(cn, cn.split()[-1]),
        )
    return system


def test_f2_tree_structure_and_search(benchmark):
    system = build_tree()
    conn = system.connection()

    # Section 2: "the DN for John Doe is cn=John Doe, o=Marketing, o=Lucent".
    john = conn.get("cn=John Doe, o=Marketing, o=Lucent")
    assert john.first("cn") == "John Doe"
    # The DN is a leaf-to-root path; its parent is the organization.
    assert str(john.dn.parent()) == "o=Marketing,o=Lucent"
    # RDNs are unique among the children of a parent: a second John Doe
    # under Marketing must be rejected.
    from repro.ldap import LdapError

    try:
        conn.add("cn=John Doe,o=Marketing,o=Lucent", person_attrs("John Doe", "Doe"))
        raise AssertionError("duplicate RDN accepted")
    except LdapError:
        pass

    def subtree_people():
        return conn.search("o=Lucent", Scope.SUB, "(objectClass=person)")

    people = benchmark(subtree_people)
    assert {e.first("cn") for e in people} == set(FIGURE_2.values())

    # One-level search sees exactly the organizations (plus the error log).
    orgs = conn.search("o=Lucent", Scope.ONE, "(objectClass=organization)")
    assert {e.first("o") for e in orgs} == set(FIGURE_2)

    report(
        "F2: the Figure-2 tree",
        ["dn"],
        [(f"cn={cn},o={org},o=Lucent",) for org, cn in FIGURE_2.items()],
    )


def test_f2_subtree_relocation(benchmark):
    """Section 2: 'it is straightforward to move an arbitrary sub-tree' —
    renaming an organization re-keys its whole subtree."""
    system = build_tree()
    conn = system.connection()

    def rename_and_back():
        conn.modify_rdn("o=Marketing,o=Lucent", "o=Sales")
        assert conn.exists("cn=John Doe,o=Sales,o=Lucent")
        conn.modify_rdn("o=Sales,o=Lucent", "o=Marketing")

    benchmark(rename_and_back)
    assert conn.exists("cn=John Doe,o=Marketing,o=Lucent")
