"""Overhead of the runtime health plane on pipeline throughput.

The health plane observes every update (journal events, per-device
outcome/link telemetry, queue staleness) and runs a background
consistency auditor — none of which may meaningfully slow the pipeline
down.  This benchmark re-drives the ``test_pipeline_throughput``
workload at its largest configuration (parallel 4-PBX fleet, simulated
management-link latency) with the plane **fully enabled** — journal +
health board + queue gauges + the auditor sampling in the background —
and compares against the throughput recorded in ``BENCH_pipeline.json``
by ``make bench-pipeline``.  A plane-off cell (``observability=False``)
is measured alongside for context.

Writes the measurements and ratios to ``BENCH_health.json`` and asserts
the plane-on run keeps at least ``RATIO_FLOOR`` (i.e. < 5% regression)
of the recorded reference.  Run with::

    make bench-health
"""

import json
import time
from pathlib import Path

import pytest

from conftest import person_attrs

from repro.core import MetaComm, MetaCommConfig, PbxConfig

#: Simulated management-link round-trip per device write (seconds).
LINK_LATENCY = 0.002
#: PBX count (plus the messaging platform -> 5 devices per fan-out).
PBXES = 4
#: Update sequences per measured run.
UPDATES = 25
#: Best-of runs per cell.
REPEATS = 5
#: Background auditor sampling interval while measuring (seconds).
AUDIT_INTERVAL = 0.05
#: plane-on throughput must stay >= this fraction of the recorded
#: bench-pipeline reference.
RATIO_FLOOR = 0.95

ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = ROOT / "BENCH_health.json"
REFERENCE_PATH = ROOT / "BENCH_pipeline.json"


def _reference_seq_per_s() -> float | None:
    """The recorded 4-PBX parallel throughput from ``make bench-pipeline``."""
    if not REFERENCE_PATH.exists():
        return None
    document = json.loads(REFERENCE_PATH.read_text())
    for row in document.get("results", ()):
        if row.get("pbxes") == PBXES:
            return float(row["parallel_seq_per_s"])
    return None


def _fleet(observability: bool) -> MetaComm:
    devices = PBXES + 1
    system = MetaComm(
        MetaCommConfig(
            pbxes=[PbxConfig(f"pbx-{i + 1}", ("4",)) for i in range(PBXES)],
            fanout_workers=devices,
            observability=observability,
            audit_interval=AUDIT_INTERVAL,
        )
    )
    for pbx in system.pbxes.values():
        pbx.link_latency = LINK_LATENCY
    system.messaging.link_latency = LINK_LATENCY
    return system


def _run_once(observability: bool) -> float:
    system = _fleet(observability)
    try:
        if observability:
            system.auditor.start()
        conn = system.connection()
        start = time.perf_counter()
        for i in range(UPDATES):
            conn.add(
                f"cn=U{i},o=Lucent",
                person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
            )
        elapsed = time.perf_counter() - start
        if observability:
            system.auditor.stop()
        assert system.consistent(), "oracle failed after run"
        return UPDATES / elapsed
    finally:
        system.close()


def _measure(observability: bool) -> float:
    return max(_run_once(observability) for _ in range(REPEATS))


@pytest.mark.benchmarks
def test_health_plane_overhead():
    reference = _reference_seq_per_s()
    plane_off = _measure(observability=False)
    plane_on = _measure(observability=True)
    # The acceptance baseline is the recorded bench-pipeline number (same
    # workload, plane at its pre-health-plane default); fall back to the
    # fresh plane-off cell when no recording exists yet.
    baseline = reference if reference is not None else plane_off
    ratio = plane_on / baseline

    document = {
        "benchmark": "health_plane_overhead",
        "workload": {
            "pbxes": PBXES,
            "devices": PBXES + 1,
            "updates_per_run": UPDATES,
            "repeats": REPEATS,
            "link_latency_s": LINK_LATENCY,
            "audit_interval_s": AUDIT_INTERVAL,
            "metric": "update sequences per second, best of repeats",
        },
        "results": {
            "plane_on_seq_per_s": round(plane_on, 1),
            "plane_off_seq_per_s": round(plane_off, 1),
            "bench_pipeline_reference_seq_per_s": reference,
            "ratio_vs_reference": round(ratio, 3),
            "ratio_vs_plane_off": round(plane_on / plane_off, 3),
            "ratio_floor": RATIO_FLOOR,
        },
    }
    RESULTS_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print("\n=== health plane overhead (parallel 4-PBX fleet) ===")
    if reference is not None:
        print(f"bench-pipeline reference: {reference:8.1f} seq/s")
    print(f"plane off:                {plane_off:8.1f} seq/s")
    print(
        f"plane on:                 {plane_on:8.1f} seq/s"
        "  (journal + health + gauges + auditor)"
    )
    print(f"ratio vs baseline:        {ratio:8.3f}   (floor {RATIO_FLOOR})")

    assert ratio >= RATIO_FLOOR, (
        f"health plane costs {(1 - ratio) * 100:.1f}% throughput "
        f"(allowed {(1 - RATIO_FLOOR) * 100:.0f}%)"
    )
