"""Coordinator-lane throughput: the commutativity-sharded Update Manager.

The routing oracle (docs/CONCURRENCY.md) proves updates that land in
disjoint extension-prefix partitions commute, so the sharded queue may
drain them on concurrent coordinator lanes.  This benchmark builds the
workload that proof targets: eight PBXes owning disjoint prefixes, every
device write paying a simulated management-link round-trip, and eight
client threads each updating only its own partition.  A single lane
serializes the whole stream behind one coordinator; more lanes overlap
the link latency of provably-independent sequences.

Measures update sequences/second for ``coordinator_lanes`` in {1, 2, 4,
8}, checks the ``consistent()`` oracle and that *nothing* fell back to
the serial lane after every run, asserts the headline speedup (>= 2x at
four lanes) and writes the results to ``BENCH_lanes.json``.  Run with::

    make bench-lanes
"""

import json
import threading
import time
from pathlib import Path

import pytest

from conftest import person_attrs

from repro.core import MetaComm, MetaCommConfig, PbxConfig

#: Simulated management-link round-trip per device write (seconds).
LINK_LATENCY = 0.002
#: Concurrent client threads == PBX partitions (prefixes 41..48).
CLIENTS = 8
#: Person adds per client per measured run.
UPDATES_PER_CLIENT = 5
#: Best-of runs per lane count.
REPEATS = 3
#: Lane counts to sweep.
LANES = (1, 2, 4, 8)
#: Required speedup of 4 lanes over 1 lane.
SPEEDUP_FLOOR = 2.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_lanes.json"


def _fleet(lanes: int) -> MetaComm:
    """Eight PBXes with disjoint extension prefixes: every update fans
    out to exactly one PBX (plus messaging), and updates from different
    prefixes provably commute.  Rules run on the compiled tier — the
    production configuration this benchmark gates."""
    system = MetaComm(
        MetaCommConfig(
            pbxes=[
                PbxConfig(f"pbx-{i + 1}", (str(41 + i),))
                for i in range(CLIENTS)
            ],
            coordinator_lanes=lanes,
            lexpress_mode="compiled",
        )
    )
    for pbx in system.pbxes.values():
        pbx.link_latency = LINK_LATENCY
    system.messaging.link_latency = LINK_LATENCY
    system.um.start()
    return system


def _run_once(lanes: int) -> float:
    """One measured run: CLIENTS threads adding into disjoint partitions;
    returns update sequences per second."""
    system = _fleet(lanes)
    try:
        errors: list[Exception] = []

        def client(i: int) -> None:
            try:
                conn = system.connection()
                for j in range(UPDATES_PER_CLIENT):
                    conn.add(
                        f"cn=U{i}-{j},o=Lucent",
                        person_attrs(
                            f"U{i}-{j}", "U",
                            definityExtension=f"{41 + i}{j:02d}",
                        ),
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start

        assert errors == [], errors
        assert system.consistent(), "oracle failed after run"
        total = CLIENTS * UPDATES_PER_CLIENT
        assert system.messaging.size() == total
        for pbx in system.pbxes.values():
            assert pbx.size() == UPDATES_PER_CLIENT
        stats = dict(system.um.queue.statistics)
        assert stats["processed"] == total
        # The whole point: partition-disjoint traffic never serializes.
        assert stats.get("serial_routed", 0) == 0
        return total / elapsed
    finally:
        system.close()


def _measure(lanes: int) -> float:
    return max(_run_once(lanes) for _ in range(REPEATS))


@pytest.mark.benchmarks
def test_coordinator_lane_throughput():
    results = []
    baseline = None
    for lanes in LANES:
        rate = _measure(lanes)
        if baseline is None:
            baseline = rate
        results.append(
            {
                "lanes": lanes,
                "seq_per_s": round(rate, 1),
                "speedup": round(rate / baseline, 2),
            }
        )

    document = {
        "benchmark": "coordinator_lane_throughput",
        "workload": {
            "clients": CLIENTS,
            "updates_per_client": UPDATES_PER_CLIENT,
            "repeats": REPEATS,
            "link_latency_s": LINK_LATENCY,
            "metric": "update sequences per second, best of repeats",
            "partitioning": "8 PBXes, disjoint extension prefixes 41..48",
        },
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print("\n=== coordinator lane throughput ===")
    print("lanes  seq/s  speedup")
    for row in results:
        print(
            f"{row['lanes']:>5}  {row['seq_per_s']:>5}  {row['speedup']:>6}x"
        )

    by_lanes = {row["lanes"]: row for row in results}
    assert by_lanes[4]["speedup"] >= SPEEDUP_FLOOR, (
        f"4-lane speedup {by_lanes[4]['speedup']}x over the single-lane "
        f"coordinator is below the {SPEEDUP_FLOOR}x floor"
    )
