"""Device-link throughput: pipelined command streams vs thread-per-device.

The event-driven link layer (docs/DEVICE_LINKS.md) replaces the fan-out
stage's thread-per-device blocking writes with per-device command
streams: one dispatcher thread coalesces queued ops into batches, pays
**one** round-trip per batch, and keeps a bounded window of streams in
flight per device.  This benchmark builds the fleet that refactor
targets: sixteen devices (fifteen PBXes with disjoint extension
prefixes plus the shared messaging platform), every link a *serial
craft channel* costing ``link_commands`` sequential round-trips per
blocking op — so the messaging platform, touched by every update, is
the structural bottleneck the batching collapses.

Measures update sequences/second for the thread-per-device baseline
(``fanout_workers`` pool, one blocking write per device) against
``device_links=True`` on the same four-lane coordinator, repeats the
comparison with a mixed-latency fleet (slow shared messaging link), and
records a stalled-device observation showing the lane depth limit
bounding queued work while a link is down.  Asserts the headline
speedup (>= 2x on the uniform 2 ms fleet) and writes the results to
``BENCH_links.json``.  Run with::

    make bench-links
"""

import json
import threading
import time
from pathlib import Path

import pytest

from conftest import person_attrs

from repro.core import MetaComm, MetaCommConfig, PbxConfig

#: Simulated management-link round-trip per command (seconds).
LINK_LATENCY = 0.002
#: Concurrent client threads, each owning one extension prefix.
CLIENTS = 8
#: Person adds per client per measured run.
UPDATES_PER_CLIENT = 5
#: Best-of runs per mode.
REPEATS = 3
#: Coordinator lanes in both modes (the production sharded queue).
LANES = 4
#: PBX count; with the messaging platform the fleet is 16 devices.
PBX_COUNT = 15
#: Commands per blocking op on a PBX craft channel.
PBX_COMMANDS = 2
#: Commands per blocking op on the messaging platform's channel.
MESSAGING_COMMANDS = 3
#: Required speedup of device links over thread-per-device fan-out.
SPEEDUP_FLOOR = 2.0

#: Disjoint two-digit extension prefixes: clients use 41..48, the rest
#: of the fleet (51..57) is provisioned but idle — it still costs link
#: registrations and dispatcher bookkeeping, as a real fleet would.
PREFIXES = [str(41 + i) for i in range(CLIENTS)] + [
    str(51 + i) for i in range(PBX_COUNT - CLIENTS)
]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_links.json"


def _fleet(mode: str, messaging_latency: float = LINK_LATENCY) -> MetaComm:
    """Sixteen devices on serial craft channels, rules on the compiled
    tier.  ``mode`` selects the fan-out machinery: ``"threads"`` is the
    thread-per-device baseline (a pool worker sleeps through every
    device's round-trips), ``"links"`` the event-driven dispatcher."""
    config = MetaCommConfig(
        pbxes=[PbxConfig(f"pbx-{i + 1}", (p,)) for i, p in enumerate(PREFIXES)],
        coordinator_lanes=LANES,
        lexpress_mode="compiled",
        device_links=(mode == "links"),
        fanout_workers=PBX_COUNT + 1 if mode == "threads" else 1,
    )
    system = MetaComm(config)
    for pbx in system.pbxes.values():
        pbx.link_latency = LINK_LATENCY
        pbx.link_serial = True
        pbx.link_commands = PBX_COMMANDS
    system.messaging.link_latency = messaging_latency
    system.messaging.link_serial = True
    system.messaging.link_commands = MESSAGING_COMMANDS
    system.um.start()
    return system


def _run_once(mode: str, messaging_latency: float = LINK_LATENCY) -> dict:
    """One measured run: CLIENTS threads adding into disjoint partitions;
    returns the rate plus (for links) the messaging link's batching."""
    system = _fleet(mode, messaging_latency)
    try:
        errors: list[Exception] = []

        def client(i: int) -> None:
            try:
                conn = system.connection()
                for j in range(UPDATES_PER_CLIENT):
                    conn.add(
                        f"cn=U{i}-{j},o=Lucent",
                        person_attrs(
                            f"U{i}-{j}", "U",
                            definityExtension=f"{41 + i}{j:02d}",
                        ),
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start

        assert errors == [], errors
        assert system.consistent(), "oracle failed after run"
        total = CLIENTS * UPDATES_PER_CLIENT
        assert system.messaging.size() == total
        for i in range(CLIENTS):
            assert system.pbxes[f"pbx-{i + 1}"].size() == UPDATES_PER_CLIENT
        stats = dict(system.um.queue.statistics)
        assert stats["processed"] == total
        # Partition-disjoint traffic never serializes behind one lane.
        assert stats.get("serial_routed", 0) == 0
        sample = {"seq_per_s": total / elapsed}
        if mode == "links":
            rows = {row["device"]: row for row in system.links.snapshot()}
            messaging = rows["messaging"]
            assert messaging["completed"] == total
            sample["messaging_flushes"] = messaging["flushes"]
            sample["messaging_mean_batch"] = round(
                total / messaging["flushes"], 2
            )
        return sample
    finally:
        system.close()


def _measure(mode: str, messaging_latency: float = LINK_LATENCY) -> dict:
    best = None
    for _ in range(REPEATS):
        sample = _run_once(mode, messaging_latency)
        if best is None or sample["seq_per_s"] > best["seq_per_s"]:
            best = sample
    best["seq_per_s"] = round(best["seq_per_s"], 1)
    return best


def _observe_stall() -> dict:
    """A stalled link with a lane depth limit: queued work stays bounded.

    Pauses pbx-1's link, pushes more updates at its partition than the
    lane admits, and samples how much work the system is holding — the
    depth limit keeps the lane's claim set (and so the per-update
    buffers behind it) constant no matter how many clients pile up."""
    depth_limit = 2
    writers = 6
    system = MetaComm(
        MetaCommConfig(
            pbxes=[PbxConfig("pbx-1", ("41",))],
            coordinator_lanes=2,
            device_links=True,
            lane_depth_limit=depth_limit,
            busy_policy="defer",
            busy_timeout=30.0,
        )
    )
    try:
        system.um.start()
        link = system.links.link("pbx-1")
        link.pause()
        threads = [
            threading.Thread(
                target=system.connection().add,
                args=(
                    f"cn=S{i},o=Lucent",
                    person_attrs(f"S{i}", "S", definityExtension=f"41{i:02d}"),
                ),
            )
            for i in range(writers)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5.0
        peak_outstanding = peak_pending = 0
        deferred = 0
        while time.monotonic() < deadline:
            rows = system.um.queue.lane_snapshot()
            peak_outstanding = max(
                peak_outstanding,
                max(row["outstanding"] for row in rows),
            )
            peak_pending = max(peak_pending, link.snapshot()["pending"])
            deferred = system.um.queue.statistics.get("admission_deferred", 0)
            if deferred >= writers - depth_limit:
                break
            time.sleep(0.02)
        link.resume()
        for t in threads:
            t.join()
        assert peak_outstanding <= depth_limit
        assert system.pbxes["pbx-1"].size() == writers
        return {
            "writers": writers,
            "lane_depth_limit": depth_limit,
            "peak_lane_outstanding": peak_outstanding,
            "peak_link_pending": peak_pending,
            "admission_deferred": deferred,
        }
    finally:
        system.close()


@pytest.mark.benchmarks
def test_device_link_throughput():
    results = []
    for label, messaging_latency in (
        ("uniform-2ms", LINK_LATENCY),
        ("slow-messaging-8ms", 4 * LINK_LATENCY),
    ):
        baseline = _measure("threads", messaging_latency)
        links = _measure("links", messaging_latency)
        results.append(
            {
                "fleet": label,
                "threads_seq_per_s": baseline["seq_per_s"],
                "links_seq_per_s": links["seq_per_s"],
                "speedup": round(
                    links["seq_per_s"] / baseline["seq_per_s"], 2
                ),
                "messaging_flushes": links["messaging_flushes"],
                "messaging_mean_batch": links["messaging_mean_batch"],
            }
        )
    stall = _observe_stall()

    document = {
        "benchmark": "device_link_throughput",
        "workload": {
            "devices": PBX_COUNT + 1,
            "clients": CLIENTS,
            "updates_per_client": UPDATES_PER_CLIENT,
            "repeats": REPEATS,
            "coordinator_lanes": LANES,
            "link_latency_s": LINK_LATENCY,
            "pbx_commands": PBX_COMMANDS,
            "messaging_commands": MESSAGING_COMMANDS,
            "metric": "update sequences per second, best of repeats",
            "fleet": (
                "15 PBXes (disjoint prefixes, serial craft channels) "
                "+ 1 messaging platform touched by every update"
            ),
        },
        "results": results,
        "stalled_link": stall,
    }
    RESULTS_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print("\n=== device link throughput ===")
    print("fleet               threads  links  speedup  mean batch")
    for row in results:
        print(
            f"{row['fleet']:<19} {row['threads_seq_per_s']:>7}  "
            f"{row['links_seq_per_s']:>5}  {row['speedup']:>6}x  "
            f"{row['messaging_mean_batch']:>10}"
        )
    print(
        f"stalled link: {stall['writers']} writers held to "
        f"{stall['peak_lane_outstanding']} outstanding "
        f"(limit {stall['lane_depth_limit']}), "
        f"{stall['admission_deferred']} deferred at admission"
    )

    uniform = results[0]
    assert uniform["speedup"] >= SPEEDUP_FLOOR, (
        f"device-link speedup {uniform['speedup']}x over thread-per-device "
        f"fan-out is below the {SPEEDUP_FLOOR}x floor on the uniform fleet"
    )
