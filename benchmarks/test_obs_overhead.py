"""Smoke benchmark: instrumentation overhead of the observability layer.

The metrics registry and trace spans sit on every hop of the update
pipeline, so they must be cheap.  This compares the E1 mixed-stream
workload with observability enabled vs disabled and asserts the enabled
run stays close to the baseline.

The design target is <10% overhead; the assertion bound is looser
(OVERHEAD_BOUND) because single-run wall-clock ratios on shared CI
machines are noisy — min-of-repeats tames most but not all of it.
Run with::

    pytest benchmarks/test_obs_overhead.py -m benchmarks --no-header -p no:cacheprovider
"""

import time

import pytest
from conftest import fresh_system

from repro.workloads import (
    apply_stream,
    make_population,
    make_stream,
    populate_via_ldap,
)

#: Design target is 1.10; the gate leaves headroom for scheduler noise.
OVERHEAD_BOUND = 1.35

PEOPLE = 12
EVENTS = 50
REPEATS = 3


def _run_workload(observability: bool) -> float:
    """Best-of-REPEATS wall-clock for the E1-style mixed stream."""
    best = float("inf")
    for repeat in range(REPEATS):
        system = fresh_system(observability=observability)
        people = make_population(PEOPLE)
        populate_via_ldap(system, people)
        events = make_stream(people, EVENTS, ddu_fraction=0.3, seed=23)
        start = time.perf_counter()
        apply_stream(system, events)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmarks
def test_instrumentation_overhead_is_bounded():
    baseline = _run_workload(observability=False)
    instrumented = _run_workload(observability=True)
    ratio = instrumented / baseline
    print(
        f"\nobs overhead: baseline={baseline * 1e3:.1f}ms "
        f"instrumented={instrumented * 1e3:.1f}ms ratio={ratio:.3f}"
    )
    assert ratio < OVERHEAD_BOUND, (
        f"instrumentation overhead {ratio:.2f}x exceeds {OVERHEAD_BOUND}x "
        f"(design target 1.10x)"
    )


@pytest.mark.benchmarks
def test_instrumented_run_produces_traces_and_metrics():
    system = fresh_system(observability=True)
    people = make_population(4)
    populate_via_ldap(system, people)
    apply_stream(system, make_stream(people, 10, ddu_fraction=0.5, seed=5))
    assert system.traces(), "no traces collected"
    assert system.um.statistics["ldap_events"] > 0
    assert "metacomm_um_sequence_seconds" in system.metrics_text()
