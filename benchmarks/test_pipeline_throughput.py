"""Pipeline throughput: serial vs concurrent device fan-out.

The staged pipeline can apply a sequence's planned device updates on a
worker pool (``MetaCommConfig.fanout_workers``).  With in-memory devices
the fan-out stage is far too fast for concurrency to matter, so every
device here simulates a management-link round-trip (``link_latency``) —
the serial craft interface / network hop that dominates real deployments.
Serial mode pays that latency once per device; parallel mode overlaps
them, so the expected ceiling is roughly the device count.

Measures update sequences/second for 1, 2 and 4 PBXes (plus the
messaging platform), serial vs parallel, checks the ``consistent()``
oracle after every run, asserts the headline speedup (>= 1.5x with four
PBXes) and writes the results to ``BENCH_pipeline.json``.  Run with::

    make bench-pipeline
"""

import json
import time
from pathlib import Path

import pytest

from conftest import person_attrs

from repro.core import MetaComm, MetaCommConfig, PbxConfig

#: Simulated management-link round-trip per device write (seconds).
LINK_LATENCY = 0.002
#: Update sequences per measured run.
UPDATES = 25
#: Best-of runs per (config, mode) cell.
REPEATS = 3
#: Required parallel speedup at the largest configuration.
SPEEDUP_FLOOR = 1.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _fleet(n_pbxes: int, workers: int) -> MetaComm:
    """n PBXes sharing one extension prefix (every update fans out to all
    of them and the messaging platform) with simulated link latency."""
    system = MetaComm(
        MetaCommConfig(
            pbxes=[PbxConfig(f"pbx-{i + 1}", ("4",)) for i in range(n_pbxes)],
            fanout_workers=workers,
        )
    )
    for pbx in system.pbxes.values():
        pbx.link_latency = LINK_LATENCY
    system.messaging.link_latency = LINK_LATENCY
    return system


def _run_once(n_pbxes: int, workers: int) -> float:
    """One measured run: UPDATES person adds; returns sequences/second."""
    system = _fleet(n_pbxes, workers)
    try:
        conn = system.connection()
        start = time.perf_counter()
        for i in range(UPDATES):
            conn.add(
                f"cn=U{i},o=Lucent",
                person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
            )
        elapsed = time.perf_counter() - start
        assert system.consistent(), "oracle failed after run"
        assert system.messaging.size() == UPDATES
        for pbx in system.pbxes.values():
            assert pbx.size() == UPDATES
        return UPDATES / elapsed
    finally:
        system.close()


def _measure(n_pbxes: int, workers: int) -> float:
    return max(_run_once(n_pbxes, workers) for _ in range(REPEATS))


@pytest.mark.benchmarks
def test_parallel_fanout_throughput():
    results = []
    for n_pbxes in (1, 2, 4):
        devices = n_pbxes + 1  # + messaging platform
        serial = _measure(n_pbxes, workers=1)
        parallel = _measure(n_pbxes, workers=devices)
        results.append(
            {
                "pbxes": n_pbxes,
                "devices": devices,
                "serial_seq_per_s": round(serial, 1),
                "parallel_seq_per_s": round(parallel, 1),
                "parallel_workers": devices,
                "speedup": round(parallel / serial, 2),
            }
        )

    document = {
        "benchmark": "pipeline_fanout_throughput",
        "workload": {
            "updates_per_run": UPDATES,
            "repeats": REPEATS,
            "link_latency_s": LINK_LATENCY,
            "metric": "update sequences per second, best of repeats",
        },
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print("\n=== pipeline fan-out throughput ===")
    print("pbxes  devices  serial/s  parallel/s  speedup")
    for row in results:
        print(
            f"{row['pbxes']:>5}  {row['devices']:>7}  "
            f"{row['serial_seq_per_s']:>8}  {row['parallel_seq_per_s']:>10}  "
            f"{row['speedup']:>6}x"
        )

    largest = results[-1]
    assert largest["speedup"] >= SPEEDUP_FLOOR, (
        f"parallel fan-out speedup {largest['speedup']}x with "
        f"{largest['devices']} devices is below the {SPEEDUP_FLOOR}x floor"
    )
