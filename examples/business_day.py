#!/usr/bin/env python3
"""One simulated business day at a MetaComm site.

Morning: HR provisions new hires through the WBA.  All day: a mixed
stream of web-form edits and craft-terminal changes (the paper's premise:
"a small number of DDUs are made against any given entry per day").
Evening: the nightly resynchronization sweep confirms nothing drifted.

Run:  python examples/business_day.py
"""

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.wba import WebAdmin
from repro.workloads import (
    UpdatePath,
    apply_event,
    make_population,
    make_stream,
    populate_via_ldap,
)


def main() -> None:
    system = MetaComm(
        MetaCommConfig(
            organizations=("Marketing", "R&D", "Operations"),
            pbxes=[PbxConfig("pbx-main", ("4",))],
        )
    )
    wba = WebAdmin(system)

    print("== 08:30 — HR provisions the week's new hires ==")
    people = make_population(12, seed=20260705)
    populate_via_ldap(system, people)
    print(f"  {len(people)} users provisioned; "
          f"{system.pbx('pbx-main').size()} stations, "
          f"{system.messaging.size()} mailboxes")

    print("\n== 09:00-17:00 — the day's churn ==")
    events = make_stream(
        people, 40, ddu_fraction=0.25, conflict_probability=0.1, seed=42
    )
    ldap_count = ddu_count = 0
    for event in events:
        apply_event(system, event)
        if event.path is UpdatePath.DDU:
            ddu_count += 1
        else:
            ldap_count += 1
    print(f"  {ldap_count} web-form edits, {ddu_count} craft-terminal changes")
    print(f"  UM: {system.um.statistics}")

    print("\n== 12:10 — a visitor hotels at a shared desk ==")
    visitor = f"cn={people[0].cn},o=Lucent"
    wba.hotel_checkin(visitor, room="HOTEL-1", port="02B0101")
    print(f"  {people[0].cn} redirected to HOTEL-1")
    wba.hotel_checkout(visitor)
    print(f"  ... and back home at 17:55")

    print("\n== 23:00 — nightly resynchronization sweep ==")
    for device in ("pbx-main", "messaging"):
        report = system.sync.synchronize(device)
        print(f"  {report}")

    print("\n== End of day ==")
    print("  consistent:", system.consistent())
    print("  errors logged:", len(system.error_log))
    print(wba.render_user_list()[:600])


if __name__ == "__main__":
    main()
