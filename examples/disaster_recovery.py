#!/usr/bin/env python3
"""Failure handling and recovery (paper sections 4.4 and 5.1).

Three incidents, three recoveries:

1. a device rejects an update mid-sequence — the error lands in the
   directory's error log and the administrator is paged;
2. the PBX operates disconnected for a while (its DDU notifications are
   lost) — resynchronization brings the directory back in line;
3. a simulated UM crash between the ModifyRDN/Modify pair of a complex
   rename leaves a reader-visible inconsistency that the restart's
   resynchronization repairs.

Run:  python examples/disaster_recovery.py
"""

from repro.core import MetaComm, MetaCommConfig, UmCrash
from repro.devices import InvalidFieldError
from repro.schemas import PERSON_CLASSES


def main() -> None:
    system = MetaComm(MetaCommConfig(organizations=("Operations",)))
    conn = system.connection()
    pages = []
    system.error_log.add_admin_listener(
        lambda note: pages.append(f"PAGE admin: [{note.error_id}] "
                                  f"{note.target}: {note.message}")
    )

    print("== Incident 1: the PBX rejects an update mid-sequence ==")
    system.pbx().fault_injector = lambda op, key: (_ for _ in ()).throw(
        InvalidFieldError("translation table full")
    )
    conn.add(
        "cn=Ana Garcia,o=Operations,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "Ana Garcia", "sn": "Garcia", "definityExtension": "4500",
        },
    )
    system.pbx().fault_injector = None
    for page in pages:
        print(" ", page)
    print("  Error log entries:", [e.first("cn") for e in system.error_log.entries()])
    print("  Repairing with push_directory + synchronize ...")
    system.sync.push_directory("definity")
    system.sync.synchronize("definity")
    print("  Consistent again:", system.consistent())

    print("\n== Incident 2: the PBX runs disconnected ==")
    binding = system.um.binding("definity")
    saved_handler = binding.filter._ddu_handler
    binding.filter._ddu_handler = None  # notifications fall on the floor
    system.pbx().change_station("4500", Room="DR-1", agent="craft")
    system.pbx().add_station("4501", Name="Novak, Ivan", agent="craft")
    print("  Changes made while disconnected; consistent?",
          system.consistent())
    binding.filter._ddu_handler = saved_handler
    report = system.sync.synchronize("definity")
    print(f"  {report}")
    print("  Consistent after resync:", system.consistent())

    print("\n== Incident 3: UM crash inside a ModifyRDN/Modify pair ==")
    system.ldap_filter.crash_hook = lambda stage: (_ for _ in ()).throw(
        UmCrash(stage)
    )
    try:
        system.terminal().execute(
            'change station 4501 name "Novak, Ivana" room 9Z-999'
        )
    except UmCrash as crash:
        print(f"  UM crashed at stage {str(crash)!r} — readers now see an "
              "entry renamed but only partially updated")
    system.ldap_filter.crash_hook = None
    (entry,) = system.find_person("(definityExtension=4501)")
    print(f"  cn={entry.first('cn')}  definityRoom={entry.first('definityRoom')}")
    print("  Restart: resynchronizing ...")
    system.sync.synchronize("definity")
    (entry,) = system.find_person("(definityExtension=4501)")
    print(f"  cn={entry.first('cn')}  definityRoom={entry.first('definityRoom')}")
    print("  Consistent:", system.consistent())


if __name__ == "__main__":
    main()
