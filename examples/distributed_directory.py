#!/usr/bin/env python3
"""A distributed deployment: remote clients, replicated directory.

Combines three pieces of the substrate that the paper leans on but
describes only briefly:

* the LTAP gateway served **over TCP**, so "any LDAP tool" can really be
  any process ("LDAP commands intended for the LDAP server are intercepted
  by LTAP", section 4.3);
* a **read replica** fed by the replication engine — section 2's "LDAP
  servers make extensive use of replication to make directory information
  highly available";
* the MetaComm pipeline running behind it all: the remote client's writes
  still provision the PBX and the messaging platform.

Run:  python examples/distributed_directory.py
"""

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import LdapConnection, LdapServer, Scope
from repro.ldap.net import LdapTcpServer, RemoteLdapHandler
from repro.ldap.replication import ReplicationEngine
from repro.schemas import PERSON_CLASSES


def main() -> None:
    print("== Building the site ==")
    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))

    # A read replica of the master directory.
    replica = LdapServer(["o=Lucent"], server_id="replica")
    LdapConnection(replica).add(
        "o=Lucent", {"objectClass": ["top", "organization"], "o": "Lucent"}
    )
    replication = ReplicationEngine()
    replication.connect(system.server, replica)
    replication.propagate()

    with LdapTcpServer(system.gateway) as tcp:
        host, port = tcp.address
        print(f"LTAP gateway listening on {host}:{port}")

        print("\n== A remote admin tool connects over TCP ==")
        with RemoteLdapHandler(host, port) as wire:
            remote = LdapConnection(wire)
            remote.add(
                "cn=Wei Chen,o=Marketing,o=Lucent",
                {
                    "objectClass": list(PERSON_CLASSES),
                    "cn": "Wei Chen",
                    "sn": "Chen",
                    "definityExtension": "4107",
                },
            )
            entry = remote.get("cn=Wei Chen,o=Marketing,o=Lucent")
            print("Remote client sees mailbox:", entry.get("mpMailboxId"))

        print("\nThe devices were provisioned behind the socket:")
        print("  station:   ", system.pbx().station("4107"))
        print("  subscriber:", system.messaging.subscriber("+1 908 582 4107"))

    print("\n== Replication ships the changes to the read replica ==")
    shipped = replication.propagate()
    print(f"  {shipped} changes shipped; converged: {replication.converged()}")
    hits = LdapConnection(replica).search(
        "o=Lucent", Scope.SUB, "(definityExtension=4107)"
    )
    print("  replica search result:", [str(e.dn) for e in hits])
    print(
        "  reads served by replica:", replica.statistics["reads"],
        "| master:", system.server.statistics["reads"],
    )
    print("\nAll repositories consistent:", system.consistent())


if __name__ == "__main__":
    main()
