#!/usr/bin/env python3
"""Hoteling: shared workspaces reserved as needed (paper section 4.5).

"Using MetaComm administration, an authorized user/program can easily
redirect a telephone extension to a port in another room."  This example
drives the Web-Based Administration app: a visiting employee checks into a
hotel desk, works for the day (calls ring at the visited desk), and checks
out — three form submissions instead of a craft-terminal session per move.

Run:  python examples/hoteling.py
"""

from repro.core import MetaComm, MetaCommConfig
from repro.wba import WebAdmin


def main() -> None:
    system = MetaComm(MetaCommConfig(organizations=("Marketing", "R&D")))
    wba = WebAdmin(system)

    print("== Provisioning staff through the WBA ==")
    jill = wba.create_user(
        "R&D", full_name="Jill Lu", surname="Lu",
        extension="4200", room="3C-301",
    )
    wba.create_user(
        "Marketing", full_name="John Doe", surname="Doe",
        extension="4100", room="2B-110",
    )
    print(wba.render_user_list())

    print("\n== Jill visits the Murray Hill hotel floor for the day ==")
    wba.hotel_checkin(jill, room="6F-002", port="02B0101")
    print("After check-in, the PBX has her extension at the hotel desk:")
    print(system.terminal().execute("display station 4200").text)

    print("\nThe directory agrees (one integrated view):")
    print(wba.render_user_form(jill))

    print("\n== End of day: check-out restores the home desk ==")
    wba.hotel_checkout(jill)
    station = system.pbx().station("4200")
    print(f"Station 4200 back in room {station['Room']}; port released:",
          "Port" not in station)

    print("\nAll repositories consistent:", system.consistent())


if __name__ == "__main__":
    main()
