#!/usr/bin/env python3
"""Onboarding a legacy switch into the meta-directory (paper section 4.4).

A Definity that has been administered for years holds the only copy of its
user data.  MetaComm's synchronization facility pulls it into the LDAP
directory ("This is necessary to populate the directory initially"), the
messaging platform gets subscribers for every extension, and the result is
exported as LDIF for the corporate directory team.

Run:  python examples/legacy_onboarding.py
"""

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import write_ldif
from repro.workloads import make_population, populate_via_pbx


def main() -> None:
    system = MetaComm(MetaCommConfig())

    print("== Years of craft-terminal administration (simulated) ==")
    people = make_population(8, seed=2026)
    populate_via_pbx(system, people)
    print(system.terminal().execute("list station").text)
    print(f"\nDirectory entries before onboarding: "
          f"{len(system.find_person('(objectClass=person)'))}")

    print("\n== Initial load: synchronize(definity) ==")
    report = system.sync.synchronize("definity")
    print(" ", report)
    print("  The sync ran quiesced, as one persistent-connection sequence:")
    print("   ", system.um.connections.statistics)

    print("\n== The integrated view ==")
    people_entries = system.find_person("(objectClass=person)")
    for entry in sorted(people_entries, key=lambda e: e.first("cn") or ""):
        print(f"  {entry.first('cn'):<22} ext={entry.first('definityExtension')}"
              f"  phone={entry.first('telephoneNumber')}"
              f"  mailbox={entry.first('mpMailboxId')}")
    print("\nMessaging subscribers provisioned:", system.messaging.size())
    print("Consistent:", system.consistent())

    print("\n== LDIF export for the corporate directory team ==")
    document = write_ldif(people_entries[:2])
    print(document)


if __name__ == "__main__":
    main()
