#!/usr/bin/env python3
"""Office move across PBX partitions (paper section 4.2).

"When a person's telephone number changes, the Definity PBX that manages
the person's extension may also change.  In this case lexpress translates
a modification of a telephone number into two updates: a deletion in one
PBX and an add in another PBX."

Two switches share the site: pbx-west owns extensions 41xx-42xx, pbx-east
owns 43xx.  One LDAP modify moves an employee between buildings; MetaComm
performs the delete-at-west / add-at-east migration automatically.

Run:  python examples/office_move.py
"""

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.ldap import Modification
from repro.schemas import PERSON_CLASSES


def show_switches(system: MetaComm) -> None:
    for name in ("pbx-west", "pbx-east"):
        stations = [r["Extension"] for r in system.pbx(name).list_stations()]
        print(f"  {name}: stations {stations or '(none)'}")


def main() -> None:
    system = MetaComm(
        MetaCommConfig(
            organizations=("R&D",),
            pbxes=[
                PbxConfig("pbx-west", ("41", "42")),
                PbxConfig("pbx-east", ("43",)),
            ],
        )
    )
    conn = system.connection()

    print("== Hiring Pat Smith in the west building ==")
    conn.add(
        "cn=Pat Smith,o=R&D,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "Pat Smith",
            "sn": "Smith",
            "definityExtension": "4150",
            "definityRoom": "W2-100",
        },
    )
    show_switches(system)

    print("\n== Pat moves to the east building (one LDAP modify) ==")
    conn.modify(
        "cn=Pat Smith,o=R&D,o=Lucent",
        [
            Modification.replace("definityExtension", "4310"),
            Modification.replace("telephoneNumber", "+1 908 582 4310"),
            Modification.replace("definityRoom", "E1-220"),
        ],
    )
    show_switches(system)
    print("  (the modification became a delete at pbx-west and an add at pbx-east)")

    print("\nEast station record:", system.pbx("pbx-east").station("4310"))
    print("Voice mailbox follows the number:",
          system.messaging.subscriber("+1 908 582 4310")["MailboxId"])
    print("\nAll repositories consistent:", system.consistent())


if __name__ == "__main__":
    main()
