#!/usr/bin/env python3
"""Quickstart: the MetaComm loop in two minutes.

Builds a full deployment (LDAP server + LTAP gateway + Definity PBX +
messaging platform + Update Manager), then shows the two update paths of
the paper's Figure 1:

1. an LDAP client (any LDAP tool) creates a person — the PBX station and
   the voice mailbox appear automatically;
2. a PBX administrator changes the station on the legacy craft terminal —
   the directory follows.

Run:  python examples/quickstart.py
"""

from repro.core import MetaComm, MetaCommConfig
from repro.schemas import PERSON_CLASSES


def main() -> None:
    print("== Building the MetaComm deployment ==")
    system = MetaComm(MetaCommConfig(organizations=("Marketing", "R&D")))
    conn = system.connection()  # through the LTAP gateway

    print("\n== Path 1: update through LDAP (the WBA / browser path) ==")
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "John Doe",
            "sn": "Doe",
            "definityExtension": "4100",
            "definityRoom": "2B-110",
        },
    )
    print("Added cn=John Doe with extension 4100.")
    print("PBX station:     ", system.pbx().station("4100"))
    print("Voice subscriber:", system.messaging.subscriber("+1 908 582 4100"))

    entry = conn.get("cn=John Doe,o=Marketing,o=Lucent")
    print("Directory entry now carries device-generated data:")
    print("  telephoneNumber =", entry.get("telephoneNumber"))
    print("  mpMailboxId     =", entry.get("mpMailboxId"))

    print("\n== Path 2: direct device update (the legacy craft terminal) ==")
    terminal = system.terminal()
    response = terminal.execute("change station 4100 room 5D-200 cos 2")
    print(response.text)
    entry = conn.get("cn=John Doe,o=Marketing,o=Lucent")
    print("Directory followed the device:")
    print("  definityRoom =", entry.get("definityRoom"))
    print("  definityCOS  =", entry.get("definityCOS"))
    print("  lastUpdater  =", entry.get("lastUpdater"))

    print("\n== Consistency ==")
    print("All repositories consistent:", system.consistent())
    print("Update Manager statistics:  ", system.um.statistics)


if __name__ == "__main__":
    main()
