"""MetaComm: a meta-directory for telecommunications.

A full, from-scratch reproduction of the ICDE 2000 industrial paper by
Freire, Lieuwen, Ordille et al. (Bell Labs).  The package layout follows
the paper's architecture (Figure 1):

* :mod:`repro.ldap` — an in-memory LDAP directory service (DIT, schema,
  RFC 2254 filters, LDIF, replication);
* :mod:`repro.ltap` — the LTAP trigger gateway (triggers, entry locks,
  persistent connections, quiesce);
* :mod:`repro.lexpress` — the declarative schema-mapping language
  (compiler → byte code → interpreter, transitive closure, partitioning);
* :mod:`repro.devices` — legacy device simulators (Definity PBX with an
  OSSI terminal, voice messaging platform);
* :mod:`repro.schemas` — the integrated X.500 schema and standard mappings;
* :mod:`repro.core` — the Update Manager, filters, synchronizer, and the
  :class:`~repro.core.MetaComm` facade;
* :mod:`repro.wba` — web-based administration and the hoteling app;
* :mod:`repro.workloads` — synthetic population/update-stream generators.

Quickstart::

    from repro.core import MetaComm, MetaCommConfig

    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
    conn = system.connection()           # through the LTAP gateway
    terminal = system.terminal()         # the legacy craft terminal
"""

from .core.metacomm import MetaComm, MetaCommConfig, PbxConfig

__version__ = "1.0.0"

__all__ = ["MetaComm", "MetaCommConfig", "PbxConfig", "__version__"]
