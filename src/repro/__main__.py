"""Command-line entry point: ``python -m repro [command]``.

Commands
--------
demo        the quickstart walk-through (default)
tree        build and print the paper's Figure-2 sample tree as LDIF
mappings    show the standard telecom mapping library (source + disassembly)
check       lexcheck — static analysis of the mapping configuration
stats       run the demo workload, dump metrics (Prometheus text) + traces
experiments list the experiment harness and how to run it

``check`` usage::

    python -m repro check [--json] [--fail-on=warning] [--show-suppressed]
                          [description.lex ...]

With no files, analyzes the default MetaComm deployment (the standard
mapping library plus its device bindings).  With files, compiles each
lexpress description and analyzes them as one configuration.  Exit code
is 1 when error-severity findings remain (or warnings, with
``--fail-on=warning``), 0 otherwise.
"""

from __future__ import annotations

import sys


def cmd_demo(args: list[str]) -> int:
    from repro.core import MetaComm, MetaCommConfig
    from repro.schemas import PERSON_CLASSES

    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
    conn = system.connection()
    print("MetaComm demo — one update per path of Figure 1\n")
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "John Doe",
            "sn": "Doe",
            "definityExtension": "4100",
        },
    )
    print("LDAP add  -> station:", system.pbx().station("4100"))
    print("          -> mailbox:", system.messaging.mailbox_of("+1 908 582 4100"))
    system.terminal().execute("change station 4100 room 2B-110")
    entry = conn.get("cn=John Doe,o=Marketing,o=Lucent")
    print("DDU       -> directory definityRoom:", entry.get("definityRoom"))
    print("\nconsistent:", system.consistent())
    print("UM stats: ", system.um.statistics)
    return 0


def cmd_tree(args: list[str]) -> int:
    from repro.ldap import LdapConnection, LdapServer, write_ldif

    server = LdapServer(["o=Lucent"])
    conn = LdapConnection(server)
    conn.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    figure2 = {
        "Marketing": "John Doe",
        "Accounting": "Pat Smith",
        "R&D": "Tim Dickens",
        "DEN Group": "Jill Lu",
    }
    for org, cn in figure2.items():
        conn.add(f"o={org},o=Lucent", {"objectClass": "organization", "o": org})
        conn.add(
            f"cn={cn},o={org},o=Lucent",
            {"objectClass": "person", "cn": cn, "sn": cn.split()[-1]},
        )
    print(write_ldif(server.backend.all_entries()))
    return 0


def cmd_mappings(args: list[str]) -> int:
    from repro.schemas import render_mp_pair, render_pbx_pair, standard_mappings

    print(render_pbx_pair())
    print(render_mp_pair())
    print("# --- compiled rule disassembly (pbx_to_ldap.cn) ---")
    mapping = standard_mappings()["pbx_to_ldap"]
    for rule in mapping.rules:
        if rule.target == "cn":
            print(rule.code.disassemble())
    return 0


def cmd_check(args: list[str]) -> int:
    """lexcheck: static analysis of a mapping configuration."""
    from repro.analysis import (
        AnalysisTarget,
        InstanceBinding,
        analyze,
        render_json,
        render_text,
    )

    as_json = False
    fail_on = "error"
    show_suppressed = False
    files: list[str] = []
    for arg in args:
        if arg == "--json":
            as_json = True
        elif arg.startswith("--fail-on="):
            fail_on = arg.split("=", 1)[1]
            if fail_on not in ("error", "warning"):
                print(f"check: bad --fail-on value {fail_on!r} "
                      "(expected 'error' or 'warning')", file=sys.stderr)
                return 2
        elif arg == "--show-suppressed":
            show_suppressed = True
        elif arg.startswith("-"):
            print(f"check: unknown option {arg!r}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        else:
            files.append(arg)

    if files:
        from repro.lexpress import LexpressError, compile_description

        mappings = {}
        for path in files:
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
                compiled = compile_description(source)
            except OSError as exc:
                print(f"check: {path}: {exc}", file=sys.stderr)
                return 2
            except LexpressError as exc:
                print(f"check: {path}: {exc}", file=sys.stderr)
                return 2
            for name, mapping in compiled.items():
                if name in mappings:
                    print(f"check: duplicate mapping {name!r} in {path}",
                          file=sys.stderr)
                    return 2
                mappings[name] = mapping
        target = AnalysisTarget(
            mappings=list(mappings.values()),
            # Each mapping is its own (unnarrowed) instance so partition
            # constraints are checked against each other.
            instances=[
                InstanceBinding(m.name, m) for m in mappings.values()
            ],
        )
        report = analyze(target)
    else:
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig()) as system:
            report = system.analyze()

    if as_json:
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=show_suppressed))
    failed = bool(report.errors) or (fail_on == "warning" and report.warnings)
    return 1 if failed else 0


def cmd_stats(args: list[str]) -> int:
    """Run the demo workload and dump the pipeline's observability data.

    Output is valid Prometheus text exposition format end to end: the
    trace summaries are emitted as ``#``-prefixed comment lines, so the
    whole thing can be piped straight into a scrape file.
    """
    from repro.core import MetaComm, MetaCommConfig
    from repro.schemas import PERSON_CLASSES

    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
    conn = system.connection()
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "John Doe",
            "sn": "Doe",
            "definityExtension": "4100",
        },
    )
    system.terminal().execute("change station 4100 room 2B-110")

    for trace in system.traces():
        spans = ", ".join(
            f"{span.name}={span.duration * 1e6:.0f}us" for span in trace.spans
        )
        print(f"# trace: {trace.trace_id} ({trace.name}): {spans}")
    print(system.metrics_text(), end="")
    return 0


def cmd_experiments(args: list[str]) -> int:
    print(
        "Experiment harness (one module per DESIGN.md row):\n"
        "  pytest benchmarks/ --benchmark-only        # timings\n"
        "  pytest benchmarks/ --benchmark-only -s     # + result tables\n\n"
        "F1/F2 reproduce the paper's figures; E1-E13 its behavioural\n"
        "claims; A1-A4 are ablations of the design decisions.  See\n"
        "EXPERIMENTS.md for the paper-claim vs measured summary."
    )
    return 0


COMMANDS = {
    "demo": cmd_demo,
    "tree": cmd_tree,
    "mappings": cmd_mappings,
    "check": cmd_check,
    "stats": cmd_stats,
    "experiments": cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    name = argv[0] if argv else "demo"
    command = COMMANDS.get(name)
    if command is None:
        print(__doc__)
        return 2
    return command(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
