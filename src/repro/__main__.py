"""Command-line entry point: ``python -m repro [command]``.

Commands
--------
demo        the quickstart walk-through (default)
tree        build and print the paper's Figure-2 sample tree as LDIF
mappings    show the standard telecom mapping library (source + disassembly)
check       lexcheck — static analysis of the mapping configuration
stats       run the demo workload, dump metrics (Prometheus text) + traces
monitor     run the demo workload, show the health-plane dashboard
events      run the demo workload, print the event journal
experiments list the experiment harness and how to run it

``check`` usage::

    python -m repro check [--json] [--fail-on=warning] [--show-suppressed]
                          [--disasm] [description.lex ...]
    python -m repro check --concurrency [--json] [--fail-on=warning]

With no files, analyzes the default MetaComm deployment (the standard
mapping library plus its device bindings).  With files, compiles each
lexpress description and analyzes them as one configuration.  Exit code
is 1 when error-severity findings remain (or warnings, with
``--fail-on=warning``), 0 otherwise.  ``--disasm`` appends the optimized
byte code of every analyzed rule (what the compiled tier lowers; see
docs/LEXPRESS_COMPILER.md).  ``--concurrency`` runs the LX5xx lint pass
over the runtime source instead (lock-order inversions, blocking calls
under locks, guarded-field races — docs/CONCURRENCY.md); with ``--json``
the document carries the acquisition-order graph under ``lock_order``.

``stats`` usage::

    python -m repro stats [--lexpress=interpret|compiled|verify]

``--lexpress`` selects the rule execution engine for the workload
(docs/LEXPRESS_COMPILER.md); ``compiled`` and ``verify`` add a
``#``-prefixed compiled-rule-cache section ahead of the metrics.

``monitor`` usage::

    python -m repro monitor [--json] [--watch] [--interval=0.5] [--cycles=N]
                            [--lanes=N] [--links]

One-shot by default: runs the demo workload, one full audit cycle, and
prints queue staleness, per-device health, active alerts and the audit
verdict.  ``--watch`` redraws every ``--interval`` seconds (``--cycles``
bounds the redraws; Ctrl-C stops).  ``--links`` runs the workload over
event-driven device links (docs/DEVICE_LINKS.md) and adds a per-device
link section: window occupancy, the batch-size histogram, and the
deferred/rejected admission counters.  Exit code is 1 when any alert is
active, 0 otherwise.

``events`` usage::

    python -m repro events [--json] [--follow] [--limit=N] [--witness]

Prints the event journal of the demo workload — text lines by default,
JSONL with ``--json`` (pipe to a file for offline analysis).
``--follow`` prints each event as it is emitted, while the workload runs.
``--witness`` runs the workload under the runtime lock witness
(docs/CONCURRENCY.md) so any ``witness.violation`` events appear in the
stream.
"""

from __future__ import annotations

import sys


def cmd_demo(args: list[str]) -> int:
    from repro.core import MetaComm, MetaCommConfig
    from repro.schemas import PERSON_CLASSES

    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
    conn = system.connection()
    print("MetaComm demo — one update per path of Figure 1\n")
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "John Doe",
            "sn": "Doe",
            "definityExtension": "4100",
        },
    )
    print("LDAP add  -> station:", system.pbx().station("4100"))
    print("          -> mailbox:", system.messaging.mailbox_of("+1 908 582 4100"))
    system.terminal().execute("change station 4100 room 2B-110")
    entry = conn.get("cn=John Doe,o=Marketing,o=Lucent")
    print("DDU       -> directory definityRoom:", entry.get("definityRoom"))
    print("\nconsistent:", system.consistent())
    print("UM stats: ", system.um.statistics)
    return 0


def cmd_tree(args: list[str]) -> int:
    from repro.ldap import LdapConnection, LdapServer, write_ldif

    server = LdapServer(["o=Lucent"])
    conn = LdapConnection(server)
    conn.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    figure2 = {
        "Marketing": "John Doe",
        "Accounting": "Pat Smith",
        "R&D": "Tim Dickens",
        "DEN Group": "Jill Lu",
    }
    for org, cn in figure2.items():
        conn.add(f"o={org},o=Lucent", {"objectClass": "organization", "o": org})
        conn.add(
            f"cn={cn},o={org},o=Lucent",
            {"objectClass": "person", "cn": cn, "sn": cn.split()[-1]},
        )
    print(write_ldif(server.backend.all_entries()))
    return 0


def cmd_mappings(args: list[str]) -> int:
    from repro.schemas import render_mp_pair, render_pbx_pair, standard_mappings

    print(render_pbx_pair())
    print(render_mp_pair())
    print("# --- compiled rule disassembly (pbx_to_ldap.cn) ---")
    mapping = standard_mappings()["pbx_to_ldap"]
    for rule in mapping.rules:
        if rule.target == "cn":
            print(rule.code.disassemble())
    return 0


def cmd_check(args: list[str]) -> int:
    """lexcheck: static analysis of a mapping configuration."""
    from repro.analysis import (
        AnalysisTarget,
        InstanceBinding,
        analyze,
        render_json,
        render_text,
    )

    as_json = False
    fail_on = "error"
    show_suppressed = False
    disasm = False
    concurrency = False
    files: list[str] = []
    for arg in args:
        if arg == "--json":
            as_json = True
        elif arg == "--concurrency":
            concurrency = True
        elif arg.startswith("--fail-on="):
            fail_on = arg.split("=", 1)[1]
            if fail_on not in ("error", "warning"):
                print(f"check: bad --fail-on value {fail_on!r} "
                      "(expected 'error' or 'warning')", file=sys.stderr)
                return 2
        elif arg == "--show-suppressed":
            show_suppressed = True
        elif arg == "--disasm":
            disasm = True
        elif arg.startswith("-"):
            print(f"check: unknown option {arg!r}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        else:
            files.append(arg)

    if concurrency:
        # LX5xx: the runtime's own lock discipline, not the mapping
        # configuration (docs/CONCURRENCY.md).  Extra positional args are
        # package roots to analyze instead of the shipped tree.
        from repro.analysis.concur import lock_order_report

        import json as _json

        root = files[0] if files else None
        report, graph = lock_order_report(root)
        if as_json:
            document = _json.loads(render_json(report))
            document["lock_order"] = graph.to_dict()
            print(_json.dumps(document, indent=2))
        else:
            print(render_text(report, show_suppressed=show_suppressed))
            print(
                f"lock-order graph: {len(graph.nodes)} lock(s), "
                f"{len(graph.pairs())} ordered pair(s)"
            )
            for held, acquired in graph.pairs():
                print(f"  {held} -> {acquired}")
        failed = bool(report.errors) or (
            fail_on == "warning" and report.warnings
        )
        return 1 if failed else 0

    if files:
        from repro.lexpress import LexpressError, compile_description

        mappings = {}
        for path in files:
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
                compiled = compile_description(source)
            except OSError as exc:
                print(f"check: {path}: {exc}", file=sys.stderr)
                return 2
            except LexpressError as exc:
                print(f"check: {path}: {exc}", file=sys.stderr)
                return 2
            for name, mapping in compiled.items():
                if name in mappings:
                    print(f"check: duplicate mapping {name!r} in {path}",
                          file=sys.stderr)
                    return 2
                mappings[name] = mapping
        target = AnalysisTarget(
            mappings=list(mappings.values()),
            # Each mapping is its own (unnarrowed) instance so partition
            # constraints are checked against each other.
            instances=[
                InstanceBinding(m.name, m) for m in mappings.values()
            ],
        )
        report = analyze(target)
        analyzed = list(mappings.values())
    else:
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig()) as system:
            report = system.analyze()
            analyzed = list(system.mappings.values())

    if as_json:
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=show_suppressed))
    if disasm:
        for mapping in analyzed:
            for rule in mapping.rules:
                print(f"\n# --- {mapping.name}.{rule.target} (optimized) ---")
                print(rule.code.disassemble())
    failed = bool(report.errors) or (fail_on == "warning" and report.warnings)
    return 1 if failed else 0


def _demo_system(
    lanes: int = 1,
    lexpress_mode: str = "interpret",
    lock_witness: bool = False,
    links: bool = False,
):
    """The stats/monitor/events demo workload: one LDAP add (fan-out to
    PBX + messaging) and one DDU (craft-terminal room change).

    ``lanes`` > 1 runs the workload through the commutativity-sharded
    queue (docs/CONCURRENCY.md) so the per-lane monitor section has
    real lanes to show.  ``lexpress_mode`` selects the rule execution
    engine (docs/LEXPRESS_COMPILER.md).  ``lock_witness`` wraps the
    subsystem locks in order-recording proxies so any acquisition-order
    reversal during the workload lands in the journal.  ``links`` routes
    the device fan-out through event-driven device links
    (docs/DEVICE_LINKS.md) so the link monitor section has data.
    """
    from repro.core import MetaComm, MetaCommConfig
    from repro.schemas import PERSON_CLASSES

    system = MetaComm(
        MetaCommConfig(
            organizations=("Marketing",),
            coordinator_lanes=lanes,
            lexpress_mode=lexpress_mode,
            lock_witness=lock_witness,
            device_links=links,
        )
    )
    conn = system.connection()
    conn.add(
        "cn=John Doe,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "John Doe",
            "sn": "Doe",
            "definityExtension": "4100",
        },
    )
    system.terminal().execute("change station 4100 room 2B-110")
    return system


def cmd_stats(args: list[str]) -> int:
    """Run the demo workload and dump the pipeline's observability data.

    Output is valid Prometheus text exposition format end to end: the
    trace summaries are emitted as ``#``-prefixed comment lines, so the
    whole thing can be piped straight into a scrape file.
    """
    from repro.lexpress import MODES, rule_cache

    mode = "interpret"
    for arg in args:
        if arg.startswith("--lexpress="):
            mode = arg.split("=", 1)[1]
            if mode not in MODES:
                print(f"stats: bad --lexpress value {mode!r} "
                      f"(expected one of {', '.join(MODES)})", file=sys.stderr)
                return 2
        else:
            print(f"stats: unknown option {arg!r}", file=sys.stderr)
            return 2

    system = _demo_system(lexpress_mode=mode)
    # Flush before dumping: close any trace still open (so the export
    # never shows dangling in-flight spans) and release the background
    # machinery — the workload is done, the dump must be self-consistent.
    system.close()
    system.obs.tracer.finish_open()

    if mode != "interpret":
        cache = rule_cache().stats()
        pairs = " ".join(f"{key}={cache[key]}" for key in sorted(cache))
        print(f"# lexpress compiled rule cache ({mode} mode): {pairs}")
    for trace in system.traces():
        spans = ", ".join(
            f"{span.name}={span.duration * 1e6:.0f}us" for span in trace.spans
        )
        total = (
            f"total={trace.duration * 1e6:.0f}us"
            if trace.duration is not None
            else "open"
        )
        print(f"# trace: {trace.trace_id} ({trace.name}): {spans} [{total}]")
    print(system.metrics_text(), end="")
    return 0


def _render_monitor(snapshot: dict) -> str:
    """The `monitor` text dashboard for one health-plane snapshot."""
    lines: list[str] = []
    queue = snapshot["queue"]
    lines.append(
        f"queue: depth={queue['depth']} "
        f"oldest_age={queue['oldest_age'] * 1000:.1f}ms "
        f"last_serial={queue['last_serial']}"
    )
    lanes = queue.get("lanes") or []
    if len(lanes) > 1:
        for lane in lanes:
            lines.append(
                f"  lane {lane['lane']:<7} depth={lane['depth']} "
                f"oldest_age={lane['oldest_age'] * 1000:.1f}ms "
                f"last_serial={lane['last_serial']}"
            )
    devices = snapshot["devices"]
    if devices:
        lines.append(
            f"{'device':<12} {'state':<12} {'ok/err':<8} {'streak':<7} "
            f"{'err_rate':<9} {'p50':>9} {'p95':>9} {'p99':>9} {'lag':>4}"
        )
        for name in sorted(devices):
            d = devices[name]
            latency = d["latency"]
            lag = snapshot.get("audit") or {}
            lines.append(
                f"{name:<12} {d['state']:<12} "
                f"{d['successes']}/{d['failures']:<6} {d['streak']:<7} "
                f"{d['error_rate']:<9.2f} "
                f"{latency['p50'] * 1e6:>7.0f}us "
                f"{latency['p95'] * 1e6:>7.0f}us "
                f"{latency['p99'] * 1e6:>7.0f}us "
                f"{lag.get('device_lag', {}).get(name, 0):>4}"
            )
    else:
        lines.append("devices: none observed yet")
    links = snapshot.get("links")
    if links:
        lines.append("links:")
        for link in links:
            sizes = link.get("batch_sizes") or {}
            hist = (
                " ".join(
                    f"{size}x{count}"
                    for size, count in sorted(sizes.items())
                )
                or "-"
            )
            paused = " PAUSED" if link.get("paused") else ""
            lines.append(
                f"  {link['device']:<12} "
                f"window={link['inflight']}/{link['window']} "
                f"pending={link['pending']}/{link['queue_limit']} "
                f"flushes={link['flushes']} batches[{hist}] "
                f"deferred={link['deferred']} "
                f"rejected={link['rejected']}{paused}"
            )
    audit = snapshot.get("audit")
    if audit is not None:
        verdict = "ok" if audit["ok"] else "MISMATCH"
        lines.append(
            f"audit: cycle={audit['cycle']} probed={len(audit['probed'])} "
            f"mismatches={sum(len(v) for v in audit['mismatches'].values())} "
            f"[{verdict}]"
        )
        for device, problems in sorted(audit["mismatches"].items()):
            for problem in problems:
                lines.append(f"  ! {problem}")
    alerts = snapshot["alerts"]
    if alerts:
        lines.append(f"alerts: {len(alerts)} active")
        for alert in alerts:
            labels = " ".join(f"{k}={v}" for k, v in alert["labels"].items())
            lines.append(
                f"  ALERT {alert['rule']} ({alert['expr']}) "
                f"value={alert['value']} {labels}".rstrip()
            )
    else:
        lines.append("alerts: none")
    lines.append(f"journal: {snapshot['journal_events']} events retained")
    return "\n".join(lines)


def cmd_monitor(args: list[str]) -> int:
    """The health-plane dashboard over the demo workload."""
    import json
    import time as _time

    as_json = False
    watch = False
    interval = 0.5
    cycles: int | None = None
    lanes = 1
    links = False
    for arg in args:
        if arg == "--json":
            as_json = True
        elif arg == "--watch":
            watch = True
        elif arg == "--links":
            links = True
        elif arg.startswith("--interval="):
            interval = float(arg.split("=", 1)[1])
        elif arg.startswith("--cycles="):
            cycles = int(arg.split("=", 1)[1])
        elif arg.startswith("--lanes="):
            lanes = int(arg.split("=", 1)[1])
        else:
            print(f"monitor: unknown option {arg!r}", file=sys.stderr)
            return 2

    system = _demo_system(lanes=lanes, links=links)
    try:
        remaining = cycles if cycles is not None else (1 if not watch else None)
        ran = 0
        while True:
            system.auditor.run_cycle(full=True)
            snapshot = system.monitor_snapshot()
            if as_json:
                print(json.dumps(snapshot, sort_keys=True, default=str))
            else:
                if watch and ran:
                    print()
                print(_render_monitor(snapshot))
            ran += 1
            if remaining is not None and ran >= remaining:
                break
            try:
                _time.sleep(interval)
            except KeyboardInterrupt:  # pragma: no cover - interactive
                break
        return 1 if system.alerts.active() else 0
    finally:
        system.close()


def cmd_events(args: list[str]) -> int:
    """Print the demo workload's event journal (text or JSONL)."""
    as_json = False
    follow = False
    witness = False
    limit: int | None = None
    for arg in args:
        if arg == "--json":
            as_json = True
        elif arg == "--follow":
            follow = True
        elif arg == "--witness":
            witness = True
        elif arg.startswith("--limit="):
            limit = int(arg.split("=", 1)[1])
        else:
            print(f"events: unknown option {arg!r}", file=sys.stderr)
            return 2

    def render(event) -> str:
        if as_json:
            return event.to_json()
        attrs = " ".join(f"{k}={v}" for k, v in event.attributes.items())
        trace = f" [{event.trace_id}]" if event.trace_id else ""
        return f"#{event.seq} {event.kind}{trace} {attrs}".rstrip()

    if follow:
        # Stream mode: print each event as the workload emits it.  The
        # journal listener fires synchronously after each append, so the
        # stream is in order and complete.
        from repro.core import MetaComm, MetaCommConfig

        system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
        system.obs.journal.subscribe(lambda event: print(render(event)))
        conn = system.connection()
        from repro.schemas import PERSON_CLASSES

        conn.add(
            "cn=John Doe,o=Marketing,o=Lucent",
            {
                "objectClass": list(PERSON_CLASSES),
                "cn": "John Doe",
                "sn": "Doe",
                "definityExtension": "4100",
            },
        )
        system.terminal().execute("change station 4100 room 2B-110")
        system.auditor.run_cycle(full=True)
        system.close()
        return 0

    system = _demo_system(lock_witness=witness)
    system.auditor.run_cycle(full=True)
    system.close()
    events = system.obs.journal.events()
    if limit is not None:
        events = events[-limit:]
    for event in events:
        print(render(event))
    return 0


def cmd_experiments(args: list[str]) -> int:
    print(
        "Experiment harness (one module per DESIGN.md row):\n"
        "  pytest benchmarks/ --benchmark-only        # timings\n"
        "  pytest benchmarks/ --benchmark-only -s     # + result tables\n\n"
        "F1/F2 reproduce the paper's figures; E1-E13 its behavioural\n"
        "claims; A1-A4 are ablations of the design decisions.  See\n"
        "EXPERIMENTS.md for the paper-claim vs measured summary."
    )
    return 0


COMMANDS = {
    "demo": cmd_demo,
    "tree": cmd_tree,
    "mappings": cmd_mappings,
    "check": cmd_check,
    "stats": cmd_stats,
    "monitor": cmd_monitor,
    "events": cmd_events,
    "experiments": cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    name = argv[0] if argv else "demo"
    command = COMMANDS.get(name)
    if command is None:
        print(__doc__)
        return 2
    return command(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
