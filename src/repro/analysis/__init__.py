"""repro.analysis — lexcheck, whole-configuration static analysis.

A MetaComm deployment is configured, not coded: mapping sets, partition
constraints, and schema declarations together decide where every update
flows.  The runtime discovers mistakes one failed update at a time; this
package finds them all at once, before boot.  See docs/ANALYSIS.md for
the diagnostic catalogue and the pass architecture.

Entry points:

* :func:`analyze` / :func:`analyze_strict` over an :class:`AnalysisTarget`
* ``MetaComm`` builds its own target — ``system.analyze()`` or
  ``MetaCommConfig(strict_analysis=True)``
* ``python -m repro check [--json] [files...]`` from the command line
"""

from .concur import (
    analyze_concurrency,
    analyze_concurrency_strict,
    lock_order_report,
    static_lock_order,
)
from .diagnostics import CATALOG, Diagnostic, Severity, Suppressions, sort_key
from .graph import check_graph
from .partitions import InstanceBinding, check_partitions
from .report import render_json, render_text
from .routing import (
    SERIAL_REASONS,
    LaneDecision,
    RoutingPlan,
    build_routing_plan,
)
from .rules import check_mapping_rules
from .runner import (
    AnalysisError,
    AnalysisReport,
    AnalysisTarget,
    analyze,
    analyze_strict,
)
from .verifier import verify_code

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "AnalysisTarget",
    "CATALOG",
    "Diagnostic",
    "InstanceBinding",
    "LaneDecision",
    "RoutingPlan",
    "SERIAL_REASONS",
    "Severity",
    "Suppressions",
    "analyze",
    "analyze_concurrency",
    "analyze_concurrency_strict",
    "analyze_strict",
    "build_routing_plan",
    "lock_order_report",
    "static_lock_order",
    "check_graph",
    "check_mapping_rules",
    "check_partitions",
    "render_json",
    "render_text",
    "sort_key",
    "verify_code",
]
