"""repro.analysis.concur — concurrency lints over the runtime itself.

lexcheck's LX1xx–LX4xx passes analyze lexpress *configurations*; this
package points the same diagnostic machinery at the Python runtime that
executes them.  An AST walk over ``src/repro`` builds a per-class lock
model (:mod:`~repro.analysis.concur.model`), call-graph fixpoints
propagate "locks held" / "may block" / "may invoke callbacks" summaries,
and five checks (:mod:`~repro.analysis.concur.passes`) emit LX501–LX505
findings through the PR-3 catalogue, reporters, and inline
``# lexcheck: ignore[LX5nn]`` suppressions.

Entry points:

* :func:`analyze_concurrency` — full run, returns the standard
  :class:`~repro.analysis.runner.AnalysisReport`
* :func:`lock_order_report` — report **plus** the acquisition-order
  graph (for ``--json`` output, docs, and CI artifacts)
* :func:`static_lock_order` — memoized ``(held, acquired)`` pair set of
  the shipped tree; seeds :mod:`repro.obs.lockwitness`
* ``python -m repro check --concurrency [--json]`` / ``make check-concur``
"""

from __future__ import annotations

from pathlib import Path

from ..diagnostics import Diagnostic, Suppressions, sort_key
from ..runner import AnalysisError, AnalysisReport
from .model import PackageModel, build_model, default_root
from .passes import LockOrderGraph, build_lock_order_graph, run_passes

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "LockOrderGraph",
    "PackageModel",
    "analyze_concurrency",
    "analyze_concurrency_strict",
    "build_lock_order_graph",
    "build_model",
    "lock_order_report",
    "static_lock_order",
]


def lock_order_report(
    root: str | Path | None = None, registry=None
) -> tuple[AnalysisReport, LockOrderGraph]:
    """Run the LX5xx passes over *root* (default: the installed tree)."""
    model = build_model(Path(root) if root is not None else None)
    raw, graph = run_passes(model)
    report = _fold_suppressions(model, raw)
    if registry is not None:
        counter = registry.counter(
            "metacomm_concurrency_diagnostics_total",
            "Concurrency-analysis findings by severity.",
            labelnames=("severity",),
        )
        for code_count, severity in (
            (len(report.errors), "error"),
            (len(report.warnings), "warning"),
            (len(report.infos), "info"),
        ):
            if code_count:
                counter.labels(severity=severity).inc(code_count)
    return report, graph


def analyze_concurrency(
    root: str | Path | None = None, registry=None
) -> AnalysisReport:
    """The LX5xx report alone (most callers want just the findings)."""
    report, _graph = lock_order_report(root, registry=registry)
    return report


def analyze_concurrency_strict(
    root: str | Path | None = None, registry=None
) -> AnalysisReport:
    """:func:`analyze_concurrency`, raising on error-severity findings.

    The strict boot gate (``MetaCommConfig(strict_concurrency=True)``)
    refuses to construct a runtime whose lock discipline has a known
    inversion."""
    report = analyze_concurrency(root, registry=registry)
    if not report.ok:
        raise AnalysisError(report)
    return report


_STATIC_ORDER: list[tuple[str, str]] | None = None


def static_lock_order() -> list[tuple[str, str]]:
    """``(held, acquired)`` pairs of the shipped tree, memoized.

    The runtime lock witness treats these as the *allowed* acquisition
    order; the analysis runs once per process (an AST walk over the
    package, a few tens of milliseconds) and is shared by every
    MetaComm instance."""
    global _STATIC_ORDER
    if _STATIC_ORDER is None:
        graph = build_lock_order_graph(build_model(default_root()))
        _STATIC_ORDER = graph.pairs()
    return _STATIC_ORDER


def _fold_suppressions(
    model: PackageModel, raw: list[Diagnostic]
) -> AnalysisReport:
    tables = {
        module: Suppressions.scan(source)
        for module, source in model.sources.items()
    }
    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diagnostic in raw:
        anchors = [(diagnostic.mapping, diagnostic.span)]
        anchors.extend(diagnostic.related)
        hit = False
        for module, span in anchors:
            if span is None:
                continue
            table = tables.get(module)
            if table is not None and table.matches(span.line, diagnostic.code):
                hit = True
                break
        (suppressed if hit else active).append(diagnostic)
    return AnalysisReport(
        diagnostics=sorted(active, key=sort_key),
        suppressed=sorted(suppressed, key=sort_key),
    )
