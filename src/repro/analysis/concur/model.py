"""The per-class lock model: AST extraction for the LX5xx concurrency lints.

lexcheck's first four passes analyze lexpress *configurations*; this
module gives the fifth pass (:mod:`repro.analysis.concur.passes`) a model
of the *runtime* that executes them.  One scan of ``src/repro`` produces
a :class:`PackageModel`:

* every ``threading.Lock/RLock/Condition`` assigned to a ``self``
  attribute becomes a :class:`LockInfo` with a stable identity of
  ``ClassName.attr`` (``threading.Event`` attributes are tracked
  separately — they gate thread lifecycles, they do not order);
* every method body is walked with an intraprocedural **lockset**: the
  set of class locks held at each statement, derived from ``with
  self._lock:`` blocks;
* field accesses, lock acquisitions, self/typed calls, blocking
  primitives, stored-callback invocations and thread spawns are recorded
  together with the lockset in force at each site.

Two conventions of this codebase are modelled explicitly:

* **held-lock contracts** — a method whose docstring says ``Caller holds
  ``_cond``.`` (or whose name ends in ``_unlocked``/``_locked``) is
  analyzed as if that lock were held on entry; the convention predates
  the analyzer (``ShardedUpdateQueue._runnable`` et al.) and the pass
  verifies rather than guesses it;
* **attribute typing** — ``self.x = ClassName(...)`` assignments, a
  small role-name table for constructor parameters (``journal=...``),
  and the metrics-factory idiom (``registry.counter(...)`` returns a
  :class:`~repro.obs.metrics.Counter`) let call-graph propagation follow
  calls across class boundaries without real type inference.

The model is purely syntactic — no imports are executed.  Precision
limits are documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Access",
    "Acquire",
    "Blocking",
    "CallSite",
    "CallbackCall",
    "ClassModel",
    "LockInfo",
    "PackageModel",
    "ThreadSpawn",
    "build_model",
    "default_root",
]

#: threading factory name -> lock kind (identity-ordered primitives).
LOCK_FACTORIES = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

#: Methods that mutate their receiver in place (a write of the field).
MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "discard", "remove", "pop",
        "popleft", "popitem", "clear", "update", "setdefault", "extend",
        "insert",
    }
)

#: Substrings that mark an attribute as holding stored callbacks.
CALLBACK_MARKERS = ("listener", "callback", "observer", "hook")
#: Exact attribute names that are callbacks without a marker substring.
CALLBACK_NAMES = frozenset({"op_observer", "_compensate", "compensate"})

#: Constructor-parameter roles: ``self.x = journal`` types ``x`` when no
#: constructor call is visible (the health-plane wiring idiom).
ROLE_TYPES = {
    "journal": "EventJournal",
    "health": "HealthBoard",
    "board": "HealthBoard",
    "registry": "MetricsRegistry",
    "tracer": "Tracer",
    "backend": "Backend",
    "pipeline": "UpdateSequencePipeline",
    "error_log": "ErrorLog",
    "alerts": "AlertEngine",
    "auditor": "ConsistencyAuditor",
}

#: Factory-method idiom: ``self.x = registry.counter(...)`` types ``x``.
FACTORY_RETURNS = {
    "counter": "Counter",
    "gauge": "Gauge",
    "histogram": "Histogram",
}

#: Docstring phrases announcing a held-lock contract.
_CONTRACT_RE = re.compile(r"caller holds|already-held-lock", re.IGNORECASE)
_CONTRACT_LOCK_RE = re.compile(r"``(\w+)``")


@dataclass(frozen=True)
class LockInfo:
    """One lock-typed attribute of one class."""

    cls: str
    attr: str
    kind: str  # "lock" | "rlock" | "condition"
    line: int

    @property
    def key(self) -> str:
        return f"{self.cls}.{self.attr}"

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"


@dataclass(frozen=True)
class Access:
    """One read or write of a ``self`` attribute."""

    attr: str
    write: bool
    line: int
    column: int
    method: str
    held: frozenset[str]
    in_init: bool


@dataclass(frozen=True)
class Acquire:
    """One ``with self.<lock>:`` entry (the lock-order graph's raw edges)."""

    lock: str  # LockInfo.key
    line: int
    column: int
    method: str
    held: frozenset[str]  # locks already held when this one is taken


@dataclass(frozen=True)
class CallSite:
    """One resolvable call: ``self.m(...)`` or ``self.typed_attr.m(...)``."""

    targets: tuple[tuple[str, str], ...]  # (class, method) candidates
    line: int
    column: int
    method: str
    held: frozenset[str]
    label: str  # rendered receiver, for messages


@dataclass(frozen=True)
class Blocking:
    """One potentially blocking primitive call."""

    kind: str  # "sleep" | "wait" | "join" | "result" | "shutdown" | "io"
    desc: str
    bounded: bool
    #: Lock key when the receiver is a class Condition (its own release
    #: during ``wait`` is modelled by the pass), else None.
    subject: str | None
    line: int
    column: int
    method: str
    held: frozenset[str]


@dataclass(frozen=True)
class CallbackCall:
    """One invocation of a stored callback (listener/observer/hook)."""

    desc: str
    line: int
    column: int
    method: str
    held: frozenset[str]


@dataclass(frozen=True)
class ThreadSpawn:
    """One ``threading.Thread(...)`` construction."""

    line: int
    column: int
    method: str
    daemon: bool
    name: str | None


@dataclass
class ClassModel:
    """Everything the passes need to know about one class."""

    name: str
    module: str  # repo-relative path, e.g. "repro/core/queue.py"
    line: int
    bases: tuple[str, ...] = ()
    locks: dict[str, LockInfo] = field(default_factory=dict)
    events: set[str] = field(default_factory=set)
    methods: set[str] = field(default_factory=set)
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    accesses: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[Blocking] = field(default_factory=list)
    callbacks: list[CallbackCall] = field(default_factory=list)
    threads: list[ThreadSpawn] = field(default_factory=list)
    #: Any ``.join(`` call anywhere in the class (a thread reaping path).
    has_join: bool = False
    #: Any ``self.<event>.set()`` call (a stop-signal path).
    has_stop_signal: bool = False

    def lock_keys(self) -> set[str]:
        return {info.key for info in self.locks.values()}


@dataclass
class PackageModel:
    """The whole-package model: every class, plus module source texts."""

    root: Path
    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: module path -> source text (for suppression scanning).
    sources: dict[str, str] = field(default_factory=dict)

    def lock_of(self, key: str) -> LockInfo | None:
        cls, _, attr = key.partition(".")
        model = self.classes.get(cls)
        return model.locks.get(attr) if model else None

    def module_of_lock(self, key: str) -> str:
        model = self.classes.get(key.partition(".")[0])
        return model.module if model else ""

    def resolve_method(self, cls_name: str, method: str) -> tuple[str, str] | None:
        """Find the class actually defining *method*, walking base classes.

        ``Counter.labels`` resolves to ``("Metric", "labels")`` — which is
        where the lock it acquires lives too."""
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return (name, method)
            queue.extend(cls.bases)
        return None


def default_root() -> Path:
    """The shipped package root (``src/repro``), resolved from this file."""
    return Path(__file__).resolve().parents[2]


def build_model(root: str | Path | None = None) -> PackageModel:
    """Parse every ``.py`` under *root* and build the package lock model."""
    root = Path(root) if root is not None else default_root()
    model = PackageModel(root=root)
    class_defs: list[tuple[str, ast.ClassDef]] = []
    for path in sorted(root.rglob("*.py")):
        rel = f"{root.name}/{path.relative_to(root).as_posix()}"
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError):
            continue
        model.sources[rel] = source
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                class_defs.append((rel, node))
    # Phase 1: class names, methods, lock/event fields, attribute types —
    # collected before any body walk so typed calls can resolve forward
    # references between modules.
    for rel, node in class_defs:
        cls = _scan_class(rel, node)
        # Same-name classes in different modules would alias; first wins
        # and the collision is rare enough to tolerate (none shipped).
        model.classes.setdefault(cls.name, cls)
    # Phase 1.5: merge inherited lock/event fields and attribute types so
    # subclass method walks see base-class locks (keys keep the defining
    # class: a Counter's lock is still "Metric._lock").
    for cls in model.classes.values():
        _merge_inherited(model, cls)
    # Phase 2: method-body walks with locksets.
    for rel, node in class_defs:
        cls = model.classes[node.name]
        if cls.module != rel:
            continue
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _MethodWalker(cls, item).run()
    return model


# -- phase 1: class surface ---------------------------------------------------------


def _merge_inherited(model: PackageModel, cls: ClassModel) -> None:
    seen = {cls.name}
    queue = list(cls.bases)
    while queue:
        name = queue.pop(0)
        if name in seen:
            continue
        seen.add(name)
        base = model.classes.get(name)
        if base is None:
            continue
        for attr, info in base.locks.items():
            cls.locks.setdefault(attr, info)
        cls.events.update(base.events)
        for attr, types in base.attr_types.items():
            cls.attr_types.setdefault(attr, set()).update(types)
        queue.extend(base.bases)


def _scan_class(module: str, node: ast.ClassDef) -> ClassModel:
    bases = tuple(
        name
        for name in (_callable_name(b) for b in node.bases)
        if name is not None
    )
    cls = ClassModel(name=node.name, module=module, line=node.lineno, bases=bases)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.add(item.name)
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        else:
            continue
        attr = _self_attr(target)
        if attr is None:
            continue
        value = stmt.value
        _type_attr(cls, attr, value, stmt.lineno)
    return cls


def _type_attr(cls: ClassModel, attr: str, value: ast.expr, line: int) -> None:
    if isinstance(value, ast.Call):
        name = _callable_name(value.func)
        if name in LOCK_FACTORIES:
            cls.locks[attr] = LockInfo(
                cls.name, attr, LOCK_FACTORIES[name], line
            )
            return
        if name == "Event":
            cls.events.add(attr)
            return
        if name is not None and name[:1].isupper():
            cls.attr_types.setdefault(attr, set()).add(name)
            return
        if name in FACTORY_RETURNS:
            cls.attr_types.setdefault(attr, set()).add(FACTORY_RETURNS[name])
            return
    elif isinstance(value, ast.Name) and value.id in ROLE_TYPES:
        cls.attr_types.setdefault(attr, set()).add(ROLE_TYPES[value.id])
    elif attr in ROLE_TYPES and isinstance(value, (ast.Name, ast.Attribute)):
        cls.attr_types.setdefault(attr, set()).add(ROLE_TYPES[attr])


def _callable_name(func: ast.expr) -> str | None:
    """The trailing name of a call target (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_callback_attr(attr: str) -> bool:
    lowered = attr.lower()
    return attr in CALLBACK_NAMES or any(
        marker in lowered for marker in CALLBACK_MARKERS
    )


def _has_timeout(call: ast.Call) -> bool:
    """Does this wait/join/result-style call carry a timeout bound?"""
    if call.args:
        first = call.args[0]
        if not (isinstance(first, ast.Constant) and first.value is None):
            return True
    for kw in call.keywords:
        if kw.arg == "timeout" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    return False


def _shutdown_waits(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "wait":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    if call.args:
        first = call.args[0]
        return not (isinstance(first, ast.Constant) and first.value is False)
    return True  # Executor.shutdown defaults to wait=True


# -- phase 2: method walks ----------------------------------------------------------


class _MethodWalker:
    """Walks one method body, threading the intraprocedural lockset."""

    def __init__(self, cls: ClassModel, node: ast.FunctionDef):
        self.cls = cls
        self.node = node
        self.method = node.name
        self.in_init = node.name == "__init__"
        #: local name -> self attribute it snapshots (single assignment).
        self.var_sources: dict[str, str] = {}
        #: loop variables currently bound to a callback-holding iterable.
        self.callback_vars: set[str] = set()

    def run(self) -> None:
        held: tuple[str, ...] = self._contract_locks()
        self._walk_body(self.node.body, held)

    def _contract_locks(self) -> tuple[str, ...]:
        """Locks a held-lock contract declares held on entry."""
        doc = ast.get_docstring(self.node) or ""
        named: list[str] = []
        if _CONTRACT_RE.search(doc):
            for attr in _CONTRACT_LOCK_RE.findall(doc):
                if attr in self.cls.locks:
                    named.append(self.cls.locks[attr].key)
        elif not (
            self.method.endswith("_unlocked") or self.method.endswith("_locked")
        ):
            return ()
        if not named and len(self.cls.locks) == 1:
            named = [next(iter(self.cls.locks.values())).key]
        return tuple(named)

    # -- statements ---------------------------------------------------------

    def _walk_body(self, body: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                lock = self._lock_of_expr(item.context_expr)
                if lock is not None and lock.key not in inner:
                    self.cls.acquires.append(
                        Acquire(
                            lock.key,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            self.method,
                            frozenset(inner),
                        )
                    )
                    inner.append(lock.key)
                else:
                    self._walk_expr(item.context_expr, tuple(inner))
            self._walk_body(stmt.body, tuple(inner))
        elif isinstance(stmt, ast.Assign):
            self._walk_expr(stmt.value, held)
            self._note_snapshot(stmt)
            for target in stmt.targets:
                self._write_target(target, held)
        elif isinstance(stmt, ast.AugAssign):
            self._walk_expr(stmt.value, held)
            self._write_target(stmt.target, held, also_read=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._walk_expr(stmt.value, held)
                self._write_target(stmt.target, held)
        elif isinstance(stmt, ast.For):
            self._walk_expr(stmt.iter, held)
            self._note_loop_callback(stmt)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._walk_expr(stmt.test, held)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_body(handler.body, held)
            self._walk_body(stmt.orelse, held)
            self._walk_body(stmt.finalbody, held)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            self._walk_expr(stmt.value, held)
        elif isinstance(stmt, ast.Raise):
            self._walk_expr(stmt.exc, held)
            self._walk_expr(stmt.cause, held)
        elif isinstance(stmt, ast.Assert):
            self._walk_expr(stmt.test, held)
            self._walk_expr(stmt.msg, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later, outside the current lockset —
            # and never counts as __init__ publication.
            saved = self.in_init
            self.in_init = False
            self._walk_body(stmt.body, ())
            self.in_init = saved
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._write_target(target, held)
                else:
                    self._walk_expr(target, held)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, held)

    def _note_snapshot(self, stmt: ast.Assign) -> None:
        """Track ``local = self.attr`` so loop-callback detection can see
        through the snapshot idiom (``for cb in snapshot: cb(...)``)."""
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        attr = _self_attr(stmt.value)
        if attr is not None:
            self.var_sources[stmt.targets[0].id] = attr

    def _note_loop_callback(self, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        iter_attr = _self_attr(stmt.iter)
        if iter_attr is None and isinstance(stmt.iter, ast.Name):
            iter_attr = self.var_sources.get(stmt.iter.id)
        if iter_attr is not None and _is_callback_attr(iter_attr):
            self.callback_vars.add(stmt.target.id)

    # -- expressions --------------------------------------------------------

    def _walk_expr(self, node: ast.expr | None, held: tuple[str, ...]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
            for arg in node.args:
                self._walk_expr(arg, held)
            for kw in node.keywords:
                self._walk_expr(kw.value, held)
            if isinstance(node.func, ast.Attribute):
                self._walk_expr(node.func.value, held)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._record_access(node, attr, False, held)
            else:
                self._walk_expr(node.value, held)
            return
        if isinstance(node, ast.Lambda):
            self._walk_expr(node.body, ())
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._walk_expr(child, held)
            elif isinstance(child, ast.comprehension):
                self._walk_expr(child.iter, held)
                for test in child.ifs:
                    self._walk_expr(test, held)

    def _record_access(
        self,
        node: ast.expr,
        attr: str,
        write: bool,
        held: tuple[str, ...],
    ) -> None:
        if attr in self.cls.locks or attr in self.cls.events:
            return
        if not write and attr in self.cls.methods:
            # Reading a property/bound method is a call edge, not a field
            # read — record it so lock contracts propagate through it.
            self.cls.calls.append(
                CallSite(
                    ((self.cls.name, attr),),
                    node.lineno,
                    node.col_offset,
                    self.method,
                    frozenset(held),
                    f"self.{attr}",
                )
            )
            return
        self.cls.accesses.append(
            Access(
                attr,
                write,
                node.lineno,
                node.col_offset,
                self.method,
                frozenset(held),
                self.in_init,
            )
        )

    def _write_target(
        self,
        target: ast.expr,
        held: tuple[str, ...],
        also_read: bool = False,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, held, also_read)
            return
        if isinstance(target, ast.Subscript):
            self._walk_expr(target.slice, held)
            attr = _self_attr(target.value)
            if attr is not None:
                self._record_access(target, attr, True, held)
            else:
                self._walk_expr(target.value, held)
            return
        attr = _self_attr(target)
        if attr is not None:
            if also_read:
                self._record_access(target, attr, False, held)
            self._record_access(target, attr, True, held)
        elif isinstance(target, ast.Attribute):
            self._walk_expr(target.value, held)

    def _lock_of_expr(self, node: ast.expr) -> LockInfo | None:
        attr = _self_attr(node)
        if attr is not None:
            return self.cls.locks.get(attr)
        return None

    # -- calls --------------------------------------------------------------

    def _handle_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.callback_vars:
                self.cls.callbacks.append(
                    CallbackCall(
                        f"stored callback {func.id!r}",
                        node.lineno,
                        node.col_offset,
                        self.method,
                        frozenset(held),
                    )
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        mname = func.attr
        receiver = func.value

        # Thread construction: threading.Thread(...)
        if mname == "Thread":
            self._note_thread(node)
            return

        rcv_attr = _self_attr(receiver)

        # self.m(...): a self-call (possibly inherited — the passes resolve
        # through base classes) or a stored-callback field invocation.
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if mname not in self.cls.methods and _is_callback_attr(mname):
                self.cls.callbacks.append(
                    CallbackCall(
                        f"stored callback self.{mname}",
                        node.lineno,
                        node.col_offset,
                        self.method,
                        frozenset(held),
                    )
                )
            else:
                self.cls.calls.append(
                    CallSite(
                        ((self.cls.name, mname),),
                        node.lineno,
                        node.col_offset,
                        self.method,
                        frozenset(held),
                        f"self.{mname}",
                    )
                )
            return

        # time.sleep(...) — the canonical blocking primitive.
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "time"
            and mname == "sleep"
        ):
            self._note_blocking(node, "sleep", "time.sleep", False, None, held)
            return

        # Lock/condition method calls on class lock fields.
        if rcv_attr is not None and rcv_attr in self.cls.locks:
            info = self.cls.locks[rcv_attr]
            if mname == "acquire":
                self.cls.acquires.append(
                    Acquire(
                        info.key,
                        node.lineno,
                        node.col_offset,
                        self.method,
                        frozenset(held),
                    )
                )
            elif mname in ("wait", "wait_for"):
                self._note_blocking(
                    node,
                    "wait",
                    f"{info.key}.{mname}",
                    _has_timeout(node),
                    info.key,
                    held,
                )
            return

        # Event.wait on a class event field (stop-flag waits).
        if rcv_attr is not None and rcv_attr in self.cls.events:
            if mname == "wait":
                self._note_blocking(
                    node,
                    "wait",
                    f"self.{rcv_attr}.wait",
                    _has_timeout(node),
                    None,
                    held,
                )
            elif mname == "set":
                self.cls.has_stop_signal = True
            return

        # Generic blocking primitives by method name.
        if mname == "join":
            # One positional argument and no keywords is str.join, not a
            # thread join — the only shape Thread.join never takes.
            if not (len(node.args) == 1 and not node.keywords):
                self.cls.has_join = True
                self._note_blocking(
                    node, "join", "join", _has_timeout(node), None, held
                )
            return
        if mname == "wait":
            self._note_blocking(
                node, "wait", "wait", _has_timeout(node), None, held
            )
            return
        if mname == "result":
            self._note_blocking(
                node, "result", "Future.result", _has_timeout(node), None, held
            )
            return
        if mname == "shutdown":
            self._note_blocking(
                node,
                "shutdown",
                "Executor.shutdown",
                not _shutdown_waits(node),
                None,
                held,
            )
            return
        if mname in ("accept", "recv", "recv_into", "sendall", "connect"):
            self._note_blocking(
                node, "io", f"socket.{mname}", False, None, held
            )
            return

        # Typed external calls (self.journal.emit(...), metrics, ...).
        if rcv_attr is not None:
            if mname in MUTATORS and rcv_attr not in self.cls.locks:
                self._record_access(node, rcv_attr, True, held)
            types = self.cls.attr_types.get(rcv_attr)
            if types:
                self.cls.calls.append(
                    CallSite(
                        tuple((t, mname) for t in sorted(types)),
                        node.lineno,
                        node.col_offset,
                        self.method,
                        frozenset(held),
                        f"self.{rcv_attr}.{mname}",
                    )
                )

    def _note_blocking(
        self,
        node: ast.Call,
        kind: str,
        desc: str,
        bounded: bool,
        subject: str | None,
        held: tuple[str, ...],
    ) -> None:
        self.cls.blocking.append(
            Blocking(
                kind,
                desc,
                bounded,
                subject,
                node.lineno,
                node.col_offset,
                self.method,
                frozenset(held),
            )
        )

    def _note_thread(self, node: ast.Call) -> None:
        daemon = False
        name = None
        for kw in node.keywords:
            if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                daemon = bool(kw.value.value)
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = str(kw.value.value)
        self.cls.threads.append(
            ThreadSpawn(
                node.lineno, node.col_offset, self.method, daemon, name
            )
        )
