"""The LX5xx concurrency lints over the package lock model.

Five checks, all driven by :class:`~repro.analysis.concur.model.PackageModel`:

* **LX501 — lock-order inversion.**  Every ``with self.A:`` taken while
  ``B`` is held contributes an edge ``B → A`` to a global acquisition-order
  graph; call-graph propagation adds edges for locks a callee transitively
  acquires.  A cycle means two threads can deadlock by taking the same
  locks in opposite orders.
* **LX502 — blocking call under lock.**  ``time.sleep``, unbounded
  ``wait``/``join``/``result``/``Executor.shutdown(wait=True)``, socket
  I/O, a bounded ``Condition.wait`` that holds a *second* lock through the
  sleep, or a call into a method that transitively does any of these —
  while at least one lock is held.  Journal/listener callback delivery
  under a ``repro.obs``/``repro.core`` lock is reported here too (the
  listener is arbitrary user code; under a hot-path lock it is I/O).
* **LX503 — inconsistently guarded field.**  RacerD-style majority
  inference: a field written under one lock on ≥ 75 % of its post-init
  writes, yet accessed without that lock elsewhere, is reported once with
  every bare site anchored (any anchor suppresses).
* **LX504 — callback invoked under a non-reentrant lock.**  A stored
  listener/observer/hook called while a plain ``Lock``/``Condition`` of
  the same object is held: a callback that calls back in (``subscribe``,
  ``record``) self-deadlocks.  ``RLock`` holders are exempt.
* **LX505 — thread without a stop/join path.**  A class that constructs
  ``threading.Thread`` but never joins a thread nor sets a stop
  ``Event`` leaks its worker past ``close()``.

The fixpoints (transitive lock acquisition, may-block, may-invoke-
callbacks) iterate to a fixed point over the resolvable call graph:
``self.m(...)`` calls plus attribute-typed calls (see the model module).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field

from ...lexpress.ast import Span
from ..diagnostics import Diagnostic
from .model import Blocking, CallSite, ClassModel, PackageModel

__all__ = ["LockOrderGraph", "run_passes", "build_lock_order_graph"]

#: Module prefixes whose locks guard hot paths: callback delivery while
#: one of these is held is an LX502 (the issue's "journal/listener
#: callbacks inside repro.obs or repro.core.queue locks").
HOT_LOCK_PREFIXES = ("repro/obs/", "repro/core/")


@dataclass(frozen=True)
class OrderEdge:
    """One observed before/after pair in the acquisition-order graph."""

    held: str
    acquired: str
    module: str
    line: int
    method: str
    #: "acquire" for a literal ``with`` nesting, "call" for an edge added
    #: by call-graph propagation.
    origin: str


@dataclass
class LockOrderGraph:
    """The global acquisition-order graph (also the lock-witness seed)."""

    nodes: list[str] = field(default_factory=list)
    edges: list[OrderEdge] = field(default_factory=list)

    def pairs(self) -> list[tuple[str, str]]:
        return sorted({(e.held, e.acquired) for e in self.edges})

    def successors(self) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {}
        for edge in self.edges:
            out.setdefault(edge.held, set()).add(edge.acquired)
        return out

    def to_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "edges": [
                {
                    "held": e.held,
                    "acquired": e.acquired,
                    "site": f"{e.module}:{e.line}",
                    "method": e.method,
                    "origin": e.origin,
                }
                for e in sorted(
                    self.edges,
                    key=lambda e: (e.held, e.acquired, e.module, e.line),
                )
            ],
        }


# -- call-graph fixpoints -----------------------------------------------------------


class _Summaries:
    """Per-method summaries propagated to a fixed point."""

    def __init__(self, model: PackageModel):
        self.model = model
        self.calls: dict[tuple[str, str], list[CallSite]] = {}
        self.known: set[tuple[str, str]] = set()
        #: (cls, method) -> locks the method (transitively) acquires.
        self.acquired: dict[tuple[str, str], set[str]] = {}
        #: (cls, method) -> reason string when the method may block.
        self.may_block: dict[tuple[str, str], str] = {}
        #: (cls, method) -> reason string when it may invoke callbacks.
        self.may_callback: dict[tuple[str, str], str] = {}
        for cls in model.classes.values():
            for method in cls.methods:
                key = (cls.name, method)
                self.known.add(key)
                self.calls[key] = [
                    c for c in cls.calls if c.method == method
                ]
                self.acquired[key] = {
                    a.lock for a in cls.acquires if a.method == method
                }
            for entry in cls.blocking:
                if _blocks(entry):
                    self.may_block.setdefault(
                        (cls.name, entry.method), entry.desc
                    )
            for cb in cls.callbacks:
                self.may_callback.setdefault(
                    (cls.name, cb.method), cb.desc
                )
        self._fixpoint()

    def resolve(self, target: tuple[str, str]) -> tuple[str, str] | None:
        """Map a call target to the class that defines the method."""
        if target in self.known:
            return target
        return self.model.resolve_method(*target)

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for key, sites in self.calls.items():
                for site in sites:
                    for raw in site.targets:
                        target = self.resolve(raw)
                        if target is None or target == key:
                            continue
                        extra = self.acquired[target] - self.acquired[key]
                        if extra:
                            self.acquired[key] |= extra
                            changed = True
                        if (
                            target in self.may_block
                            and key not in self.may_block
                        ):
                            self.may_block[key] = (
                                f"{site.label} -> {self.may_block[target]}"
                            )
                            changed = True
                        if (
                            target in self.may_callback
                            and key not in self.may_callback
                        ):
                            self.may_callback[key] = (
                                f"{site.label} -> {self.may_callback[target]}"
                            )
                            changed = True


def _blocks(entry: Blocking) -> bool:
    """Does this primitive block its caller indefinitely (or do I/O)?"""
    if entry.kind in ("sleep", "io"):
        return True
    return not entry.bounded


# -- the passes ---------------------------------------------------------------------


def build_lock_order_graph(model: PackageModel) -> LockOrderGraph:
    summaries = _Summaries(model)
    return _build_graph(model, summaries)


def _build_graph(
    model: PackageModel, summaries: _Summaries
) -> LockOrderGraph:
    graph = LockOrderGraph()
    nodes: set[str] = set()
    for cls in model.classes.values():
        nodes.update(cls.lock_keys())
        for acq in cls.acquires:
            for held in acq.held:
                if held != acq.lock:
                    graph.edges.append(
                        OrderEdge(
                            held,
                            acq.lock,
                            cls.module,
                            acq.line,
                            f"{cls.name}.{acq.method}",
                            "acquire",
                        )
                    )
        for site in cls.calls:
            if not site.held:
                continue
            acquired: set[str] = set()
            for raw in site.targets:
                target = summaries.resolve(raw)
                if target is not None:
                    acquired |= summaries.acquired.get(target, set())
            for lock in acquired - site.held:
                for held in site.held:
                    if held != lock:
                        graph.edges.append(
                            OrderEdge(
                                held,
                                lock,
                                cls.module,
                                site.line,
                                f"{cls.name}.{site.method}",
                                "call",
                            )
                        )
    nodes.update(e.held for e in graph.edges)
    nodes.update(e.acquired for e in graph.edges)
    graph.nodes = sorted(nodes)
    return graph


def run_passes(
    model: PackageModel,
) -> tuple[list[Diagnostic], LockOrderGraph]:
    """All five LX5xx checks; returns raw diagnostics plus the graph."""
    summaries = _Summaries(model)
    graph = _build_graph(model, summaries)
    diagnostics: list[Diagnostic] = []
    diagnostics += _check_lock_order(graph)
    for cls in model.classes.values():
        diagnostics += _check_blocking(cls, summaries)
        diagnostics += _check_guarded_fields(cls)
        diagnostics += _check_callbacks(cls, model, summaries)
        diagnostics += _check_threads(cls)
    return diagnostics, graph


# -- LX501 --------------------------------------------------------------------------


def _check_lock_order(graph: LockOrderGraph) -> list[Diagnostic]:
    successors = graph.successors()
    by_pair: dict[tuple[str, str], OrderEdge] = {}
    for edge in graph.edges:
        by_pair.setdefault((edge.held, edge.acquired), edge)
    out: list[Diagnostic] = []
    for cycle in _cycles(successors):
        edges = [
            by_pair[(cycle[i], cycle[(i + 1) % len(cycle)])]
            for i in range(len(cycle))
        ]
        first = edges[0]
        out.append(
            Diagnostic(
                code="LX501",
                message=(
                    "lock-order inversion: "
                    + " -> ".join([*cycle, cycle[0]])
                    + " — two threads taking these locks in opposite "
                    "orders can deadlock"
                ),
                mapping=first.module,
                span=Span(first.line, 1),
                hint=(
                    "pick one global order for these locks and acquire "
                    "them in that order on every path"
                ),
                related=tuple(
                    (e.module, Span(e.line, 1)) for e in edges[1:]
                ),
            )
        )
    return out


def _cycles(successors: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles, one representative per strongly-connected
    component (enough for reporting; the fix collapses the whole SCC)."""
    sccs = _tarjan(successors)
    out: list[list[str]] = []
    for scc in sccs:
        members = set(scc)
        if len(scc) == 1:
            node = scc[0]
            if node in successors.get(node, set()):
                out.append([node])
            continue
        # Walk within the SCC until a node repeats: a concrete cycle.
        start = min(members)
        path = [start]
        seen = {start}
        node = start
        while True:
            node = min(n for n in successors.get(node, set()) if n in members)
            if node in seen:
                out.append(path[path.index(node):])
                break
            path.append(node)
            seen.add(node)
    return out


def _tarjan(successors: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []
    nodes = set(successors)
    for targets in successors.values():
        nodes.update(targets)

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: (node, iterator) frames.
        work = [(v, iter(sorted(successors.get(v, set()))))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(successors.get(w, set())))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)
    return sccs


# -- LX502 --------------------------------------------------------------------------


def _check_blocking(
    cls: ClassModel, summaries: _Summaries
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for entry in cls.blocking:
        if not entry.held:
            continue
        foreign = entry.held - ({entry.subject} if entry.subject else set())
        if _blocks(entry):
            # A wait on one's own condition releases that condition — but
            # every *other* held lock stays held through the sleep.
            if entry.subject is not None and not foreign:
                if entry.bounded:
                    continue
                held_text = entry.subject
            else:
                held_text = ", ".join(sorted(foreign or entry.held))
            out.append(
                _blocking_diag(cls, entry.line, entry.desc, held_text)
            )
        elif entry.kind == "wait" and entry.subject is not None and foreign:
            out.append(
                _blocking_diag(
                    cls,
                    entry.line,
                    f"{entry.desc} (bounded, but {', '.join(sorted(foreign))}"
                    " stays held through the sleep)",
                    ", ".join(sorted(foreign)),
                )
            )
    for site in cls.calls:
        if not site.held:
            continue
        for raw in site.targets:
            target = summaries.resolve(raw)
            reason = summaries.may_block.get(target) if target else None
            if reason is not None:
                out.append(
                    _blocking_diag(
                        cls,
                        site.line,
                        f"{site.label} (may block: {reason})",
                        ", ".join(sorted(site.held)),
                    )
                )
                break
    return out


def _blocking_diag(
    cls: ClassModel, line: int, what: str, held: str
) -> Diagnostic:
    return Diagnostic(
        code="LX502",
        message=(
            f"{cls.name} blocks on {what} while holding {held} — every "
            "thread contending for that lock stalls behind the sleep"
        ),
        mapping=cls.module,
        span=Span(line, 1),
        hint=(
            "move the blocking call outside the critical section, or "
            "bound it with a timeout and re-check state after waking"
        ),
    )


# -- LX503 --------------------------------------------------------------------------


def _check_guarded_fields(cls: ClassModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    by_attr: dict[str, list] = {}
    for access in cls.accesses:
        if not access.in_init:
            by_attr.setdefault(access.attr, []).append(access)
    for attr, accesses in sorted(by_attr.items()):
        writes = [a for a in accesses if a.write]
        locked_writes = [a for a in writes if a.held]
        if not locked_writes:
            continue
        if len(locked_writes) / len(writes) < 0.75:
            continue
        counts = _Counter(
            lock for a in locked_writes for lock in a.held
        )
        majority = max(
            counts,
            key=lambda lock: (counts[lock], lock.startswith(cls.name + ".")),
        )
        bare = sorted(
            (a for a in accesses if majority not in a.held),
            key=lambda a: (a.line, a.column),
        )
        if not bare:
            continue
        first = bare[0]
        kinds = "written" if any(a.write for a in bare) else "read"
        out.append(
            Diagnostic(
                code="LX503",
                message=(
                    f"{cls.name}.{attr} is guarded by {majority} on "
                    f"{len(locked_writes)}/{len(writes)} write(s) but "
                    f"{kinds} without it at {len(bare)} site(s) "
                    f"(first: {cls.module}:{first.line} in "
                    f"{first.method})"
                ),
                mapping=cls.module,
                span=Span(first.line, first.column + 1),
                hint=(
                    f"take {majority} around every access, or document "
                    "the benign race with a justified suppression"
                ),
                related=tuple(
                    (cls.module, Span(a.line, a.column + 1))
                    for a in bare[1:5]
                ),
            )
        )
    return out


# -- LX504 --------------------------------------------------------------------------


def _check_callbacks(
    cls: ClassModel, model: PackageModel, summaries: _Summaries
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for cb in cls.callbacks:
        nonreentrant = sorted(
            key
            for key in cb.held
            if (info := model.lock_of(key)) is not None and not info.reentrant
        )
        if not nonreentrant:
            continue
        held = ", ".join(nonreentrant)
        out.append(
            Diagnostic(
                code="LX504",
                message=(
                    f"{cls.name}.{cb.method} invokes {cb.desc} while "
                    f"holding non-reentrant {held} — a callback that "
                    "calls back into this object deadlocks"
                ),
                mapping=cls.module,
                span=Span(cb.line, cb.column + 1),
                hint=(
                    "snapshot the callback list inside the lock and "
                    "invoke the callbacks after releasing it"
                ),
            )
        )
        # Callback delivery under a hot-path (obs/core) lock is also a
        # blocking-under-lock finding; report the stronger LX504 only.
    for site in cls.calls:
        if not site.held:
            continue
        hot = sorted(
            key
            for key in site.held
            if model.module_of_lock(key).startswith(HOT_LOCK_PREFIXES)
        )
        if not hot:
            continue
        for raw in site.targets:
            target = summaries.resolve(raw)
            reason = summaries.may_callback.get(target) if target else None
            if reason is not None:
                out.append(
                    Diagnostic(
                        code="LX502",
                        message=(
                            f"{cls.name}.{site.method} calls {site.label} "
                            f"(delivers callbacks: {reason}) while holding "
                            f"{', '.join(hot)} — listeners are arbitrary "
                            "user code and must not run under a hot-path "
                            "lock"
                        ),
                        mapping=cls.module,
                        span=Span(site.line, site.column + 1),
                        hint=(
                            "emit after releasing the lock (snapshot any "
                            "state the event needs first)"
                        ),
                    )
                )
                break
    return out


# -- LX505 --------------------------------------------------------------------------


def _check_threads(cls: ClassModel) -> list[Diagnostic]:
    if not cls.threads or cls.has_join or cls.has_stop_signal:
        return []
    out: list[Diagnostic] = []
    for spawn in cls.threads:
        flavor = "daemon thread" if spawn.daemon else "thread"
        label = f" {spawn.name!r}" if spawn.name else ""
        out.append(
            Diagnostic(
                code="LX505",
                message=(
                    f"{cls.name}.{spawn.method} starts {flavor}{label} "
                    "but the class has no join() call and never sets a "
                    "stop Event — the worker cannot be shut down"
                ),
                mapping=cls.module,
                span=Span(spawn.line, spawn.column + 1),
                hint=(
                    "keep the Thread, add a stop Event the loop checks, "
                    "and join() it from a close()/stop() method"
                ),
            )
        )
    return out
