"""Diagnostic records, the stable code catalogue, and inline suppressions.

Every lexcheck finding is a :class:`Diagnostic` with a stable ``LXnnn``
code, a severity, an optional source :class:`~repro.lexpress.ast.Span`,
and a fix hint.  Codes are grouped by pass:

* ``LX1xx`` — byte-code verifier (:mod:`repro.analysis.verifier`)
* ``LX2xx`` — table/match totality and injectivity (:mod:`repro.analysis.rules`)
* ``LX3xx`` — partition-constraint overlap and coverage
  (:mod:`repro.analysis.partitions`)
* ``LX4xx`` — closure-graph diagnostics (:mod:`repro.analysis.graph`)
* ``LX5xx`` — runtime concurrency lints (:mod:`repro.analysis.concur`)

A finding can be silenced at its source line (or the line directly above)
with an inline comment::

    map lastUpdater = "pbx";   # lexcheck: ignore[LX403]

``ignore`` with no bracket suppresses every code on that line.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from ..lexpress.ast import Span


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The catalogue: code -> (severity, one-line title).  Stable across
#: releases; new codes are appended, never renumbered (docs/ANALYSIS.md).
CATALOG: dict[str, tuple[Severity, str]] = {
    # -- byte-code verifier -------------------------------------------------
    "LX101": (Severity.ERROR, "stack underflow"),
    "LX102": (Severity.ERROR, "unbalanced stack"),
    "LX103": (Severity.ERROR, "execution can fall off the end"),
    "LX104": (Severity.ERROR, "jump target out of range"),
    "LX105": (Severity.WARNING, "unreachable byte code"),
    "LX106": (Severity.ERROR, "bad operand"),
    "LX107": (Severity.WARNING, "scalar value in a multi-value position"),
    "LX108": (Severity.INFO, "list value in a scalar position"),
    # -- table / match totality and injectivity -----------------------------
    "LX201": (Severity.WARNING, "partial table translation"),
    "LX202": (Severity.WARNING, "non-injective table translation"),
    "LX203": (Severity.WARNING, "duplicate table key"),
    "LX204": (Severity.INFO, "match without wildcard arm"),
    # -- partition constraints ----------------------------------------------
    "LX301": (Severity.ERROR, "overlapping partition constraints"),
    "LX302": (Severity.WARNING, "partition coverage gap"),
    "LX303": (Severity.ERROR, "partition depends on unmapped attributes"),
    # -- closure graph -------------------------------------------------------
    "LX401": (Severity.ERROR, "non-convergent dependency cycle"),
    "LX402": (Severity.INFO, "stable dependency cycle"),
    "LX403": (Severity.WARNING, "non-commuting write-write conflict"),
    "LX404": (Severity.WARNING, "dead rule"),
    "LX405": (Severity.WARNING, "unreachable alternate"),
    # -- runtime concurrency -------------------------------------------------
    "LX501": (Severity.ERROR, "lock-order inversion"),
    "LX502": (Severity.WARNING, "blocking call under lock"),
    "LX503": (Severity.WARNING, "inconsistently guarded field"),
    "LX504": (Severity.WARNING, "callback invoked under non-reentrant lock"),
    "LX505": (Severity.WARNING, "thread without a stop/join path"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    message: str
    #: Name of the mapping the finding anchors to ("" for config-level).
    mapping: str = ""
    #: Target attribute of the rule involved, when there is one.
    rule: str | None = None
    span: Span | None = None
    hint: str | None = None
    #: Additional (mapping, span) anchors — e.g. the second rule of a
    #: write-write pair.  A suppression at any anchor silences the finding.
    related: tuple[tuple[str, Span | None], ...] = field(default=(), compare=False)

    @property
    def severity(self) -> Severity:
        return CATALOG[self.code][0]

    @property
    def title(self) -> str:
        return CATALOG[self.code][1]

    def location(self) -> str:
        where = self.mapping or "<config>"
        if self.span is not None:
            where += f":{self.span.line}:{self.span.column}"
        return where

    def __str__(self) -> str:
        text = f"{self.location()}: {self.code} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_key(diagnostic: Diagnostic):
    line = diagnostic.span.line if diagnostic.span else 0
    return (diagnostic.severity.rank, diagnostic.mapping, line, diagnostic.code)


# -- inline suppressions ---------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*lexcheck:\s*ignore(?:\[([A-Z0-9,\s]*)\])?")


class Suppressions:
    """Per-source-text index of ``# lexcheck: ignore[...]`` comments."""

    def __init__(self, by_line: dict[int, frozenset[str] | None]):
        #: line (1-based) -> codes suppressed there; None = all codes.
        self.by_line = by_line
        #: codes whose suppressions were actually used (for reporting).
        self.used: set[tuple[int, str]] = set()

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        by_line: dict[int, frozenset[str] | None] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None or not codes.strip():
                by_line[lineno] = None
            else:
                by_line[lineno] = frozenset(
                    c.strip() for c in codes.split(",") if c.strip()
                )
        return cls(by_line)

    def matches(self, line: int, code: str) -> bool:
        """Is *code* suppressed at *line* (same line or the line above)?"""
        for candidate in (line, line - 1):
            codes = self.by_line.get(candidate, frozenset())
            if codes is None or code in codes:
                self.used.add((candidate, code))
                return True
        return False
