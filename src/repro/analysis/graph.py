"""Pass 4 — closure-graph diagnostics (LX401–LX404).

The transitive-closure engine (section 4.2) already probes dependency
cycles for fixpoint stability at compile time; this pass surfaces those
reports as diagnostics (LX401 error / LX402 info) and adds two
whole-configuration checks no single mapping can see:

* **Write-write conflicts** (LX403) — two mappings writing the same
  target attribute.  The closure's first-win rule makes the outcome
  depend on propagation order, which is harmless when the two
  transformations commute (they compute the same value for the same
  logical record) and silently order-dependent when they do not.
  Commutativity is checked by probing: seed a propagation from one
  rule's source schema, then evaluate the *other* rule on the propagated
  image of its own source and compare against the attribute value the
  closure settled on.  Constant rules (no dependencies — the
  ``lastUpdater`` Originator pattern of section 5.4) are compared
  directly.
* **Dead rules** (LX404) — a rule whose dependencies are produced by
  nothing in the configuration: no reverse-direction rule targets them
  and the repository schema does not declare them.  The rule can only
  ever yield null, so its target attribute is never set.
"""

from __future__ import annotations

from itertools import combinations

from ..lexpress.closure import ClosureEngine, _PROBE_VALUES, analyze_cycles
from ..lexpress.interpreter import execute
from ..lexpress.mapping import CompiledMapping, CompiledRule, _as_values
from .diagnostics import Diagnostic


def check_graph(
    mappings: list[CompiledMapping],
    schema_attributes: dict[str, frozenset[str]] | None = None,
) -> list[Diagnostic]:
    """Run all closure-graph checks over one set of mappings."""
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_cycles(mappings))
    diagnostics.extend(_check_write_write(mappings))
    diagnostics.extend(_check_dead_rules(mappings, schema_attributes or {}))
    return diagnostics


# -- cycles (LX401/LX402) ---------------------------------------------------------


def _check_cycles(mappings: list[CompiledMapping]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for report in analyze_cycles(mappings):
        path = " -> ".join(f"{s}.{a}" for s, a in report.nodes)
        if report.stable:
            if len(report.nodes) <= 2:
                # Every forward/backward pair of a schema pair round-trips
                # through a stable 2-cycle by design; reporting each one
                # would bury real findings.
                continue
            out.append(
                Diagnostic(
                    code="LX402",
                    message=f"dependency cycle {path} converges "
                    f"(probe trace: {' -> '.join(map(repr, report.trace))})",
                )
            )
        else:
            out.append(
                Diagnostic(
                    code="LX401",
                    message=f"dependency cycle {path} never reaches a "
                    f"fixpoint (probe trace: "
                    f"{' -> '.join(map(repr, report.trace))})",
                    hint="make the composed transformation idempotent, or "
                    "break the cycle",
                )
            )
    return out


# -- write-write conflicts (LX403) -----------------------------------------------


def _check_write_write(mappings: list[CompiledMapping]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    writers: dict[tuple[str, str], list[tuple[CompiledMapping, CompiledRule]]] = {}
    for mapping in mappings:
        for rule in mapping.rules:
            key = (mapping.target.lower(), rule.target.lower())
            writers.setdefault(key, []).append((mapping, rule))
    engine = ClosureEngine(mappings)
    for (schema, attr), pairs in sorted(writers.items()):
        for (map_a, rule_a), (map_b, rule_b) in combinations(pairs, 2):
            if map_a.name == map_b.name:
                continue  # same mapping: later rule simply loses, not order-dependent
            witness = _non_commuting_witness(engine, map_a, rule_a, map_b, rule_b)
            if witness is None:
                continue
            probe, value_a, value_b = witness
            out.append(
                Diagnostic(
                    code="LX403",
                    message=f"mappings {map_a.name!r} and {map_b.name!r} both "
                    f"write {schema}.{attr} and do not commute: for probe "
                    f"{probe!r} one writes {value_a!r}, the other "
                    f"{value_b!r}; the closure's first-win rule makes the "
                    "outcome order-dependent",
                    mapping=map_a.name,
                    rule=rule_a.target,
                    span=rule_a.span,
                    related=((map_b.name, rule_b.span),),
                    hint="make both rules compute the same value, or drop "
                    "one direction",
                )
            )
    return out


def _non_commuting_witness(
    engine: ClosureEngine,
    map_a: CompiledMapping,
    rule_a: CompiledRule,
    map_b: CompiledMapping,
    rule_b: CompiledRule,
):
    """A (probe, value_a, value_b) triple proving the pair order-dependent,
    or None when every probe commutes (or is inconclusive)."""
    if not rule_a.deps and not rule_b.deps:
        # Constant rules: compare the constants directly.
        value_a = _as_values(execute(rule_a.code, {}))
        value_b = _as_values(execute(rule_b.code, {}))
        if value_a is not None and value_b is not None and value_a != value_b:
            return ("<const>", value_a, value_b)
        return None
    for first, first_rule, second, second_rule in (
        (map_a, rule_a, map_b, rule_b),
        (map_b, rule_b, map_a, rule_a),
    ):
        if not first_rule.deps:
            continue
        for probe in _PROBE_VALUES:
            seed = {dep: [probe] for dep in first_rule.deps}
            try:
                result = engine.propagate(first.source, seed)
            except Exception:
                continue  # non-draining closures are LX401's business
            if result.unstable_conflicts():
                continue  # probe produced an inconsistent state; inconclusive
            settled = _image_value(result.image(first.target), first_rule.target)
            if settled is None:
                continue
            second_image = result.image(second.source)
            if not second_image:
                continue
            competing = _as_values(execute(second_rule.code, second_image))
            if competing is not None and competing != settled:
                return (probe, settled, competing)
    return None


def _image_value(image: dict[str, list[str]], attr: str) -> list[str] | None:
    for name, values in image.items():
        if name.lower() == attr.lower():
            return values
    return None


# -- dead rules (LX404) -----------------------------------------------------------


def _check_dead_rules(
    mappings: list[CompiledMapping],
    schema_attributes: dict[str, frozenset[str]],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    producible: dict[str, set[str]] = {}
    targeted: set[str] = set()
    for schema, attrs in schema_attributes.items():
        producible.setdefault(schema.lower(), set()).update(
            a.lower() for a in attrs
        )
        targeted.add(schema.lower())
    for mapping in mappings:
        target = mapping.target.lower()
        targeted.add(target)
        producible.setdefault(target, set()).update(
            r.target.lower() for r in mapping.rules
        )
        # The device generates its own key values (it is a repository, not
        # just a projection), so the key source attribute always exists.
        if mapping.key_source is not None:
            producible.setdefault(mapping.source.lower(), set()).add(
                mapping.key_source.lower()
            )
    for mapping in mappings:
        source = mapping.source.lower()
        if source not in targeted:
            # Nothing in this configuration describes what the source
            # schema holds; assume every attribute may exist.
            continue
        known = producible.get(source, set())
        for rule in mapping.rules:
            if not rule.deps or rule.deps & known:
                continue
            missing = ", ".join(sorted(rule.deps))
            out.append(
                Diagnostic(
                    code="LX404",
                    message=f"rule {rule.target!r} reads {missing}, which "
                    f"nothing in the configuration produces on schema "
                    f"{source!r}; the rule always evaluates to null",
                    mapping=mapping.name,
                    rule=rule.target,
                    span=rule.span,
                    hint="map the attribute in the reverse direction, "
                    "declare it in the schema, or mark the rule "
                    "device-generated with a lexcheck suppression",
                )
            )
    return out
