"""Pass 3 — partition-constraint overlap and coverage (LX3xx).

Partition constraints decide which device instance owns a directory
record (section 4.2's routing matrix).  Two configuration mistakes
corrupt the deployment silently:

* **Overlap** — two instances of the same target schema both satisfied by
  one record: the same person is ADDed to two PBXes and every later
  modify fans out to both (LX301).
* **Coverage gap** — a record no instance claims: updates for it are
  routed nowhere and the directory drifts from every device (LX302).

Satisfiability of arbitrary lexpress predicates is undecidable in
general, so this pass *probes*: it derives candidate attribute values
from the string constants mentioned by the constraints themselves (a
constraint ``prefix(Extension, "41")`` suggests probing ``"41"``,
``"4100"``, …) and evaluates every instance's combined constraint against
each candidate image.  A witness value satisfying two instances is a
definite overlap; a witness satisfying none is a likely gap.  Constraints
that mention no constants (``present(TelephoneNumber)``) generate no
probes and are never falsely flagged.

LX303 is structural, not probe-based: a constraint is evaluated against
the mapping's *target image* (see ``CompiledMapping.translate``), so a
constraint depending on attributes no rule produces can never be
satisfied — every update routes to SKIP or DELETE.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..lexpress.bytecode import CodeObject, Op
from ..lexpress.mapping import CompiledMapping
from ..lexpress.partition import PartitionConstraint
from .diagnostics import Diagnostic


@dataclass(frozen=True)
class InstanceBinding:
    """A from-directory mapping bound to one concrete device instance.

    Mirrors the Update Manager's ``DeviceBinding`` reduced to what the
    analyzer needs: the compiled mapping and the per-instance partition
    narrowing it (``None`` = the instance takes the mapping's whole
    partition)."""

    name: str
    mapping: CompiledMapping
    partition: PartitionConstraint | None = None

    def satisfied_by(self, image) -> bool:
        if not self.mapping.partition.satisfied_by(image):
            return False
        return self.partition is None or self.partition.satisfied_by(image)

    @property
    def deps(self) -> frozenset[str]:
        deps = self.mapping.partition.deps
        if self.partition is not None:
            deps = deps | self.partition.deps
        return deps


def _string_consts(code: CodeObject) -> set[str]:
    """String constants used as *values* (PUSH/MATCH_LIT operands) —
    not attribute names or function names, which also live in the pool."""
    out: set[str] = set()
    for ins in code.instructions:
        if ins.op in (Op.PUSH, Op.MATCH_LIT):
            if isinstance(ins.arg, int) and 0 <= ins.arg < len(code.consts):
                const = code.consts[ins.arg]
                if isinstance(const, str) and const:
                    out.add(const)
        elif ins.op is Op.TABLE_CONST:
            if isinstance(ins.arg, int) and 0 <= ins.arg < len(code.consts):
                const = code.consts[ins.arg]
                if isinstance(const, tuple) and isinstance(const[0], dict):
                    table, default = const
                    for value in (*table.keys(), *table.values(), default):
                        if isinstance(value, str) and value:
                            out.add(value)
        elif ins.op is Op.EACH_APPLY:
            if isinstance(ins.arg, int) and 0 <= ins.arg < len(code.consts):
                const = code.consts[ins.arg]
                if isinstance(const, CodeObject):
                    out.update(_string_consts(const))
    return out


def _probe_values(instances: list[InstanceBinding]) -> list[str]:
    consts: set[str] = set()
    for instance in instances:
        consts.update(_string_consts(instance.mapping.partition.code))
        if instance.partition is not None:
            consts.update(_string_consts(instance.partition.code))
    values: list[str] = []
    for const in sorted(consts):
        # The constant itself plus padded extensions of it: a prefix
        # constraint is satisfied by all three, a longer competing prefix
        # only by some — which is exactly what exposes overlaps and gaps.
        for candidate in (const, const + "00", const + "000"):
            if candidate not in values:
                values.append(candidate)
    return values


def check_partitions(instances: list[InstanceBinding]) -> list[Diagnostic]:
    """Run overlap/coverage/dependency checks over all instance bindings."""
    diagnostics: list[Diagnostic] = []
    groups: dict[str, list[InstanceBinding]] = {}
    for instance in instances:
        groups.setdefault(instance.mapping.target.lower(), []).append(instance)
        diagnostics.extend(_check_deps(instance))
    for schema, group in sorted(groups.items()):
        diagnostics.extend(_check_group(schema, group))
    return diagnostics


def _check_deps(instance: InstanceBinding) -> list[Diagnostic]:
    mapping = instance.mapping
    producible = {r.target.lower() for r in mapping.rules}
    missing = sorted(instance.deps - producible)
    if not missing:
        return []
    return [
        Diagnostic(
            code="LX303",
            message=f"partition of instance {instance.name!r} depends on "
            f"{', '.join(missing)}, which no rule of mapping "
            f"{mapping.name!r} produces; the constraint can never hold",
            mapping=mapping.name,
            span=mapping.decl.partition_span or mapping.decl.span,
            hint="add a map rule for the attribute or rewrite the "
            "constraint over mapped attributes",
        )
    ]


def _check_group(schema: str, group: list[InstanceBinding]) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # Trivial overlap: several instances whose constraints read no
    # attributes at all (AlwaysTrue or constant-true) claim every record.
    if len(group) > 1:
        trivial = [
            i for i in group if not i.deps and i.satisfied_by({"any": ["x"]})
        ]
        for a, b in combinations(trivial, 2):
            diagnostics.append(_overlap(schema, a, b, witness=None))

    probes = _probe_values(group)
    overlap_pairs: set[tuple[str, str]] = set()
    gap_witnesses: list[str] = []
    all_deps = sorted({dep for i in group for dep in i.deps})
    if not all_deps:
        return diagnostics
    for value in probes:
        image = {dep: [value] for dep in all_deps}
        claimed = [i for i in group if i.satisfied_by(image)]
        if len(claimed) > 1:
            for a, b in combinations(claimed, 2):
                pair = tuple(sorted((a.name, b.name)))
                if pair not in overlap_pairs:
                    overlap_pairs.add(pair)
                    diagnostics.append(_overlap(schema, a, b, witness=value))
        elif not claimed:
            gap_witnesses.append(value)
    if gap_witnesses:
        shown = ", ".join(repr(w) for w in gap_witnesses[:3])
        diagnostics.append(
            Diagnostic(
                code="LX302",
                message=f"no {schema!r} instance claims a record with "
                f"{'/'.join(all_deps)} = {shown}; updates for such records "
                "are routed nowhere",
                mapping=group[0].mapping.name,
                span=group[0].mapping.decl.partition_span,
                hint="widen a constraint or add a catch-all instance "
                "(probe-derived: verify against the real dial plan)",
            )
        )
    return diagnostics


def _overlap(
    schema: str, a: InstanceBinding, b: InstanceBinding, witness: str | None
) -> Diagnostic:
    if witness is None:
        detail = "both constraints are trivially true"
    else:
        detail = f"witness value {witness!r} satisfies both"
    return Diagnostic(
        code="LX301",
        message=f"instances {a.name!r} and {b.name!r} overlap on target "
        f"schema {schema!r}: {detail}; records in the overlap are added to "
        "both devices",
        mapping=a.mapping.name,
        span=a.mapping.decl.partition_span,
        related=((b.mapping.name, b.mapping.decl.partition_span),),
        hint="make the partition constraints mutually exclusive",
    )
