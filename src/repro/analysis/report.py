"""Reporters: render an :class:`~repro.analysis.runner.AnalysisReport`.

Two formats: a compiler-style text listing (one finding per line, sorted
errors first) for humans and ``make check``, and a stable JSON document
for tooling (CI annotations, dashboards).
"""

from __future__ import annotations

import json

from .diagnostics import Diagnostic
from .runner import AnalysisReport


def render_text(report: AnalysisReport, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for diagnostic in report.diagnostics:
        lines.append(str(diagnostic))
    if show_suppressed:
        for diagnostic in report.suppressed:
            lines.append(f"[suppressed] {diagnostic}")
    lines.append(f"lexcheck: {report.summary()}")
    return "\n".join(lines)


def _diagnostic_json(diagnostic: Diagnostic) -> dict:
    return {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "title": diagnostic.title,
        "message": diagnostic.message,
        "mapping": diagnostic.mapping or None,
        "rule": diagnostic.rule,
        "line": diagnostic.span.line if diagnostic.span else None,
        "column": diagnostic.span.column if diagnostic.span else None,
        "hint": diagnostic.hint,
    }


def render_json(report: AnalysisReport, indent: int | None = 2) -> str:
    document = {
        "summary": report.counts(),
        "ok": report.ok,
        "diagnostics": [_diagnostic_json(d) for d in report.diagnostics],
        "suppressed": [_diagnostic_json(d) for d in report.suppressed],
    }
    return json.dumps(document, indent=indent)
