"""The routing oracle — compile-time commutativity sharding (docs/CONCURRENCY.md).

The Update Manager's coordinator serializes every update through one
global queue.  Most updates provably *commute*: two adds landing in
disjoint extension-prefix partitions touch disjoint device records, so
executing them concurrently cannot change any observable outcome
("Limits of Commutativity on Abstract Data Types").  This module turns
that proof obligation into a compile-time artifact: a :class:`RoutingPlan`
built once per mapping configuration, consulted once per update.

The plan is derived from the same facts lexcheck already computes:

* **Partition constraints** (LX3xx machinery): each device instance's
  combined constraint, restricted to the rules that feed it, decides
  which instance *claims* an update's old/new images.  Updates whose
  claims coincide share a lane key; updates with disjoint claims land on
  (usually) different lanes and may drain concurrently.
* **Write-write conflict probing** (LX403): attribute sets whose rules
  were proved non-commuting by the closure-graph pass must never execute
  concurrently — any update touching them falls back to the serial lane.
  Suppressed findings (the by-design ``lastUpdater`` Originator pattern)
  do *not* force serialization: the suppression is the operator's
  commutativity waiver.

Everything the oracle cannot *prove* disjoint routes to the serial lane:
ModifyRDN renames (the descriptor no longer carries the old DN), DDU
reapplication (section 5.4's conditional writes re-enter the originating
device and must observe the global order), cross-partition moves (a
DELETE on one device and an ADD on another for the same logical record),
partition overlaps, and records no instance claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lexpress.descriptor import UpdateDescriptor, normalize_attrs
from ..lexpress.interpreter import execute
from ..lexpress.mapping import CompiledRule, _as_values
from .partitions import InstanceBinding
from .runner import AnalysisReport, AnalysisTarget, analyze

__all__ = [
    "LaneDecision",
    "RoutingPlan",
    "SERIAL_REASONS",
    "build_routing_plan",
]

#: Every reason the oracle gives for routing an update to the serial lane.
SERIAL_REASONS = (
    "modify-rdn",
    "ddu-reapplication",
    "non-commuting-write",
    "partition-overlap",
    "cross-partition-move",
    "unclaimed",
)


@dataclass(frozen=True)
class LaneDecision:
    """The oracle's verdict on one update descriptor.

    ``lane_key`` is a stable string identifying the disjointness class
    (hashable onto a lane), or ``None`` when the update must serialize;
    ``reason`` is ``"partition"`` for lane-routed updates and one of
    :data:`SERIAL_REASONS` otherwise."""

    lane_key: str | None
    reason: str

    @property
    def serial(self) -> bool:
        return self.lane_key is None


@dataclass(frozen=True)
class _Claimant:
    """One instance binding with the rule slice its constraints read."""

    instance: InstanceBinding
    #: The mapping rules whose targets the partition constraints (and the
    #: key) depend on — the only rules classification needs to evaluate.
    rules: tuple[CompiledRule, ...]

    def claim(self, attrs: dict[str, list[str]]) -> str | None:
        """The claim string when this instance owns *attrs*, else None.

        The claim carries the target-schema key value so two updates on
        the same device record always share a lane, while updates on
        distinct records of one large partition may spread out."""
        mapping = self.instance.mapping
        image: dict[str, list[str]] = {}
        for rule in self.rules:
            values = _as_values(execute(rule.code, attrs))
            if values is not None:
                image[rule.target] = values
        mapping._key_fallback(image, attrs)
        if not self.instance.satisfied_by(image):
            return None
        key = mapping.key_of(image)
        name = self.instance.name
        return f"{name}:{key}" if key is not None else name


class RoutingPlan:
    """A compiled lane-key function plus the serial-fallback classes.

    Built once per configuration by :func:`build_routing_plan`; consulted
    by the sharded queue on every ``claim``.  The plan is immutable and
    thread-safe (classification only reads compiled code objects).
    """

    def __init__(
        self,
        groups: dict[str, list[_Claimant]],
        conflict_attributes: frozenset[str],
        source_schema: str,
        partitioned_schemas: tuple[str, ...] = (),
    ):
        #: Target schema (lower) -> claimants, in canonical-priority order:
        #: schemas carrying per-instance partitions first (they define the
        #: deployment's sharding dimension), then the rest alphabetically.
        self.groups = groups
        #: Source-schema attribute names (lower) proved order-dependent by
        #: unsuppressed LX403 findings; touching any of them serializes.
        self.conflict_attributes = conflict_attributes
        self.source_schema = source_schema
        self.partitioned_schemas = partitioned_schemas
        ordered = sorted(
            groups, key=lambda s: (s not in partitioned_schemas, s)
        )
        self._ordered_schemas = tuple(ordered)

    # -- classification -----------------------------------------------------

    def classify(
        self, descriptor: UpdateDescriptor, rename: bool = False
    ) -> LaneDecision:
        """Decide the lane key (or serial fallback) for one descriptor.

        ``rename`` must be passed by the caller when the triggering LDAP
        operation was a ModifyRDN — the descriptor folds renames into a
        MODIFY keyed by the *new* DN, so the flag cannot be recovered from
        the descriptor itself.
        """
        if rename:
            return LaneDecision(None, "modify-rdn")
        origin = (descriptor.origin or "").lower()
        if origin and origin != self.source_schema:
            # Section 5.4 reapplication: the conditional writes sent back
            # to the originating device must observe the global order the
            # reapplication technique converges under.
            return LaneDecision(None, "ddu-reapplication")
        if self.conflict_attributes and (
            descriptor.changed_attributes() & self.conflict_attributes
        ):
            return LaneDecision(None, "non-commuting-write")

        old_claims = self._claims(descriptor.old)
        new_claims = self._claims(descriptor.new)
        for schema in set(old_claims) | set(new_claims):
            if (
                len(old_claims.get(schema, ())) > 1
                or len(new_claims.get(schema, ())) > 1
            ):
                return LaneDecision(None, "partition-overlap")
        old_flat = {c for claims in old_claims.values() for c in claims}
        new_flat = {c for claims in new_claims.values() for c in claims}
        if old_flat and new_flat and old_flat != new_flat:
            # The update migrates the record between partitions (or
            # renumbers its device key): a DELETE lands on one lane's
            # device and an ADD on another's — not provably disjoint from
            # either side's traffic.
            return LaneDecision(None, "cross-partition-move")

        claims = new_claims if new_flat else old_claims
        for schema in self._ordered_schemas:
            claimed = claims.get(schema)
            if claimed:
                # The canonical claim: the highest-priority schema that
                # owns the record.  Claims of the remaining schemas are
                # functionally coupled to it through the closure (same
                # device key ⇒ same canonical claim), so one claim is
                # enough to name the disjointness class.
                return LaneDecision("|".join(sorted(claimed)), "partition")
        return LaneDecision(None, "unclaimed")

    def _claims(
        self, attrs: dict[str, list[str]] | None
    ) -> dict[str, tuple[str, ...]]:
        """Target schema -> claim strings for one source image."""
        if attrs is None:
            return {}
        normalized = normalize_attrs(attrs) or {}
        out: dict[str, tuple[str, ...]] = {}
        for schema, claimants in self.groups.items():
            claimed = tuple(
                claim
                for claimant in claimants
                if (claim := claimant.claim(normalized)) is not None
            )
            if claimed:
                out[schema] = claimed
        return out

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-friendly summary (the CLI and docs use this)."""
        return {
            "source_schema": self.source_schema,
            "partitioned_schemas": list(self.partitioned_schemas),
            "instances": {
                schema: [c.instance.name for c in claimants]
                for schema, claimants in sorted(self.groups.items())
            },
            "conflict_attributes": sorted(self.conflict_attributes),
            "serial_reasons": list(SERIAL_REASONS),
        }


def build_routing_plan(
    target: AnalysisTarget,
    report: AnalysisReport | None = None,
    source_schema: str | None = None,
) -> RoutingPlan:
    """Compile the routing oracle for one configuration.

    ``report`` lets a caller that already ran :func:`~repro.analysis.analyze`
    reuse its findings; otherwise the analysis runs here (the LX403
    propagation probes are the commutativity proof the plan is built on).
    Only *active* findings force serialization — suppressed ones are
    operator-approved waivers.
    """
    if report is None:
        report = analyze(target)

    if source_schema is None:
        sources = [i.mapping.source.lower() for i in target.instances]
        source_schema = sources[0] if sources else "ldap"

    groups: dict[str, list[_Claimant]] = {}
    partitioned: set[str] = set()
    for instance in target.instances:
        if instance.mapping.source.lower() != source_schema:
            continue
        schema = instance.mapping.target.lower()
        if instance.partition is not None:
            partitioned.add(schema)
        wanted = set(instance.deps)
        key_target = instance.mapping.key_target
        if key_target is not None:
            wanted.add(key_target.lower())
        rules = tuple(
            r
            for r in instance.mapping.rules
            if r.target.lower() in wanted
        )
        groups.setdefault(schema, []).append(_Claimant(instance, rules))

    conflict_attrs = _conflict_attributes(target, report, source_schema)
    return RoutingPlan(
        groups=groups,
        conflict_attributes=conflict_attrs,
        source_schema=source_schema,
        partitioned_schemas=tuple(sorted(partitioned)),
    )


def _conflict_attributes(
    target: AnalysisTarget, report: AnalysisReport, source_schema: str
) -> frozenset[str]:
    """Source-schema attributes entangled in unsuppressed LX403 findings.

    For each active write-write conflict, collect the dependencies of both
    conflicting rules (when their mapping reads the source schema — those
    are the attributes whose change fires the rule) plus the contested
    target attribute itself (it may exist on the source side too, as the
    Originator attributes do)."""
    by_name = {m.name: m for m in target.mappings}
    attrs: set[str] = set()
    for diagnostic in report.diagnostics:
        if diagnostic.code != "LX403":
            continue
        involved = [(diagnostic.mapping, diagnostic.rule)]
        involved.extend(
            (name, diagnostic.rule) for name, _span in diagnostic.related
        )
        for mapping_name, rule_target in involved:
            mapping = by_name.get(mapping_name or "")
            if mapping is None or rule_target is None:
                continue
            for rule in mapping.rules:
                if rule.target.lower() != rule_target.lower():
                    continue
                attrs.add(rule.target.lower())
                if mapping.source.lower() == source_schema:
                    attrs.update(rule.deps)
    return frozenset(attrs)
