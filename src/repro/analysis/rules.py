"""Pass 2 — table-translation totality and injectivity (LX2xx, LX405).

Table translations are the workhorse of attribute mapping ("table
translations of attributes", section 4.2), and two silent failure modes
recur in practice:

* **Partiality** — a table with no ``_`` default drops unmatched values on
  the floor: the rule evaluates to null and the target attribute is
  silently unset (LX201).
* **Non-injectivity** — two keys translating to the same constant value
  cannot be inverted by the reverse mapping of the schema pair, so a
  round-trip through the meta-directory loses information (LX202).

This pass works on the retained AST (``CompiledMapping.decl``), not the
byte code — the table structure is flattened into compare-and-jump chains
during compilation, while the AST states it directly.
"""

from __future__ import annotations

from typing import Iterator

from ..lexpress.ast import (
    BoolOp,
    Call,
    Compare,
    Each,
    Expr,
    Literal,
    Match,
    NotOp,
    Table,
)
from ..lexpress.mapping import CompiledMapping
from .diagnostics import Diagnostic


def _children(expr: Expr) -> Iterator[Expr]:
    if isinstance(expr, Call):
        yield from expr.args
    elif isinstance(expr, Compare):
        yield expr.left
        yield expr.right
    elif isinstance(expr, BoolOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, NotOp):
        yield expr.operand
    elif isinstance(expr, Match):
        yield expr.subject
        for arm in expr.arms:
            yield arm.body
    elif isinstance(expr, Table):
        yield expr.subject
        for entry in expr.entries:
            yield entry.body
        if expr.default is not None:
            yield expr.default
    elif isinstance(expr, Each):
        yield expr.body


def _walk(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in _children(expr):
        yield from _walk(child)


def check_mapping_rules(mapping: CompiledMapping) -> list[Diagnostic]:
    """Run the AST-level rule checks over every rule of one mapping."""
    diagnostics: list[Diagnostic] = []
    exprs: list[tuple[str | None, Expr]] = [
        (decl_rule.target, decl_rule.expr) for decl_rule in mapping.decl.rules
    ]
    if mapping.decl.partition is not None:
        exprs.append((None, mapping.decl.partition))
    for rule_target, root in exprs:
        for expr in _walk(root):
            if isinstance(expr, Table):
                diagnostics.extend(_check_table(mapping.name, rule_target, expr))
            elif isinstance(expr, Match):
                diagnostics.extend(_check_match(mapping.name, rule_target, expr))
            elif isinstance(expr, Call):
                diagnostics.extend(_check_alt(mapping.name, rule_target, expr))
    return diagnostics


def _check_table(mapping: str, rule: str | None, table: Table) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    seen_keys: dict[str, Expr] = {}
    values: dict[str, list[str]] = {}
    for entry in table.entries:
        if entry.key in seen_keys:
            out.append(
                Diagnostic(
                    code="LX203",
                    message=f"table key {entry.key!r} appears more than once; "
                    "the later entry never fires",
                    mapping=mapping,
                    rule=rule,
                    span=entry.span or table.span,
                    hint="remove the duplicate entry",
                )
            )
        else:
            seen_keys[entry.key] = entry.body
        if isinstance(entry.body, Literal) and isinstance(entry.body.value, str):
            values.setdefault(entry.body.value, []).append(entry.key)
    for value, keys in values.items():
        if len(keys) > 1:
            out.append(
                Diagnostic(
                    code="LX202",
                    message=f"keys {', '.join(repr(k) for k in keys)} all translate "
                    f"to {value!r}; the reverse mapping cannot distinguish them",
                    mapping=mapping,
                    rule=rule,
                    span=table.span,
                    hint="make table values distinct, or accept the lossy "
                    "round-trip explicitly",
                )
            )
    if table.default is None:
        out.append(
            Diagnostic(
                code="LX201",
                message="table has no default entry; unmatched values are "
                "silently dropped (rule evaluates to null)",
                mapping=mapping,
                rule=rule,
                span=table.span,
                hint="add a default arm: `default => ...`",
            )
        )
    return out


def _check_match(mapping: str, rule: str | None, match: Match) -> list[Diagnostic]:
    if any(arm.pattern is None for arm in match.arms):
        return []
    return [
        Diagnostic(
            code="LX204",
            message="match has no wildcard arm; unmatched subjects evaluate "
            "to null",
            mapping=mapping,
            rule=rule,
            span=match.span,
            hint='add a catch-all arm: `_ => ...`',
        )
    ]


def _check_alt(mapping: str, rule: str | None, call: Call) -> list[Diagnostic]:
    """LX405: in alt()/ifnull(), arguments after a non-null literal never
    evaluate — the literal always supplies the value."""
    if call.function not in ("alt", "ifnull"):
        return []
    for i, arg in enumerate(call.args[:-1]):
        if isinstance(arg, Literal) and arg.value is not None:
            trailing = len(call.args) - i - 1
            return [
                Diagnostic(
                    code="LX405",
                    message=f"{call.function}() argument {i} is a non-null "
                    f"literal; the {trailing} argument(s) after it never "
                    "evaluate",
                    mapping=mapping,
                    rule=rule,
                    span=arg.span or call.span,
                    hint="move the literal last (it is the fallback) or drop "
                    "the dead alternates",
                )
            ]
    return []
