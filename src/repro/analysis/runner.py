"""lexcheck — orchestrates the four analysis passes over a configuration.

The unit of analysis is an :class:`AnalysisTarget`: every compiled
mapping in the deployment, the device instance bindings (with their
partition constraints), and whatever repository schemas are declared.
:func:`analyze` runs

1. the byte-code verifier (:mod:`~repro.analysis.verifier`, LX1xx),
2. the table/match rule checks (:mod:`~repro.analysis.rules`, LX2xx),
3. the partition overlap/coverage probe
   (:mod:`~repro.analysis.partitions`, LX3xx), and
4. the closure-graph checks (:mod:`~repro.analysis.graph`, LX4xx),

applies inline ``# lexcheck: ignore[...]`` suppressions from the
mappings' retained source text, and returns a sorted
:class:`AnalysisReport`.  ``MetaCommConfig(strict_analysis=True)`` calls
this before constructing the Update Manager and refuses to boot on any
error-severity finding (:class:`AnalysisError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lexpress.mapping import CompiledMapping
from .diagnostics import Diagnostic, Severity, Suppressions, sort_key
from .graph import check_graph
from .partitions import InstanceBinding, check_partitions
from .rules import check_mapping_rules
from .verifier import verify_code


@dataclass
class AnalysisTarget:
    """Everything lexcheck needs to see a configuration whole."""

    mappings: list[CompiledMapping]
    instances: list[InstanceBinding] = field(default_factory=list)
    #: Repository schema name (lower) -> declared attribute names; used to
    #: decide which rule dependencies are producible (LX404).
    schema_attributes: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass
class AnalysisReport:
    """The outcome of one lexcheck run."""

    diagnostics: list[Diagnostic]
    #: Findings silenced by inline suppressions (kept for --show-suppressed
    #: style tooling and for tests).
    suppressed: list[Diagnostic] = field(default_factory=list)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
            "suppressed": len(self.suppressed),
        }

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{n} {name}(s)" for name, n in counts.items() if name != "suppressed" and n]
        text = ", ".join(parts) if parts else "no findings"
        if counts["suppressed"]:
            text += f" ({counts['suppressed']} suppressed)"
        return text


class AnalysisError(Exception):
    """Raised by strict mode when the configuration has error findings."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        lines = [f"lexcheck found {len(report.errors)} error(s):"]
        lines += [f"  {d}" for d in report.errors]
        super().__init__("\n".join(lines))


def analyze(target: AnalysisTarget, registry=None) -> AnalysisReport:
    """Run every pass over *target* and fold in suppressions."""
    raw: list[Diagnostic] = []
    for mapping in target.mappings:
        for rule in mapping.rules:
            raw.extend(verify_code(rule.code, mapping.name, rule.target))
        raw.extend(verify_code(mapping.partition.code, mapping.name))
        raw.extend(check_mapping_rules(mapping))
    for instance in target.instances:
        if instance.partition is not None:
            raw.extend(
                verify_code(instance.partition.code, instance.mapping.name)
            )
    raw.extend(check_partitions(target.instances))
    raw.extend(check_graph(target.mappings, target.schema_attributes))

    suppressions = _suppression_index(target.mappings)
    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diagnostic in raw:
        if _is_suppressed(diagnostic, suppressions):
            suppressed.append(diagnostic)
        else:
            active.append(diagnostic)

    report = AnalysisReport(
        diagnostics=sorted(active, key=sort_key),
        suppressed=sorted(suppressed, key=sort_key),
    )
    if registry is not None:
        counter = registry.counter(
            "metacomm_analysis_diagnostics_total",
            "Static-analysis findings by severity.",
            labelnames=("severity",),
        )
        for severity in Severity:
            count = len(report.by_severity(severity))
            if count:
                counter.labels(severity=severity.value).inc(count)
    return report


def analyze_strict(target: AnalysisTarget, registry=None) -> AnalysisReport:
    """:func:`analyze`, raising :class:`AnalysisError` on error findings."""
    report = analyze(target, registry=registry)
    if not report.ok:
        raise AnalysisError(report)
    return report


# -- suppression plumbing ---------------------------------------------------------


def _suppression_index(
    mappings: list[CompiledMapping],
) -> dict[str, Suppressions]:
    """Mapping name -> suppression table of the source text it came from.

    Mappings compiled from one description file share one source text (and
    therefore one line-number space), so the tables can be shared too."""
    by_text: dict[int, Suppressions] = {}
    index: dict[str, Suppressions] = {}
    for mapping in mappings:
        if not mapping.source_text:
            continue
        table = by_text.get(id(mapping.source_text))
        if table is None:
            table = Suppressions.scan(mapping.source_text)
            by_text[id(mapping.source_text)] = table
        index[mapping.name] = table
    return index


def _is_suppressed(
    diagnostic: Diagnostic, suppressions: dict[str, Suppressions]
) -> bool:
    anchors = [(diagnostic.mapping, diagnostic.span)]
    anchors.extend(diagnostic.related)
    for mapping_name, span in anchors:
        if span is None:
            continue
        table = suppressions.get(mapping_name)
        if table is not None and table.matches(span.line, diagnostic.code):
            return True
    return False
