"""Pass 1 — abstract interpretation of lexpress byte code (LX1xx).

The compiler's output obeys invariants the interpreter silently assumes:
every path reaches RETURN with exactly one value on the stack, jump
targets stay inside the code, CALLs name registered functions, MATCH_RE
operands are compiled regexes.  Mappings loaded from description files
always satisfy them, but :class:`~repro.lexpress.bytecode.CodeObject` is a
public, mutable surface — programmatically built or patched code (the
dynamic-loading story of section 4.2) is one bad ``emit`` away from a
runtime crash mid-update.  This verifier walks every reachable program
point with an abstract stack of *value kinds* and reports violations
before the code ever runs.

Kinds are sets over ``{null, str, bool, list}``; joins are unions.  The
kind lattice also powers two lint-grade checks: a provably scalar value
feeding a multi-value position (``count``/``join`` of a computed scalar —
LX107) and a provably list value silently truncated to its first element
in a scalar position (LX108).
"""

from __future__ import annotations

from typing import Iterable

from ..lexpress.bytecode import CodeObject, Op
from ..lexpress.compiler import _LIST_ARG_FUNCTIONS
from ..lexpress.functions import known_functions
from .diagnostics import Diagnostic

Kind = frozenset[str]

NULL: Kind = frozenset({"null"})
STR: Kind = frozenset({"str"})
BOOL: Kind = frozenset({"bool"})
LIST: Kind = frozenset({"list"})
SCALAR: Kind = STR | NULL
ANY: Kind = NULL | STR | BOOL | LIST

#: Result kinds of the runtime function library (defaults to ANY).
_RESULT_KINDS: dict[str, Kind] = {
    "concat": SCALAR, "upper": SCALAR, "lower": SCALAR, "trim": SCALAR,
    "substr": SCALAR, "replace": SCALAR, "pad": SCALAR, "digits": SCALAR,
    "prefix": BOOL, "suffix": BOOL, "contains": BOOL, "matches": BOOL,
    "present": BOOL, "empty": BOOL,
    "split": LIST | NULL, "join": SCALAR,
    "first": SCALAR, "last": SCALAR, "count": STR,
}

#: Multi-value positions where a provably scalar argument makes the call
#: degenerate (count of a scalar is always "1", join of a scalar is the
#: scalar).  present/empty/first/last/ifnull accept scalars meaningfully.
_DEGENERATE_SCALAR = {"count", "join"}


def _push(stack: tuple[Kind, ...], kind: Kind) -> tuple[Kind, ...]:
    return stack + (kind,)


def verify_code(
    code: CodeObject,
    mapping: str = "",
    rule: str | None = None,
) -> list[Diagnostic]:
    """Verify one code object (and, recursively, its ``each`` bodies)."""
    return list(_Verifier(code, mapping, rule).run())


class _Verifier:
    def __init__(self, code: CodeObject, mapping: str, rule: str | None):
        self.code = code
        self.mapping = mapping
        self.rule = rule
        self.diagnostics: list[Diagnostic] = []
        self.reported: set[tuple[str, int]] = set()

    def run(self) -> Iterable[Diagnostic]:
        instructions = self.code.instructions
        if not instructions:
            # Empty code objects are legal sentinels (AlwaysTrue) and are
            # never executed; nothing to verify.
            return self.diagnostics

        # states: pc -> abstract stack (tuple of kinds); worklist algorithm.
        states: dict[int, tuple[Kind, ...]] = {0: ()}
        worklist = [0]
        visited: set[int] = set()
        while worklist:
            pc = worklist.pop()
            if pc >= len(instructions):
                self.report(
                    "LX103",
                    pc,
                    f"execution can run past the last instruction of {self.code.name!r}",
                    hint="end every path with RETURN",
                )
                continue
            visited.add(pc)
            stack = states[pc]
            for succ, next_stack in self.step(pc, stack):
                if succ is None:
                    continue
                known = states.get(succ)
                if known is None:
                    states[succ] = next_stack
                    worklist.append(succ)
                elif len(known) != len(next_stack):
                    self.report(
                        "LX102",
                        succ,
                        f"stack depth disagrees at instruction {succ} "
                        f"({len(known)} vs {len(next_stack)})",
                        hint="every path into a join point must push the same "
                        "number of values",
                    )
                else:
                    merged = tuple(a | b for a, b in zip(known, next_stack))
                    if merged != known:
                        states[succ] = merged
                        worklist.append(succ)

        for pc in range(len(instructions)):
            if pc not in visited:
                self.report(
                    "LX105",
                    pc,
                    f"instruction {pc} ({instructions[pc]}) is unreachable",
                    hint="simplify the expression; dead arms never fire",
                )
        return self.diagnostics

    # -- transfer function ---------------------------------------------------

    def step(
        self, pc: int, stack: tuple[Kind, ...]
    ) -> list[tuple[int | None, tuple[Kind, ...]]]:
        """Successor (pc, stack) pairs of one instruction; None pc = stop."""
        ins = self.code.instructions[pc]
        op = ins.op
        consts = self.code.consts

        def underflow(needed: int) -> bool:
            if len(stack) < needed:
                self.report(
                    "LX101",
                    pc,
                    f"{op.name} needs {needed} stack value(s), found {len(stack)}",
                )
                return True
            return False

        def const_ok(index, expected=None, what: str = "constant") -> bool:
            if not isinstance(index, int) or not 0 <= index < len(consts):
                self.report("LX106", pc, f"{op.name}: bad constant index {index!r}")
                return False
            if expected is not None and not isinstance(consts[index], expected):
                self.report(
                    "LX106",
                    pc,
                    f"{op.name}: constant {index} is not a {what} "
                    f"(found {type(consts[index]).__name__})",
                )
                return False
            return True

        if op is Op.PUSH:
            if not const_ok(ins.arg):
                return [(pc + 1, _push(stack, ANY))]
            const = consts[ins.arg]
            kind = (
                NULL if const is None
                else BOOL if isinstance(const, bool)
                else STR if isinstance(const, str)
                else ANY
            )
            return [(pc + 1, _push(stack, kind))]

        if op in (Op.LOAD_ATTR, Op.LOAD_ALL):
            const_ok(ins.arg, str, "attribute name")
            kind = SCALAR if op is Op.LOAD_ATTR else LIST
            return [(pc + 1, _push(stack, kind))]

        if op is Op.LOAD_GROUP:
            return [(pc + 1, _push(stack, SCALAR))]

        if op is Op.LOAD_VALUE:
            return [(pc + 1, _push(stack, SCALAR))]

        if op is Op.CALL:
            arg = ins.arg
            if (
                not isinstance(arg, tuple)
                or len(arg) != 2
                or not all(isinstance(a, int) for a in arg)
            ):
                self.report("LX106", pc, f"CALL: malformed operand {arg!r}")
                return [(pc + 1, _push(stack, ANY))]
            name_idx, argc = arg
            name = None
            if const_ok(name_idx, str, "function name"):
                name = consts[name_idx]
                if name not in known_functions():
                    self.report(
                        "LX106",
                        pc,
                        f"CALL: unknown function {name!r}",
                        hint=f"known: {', '.join(known_functions())}",
                    )
                    name = None
            if underflow(argc):
                return [(pc + 1, (ANY,))]
            args, rest = stack[len(stack) - argc:], stack[: len(stack) - argc]
            if name is not None:
                self.check_arg_kinds(pc, name, args)
            result = _RESULT_KINDS.get(name, ANY) if name else ANY
            return [(pc + 1, _push(rest, result))]

        if op in (Op.MATCH_RE, Op.MATCH_LIT):
            if op is Op.MATCH_RE:
                if const_ok(ins.arg) and not hasattr(consts[ins.arg], "search"):
                    self.report(
                        "LX106",
                        pc,
                        f"MATCH_RE: constant {ins.arg} is not a compiled regex",
                    )
            else:
                const_ok(ins.arg, str, "literal")
            if underflow(1):
                return [(pc + 1, (BOOL,))]
            return [(pc + 1, _push(stack[:-1], BOOL))]

        if op is Op.TABLE_CONST:
            table_ok = const_ok(ins.arg, tuple, "(table, default) pair")
            result: Kind = frozenset()
            if table_ok:
                const = consts[ins.arg]
                if (
                    len(const) != 2
                    or not isinstance(const[0], dict)
                    or not all(isinstance(k, str) for k in const[0])
                ):
                    self.report(
                        "LX106",
                        pc,
                        f"TABLE_CONST: constant {ins.arg} is not a "
                        "(dict[str, value], default) pair",
                    )
                    table_ok = False
            if table_ok:
                for value in (*const[0].values(), const[1]):
                    result |= (
                        NULL if value is None
                        else BOOL if isinstance(value, bool)
                        else STR if isinstance(value, str)
                        else ANY
                    )
            else:
                result = ANY
            if underflow(1):
                return [(pc + 1, (result,))]
            return [(pc + 1, _push(stack[:-1], result))]

        if op is Op.EACH_APPLY:
            if const_ok(ins.arg, CodeObject, "code object"):
                body: CodeObject = consts[ins.arg]
                self.diagnostics.extend(
                    verify_code(body, self.mapping, self.rule)
                )
            if underflow(1):
                return [(pc + 1, (LIST,))]
            return [(pc + 1, _push(stack[:-1], LIST))]

        if op is Op.DUP:
            if underflow(1):
                return [(pc + 1, (ANY, ANY))]
            return [(pc + 1, _push(stack, stack[-1]))]

        if op is Op.POP:
            if underflow(1):
                return [(pc + 1, ())]
            return [(pc + 1, stack[:-1])]

        if op is Op.IS_NULL:
            if underflow(1):
                return [(pc + 1, (BOOL,))]
            return [(pc + 1, _push(stack[:-1], BOOL))]

        if op in (Op.EQ, Op.NEQ):
            if underflow(2):
                return [(pc + 1, (BOOL,))]
            return [(pc + 1, _push(stack[:-2], BOOL))]

        if op is Op.NOT:
            if underflow(1):
                return [(pc + 1, (BOOL,))]
            return [(pc + 1, _push(stack[:-1], BOOL))]

        if op in (Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
            next_stack = stack
            if op is not Op.JUMP:
                if underflow(1):
                    next_stack = ()
                else:
                    next_stack = stack[:-1]
            target = ins.arg
            if not isinstance(target, int) or not 0 <= target <= len(self.code):
                self.report(
                    "LX104",
                    pc,
                    f"{op.name}: target {target!r} outside [0, {len(self.code)})",
                )
                targets: list[tuple[int | None, tuple[Kind, ...]]] = []
            elif target == len(self.code):
                self.report(
                    "LX103",
                    pc,
                    f"{op.name} at {pc} jumps past the last instruction",
                    hint="end every path with RETURN",
                )
                targets = []
            else:
                targets = [(target, next_stack)]
            if op is not Op.JUMP:
                targets.append((pc + 1, next_stack))
            return targets

        if op is Op.RETURN:
            if len(stack) != 1:
                self.report(
                    "LX102",
                    pc,
                    f"RETURN with stack depth {len(stack)} (expected 1)",
                    hint="an expression leaves exactly one value",
                )
            return [(None, ())]

        self.report("LX106", pc, f"unknown opcode {op!r}")  # future-proofing
        return [(pc + 1, stack)]

    def check_arg_kinds(self, pc: int, name: str, args: tuple[Kind, ...]) -> None:
        """LX107/LX108: list/scalar mismatches against the function table."""
        positions = _LIST_ARG_FUNCTIONS.get(name, set())
        for i, kind in enumerate(args):
            wants_list = positions == "all" or i in positions
            if wants_list and name in _DEGENERATE_SCALAR and "list" not in kind:
                self.report(
                    "LX107",
                    pc,
                    f"{name}() argument {i} is never multi-valued; the call "
                    "is degenerate",
                    hint="pass an attribute reference directly so all its "
                    "values are seen",
                )
            elif not wants_list and kind == LIST:
                self.report(
                    "LX108",
                    pc,
                    f"{name}() argument {i} is always a list; only its first "
                    "value will be used",
                    hint="wrap it in first()/join() to make the choice explicit",
                )

    # -- reporting -----------------------------------------------------------

    def report(self, code: str, pc: int, message: str, hint: str | None = None) -> None:
        if (code, pc) in self.reported:
            return
        self.reported.add((code, pc))
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=f"{self.code.name}: {message}",
                mapping=self.mapping,
                rule=self.rule,
                span=self.code.span_at(pc),
                hint=hint,
            )
        )
