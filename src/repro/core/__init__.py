"""MetaComm core: the Update Manager, filters, synchronizer and facade."""

from .errorlog import AdminNotification, ErrorLog
from .filters import (
    UM_AGENT,
    ApplyResult,
    DeviceFilter,
    Filter,
    FilterError,
    LdapFilter,
    UmCrash,
)
from .mediator import MediatorError, VirtualMediator
from .metacomm import MetaComm, MetaCommConfig, PbxConfig
from .pipeline import (
    DeviceOutcome,
    DevicePlan,
    FailurePolicy,
    SequenceOutcome,
    StageResult,
    UpdatePlan,
    UpdateSequencePipeline,
    merge_attrs,
)
from .queue import GlobalUpdateQueue, QueuedUpdate, ShardedUpdateQueue
from .sync import SyncReport, Synchronizer
from .update_manager import DeviceBinding, UpdateManager

__all__ = [
    "AdminNotification",
    "ApplyResult",
    "DeviceBinding",
    "DeviceFilter",
    "DeviceOutcome",
    "DevicePlan",
    "ErrorLog",
    "FailurePolicy",
    "Filter",
    "FilterError",
    "GlobalUpdateQueue",
    "LdapFilter",
    "MediatorError",
    "MetaComm",
    "MetaCommConfig",
    "PbxConfig",
    "QueuedUpdate",
    "SequenceOutcome",
    "ShardedUpdateQueue",
    "StageResult",
    "SyncReport",
    "Synchronizer",
    "UM_AGENT",
    "UmCrash",
    "UpdatePlan",
    "UpdateManager",
    "UpdateSequencePipeline",
    "VirtualMediator",
    "merge_attrs",
]
