"""MetaComm core: the Update Manager, filters, synchronizer and facade."""

from .errorlog import AdminNotification, ErrorLog
from .filters import (
    UM_AGENT,
    ApplyResult,
    DeviceFilter,
    Filter,
    FilterError,
    LdapFilter,
    UmCrash,
)
from .mediator import MediatorError, VirtualMediator
from .metacomm import MetaComm, MetaCommConfig, PbxConfig
from .queue import GlobalUpdateQueue, QueuedUpdate
from .sync import SyncReport, Synchronizer
from .update_manager import DeviceBinding, UpdateManager

__all__ = [
    "AdminNotification",
    "ApplyResult",
    "DeviceBinding",
    "DeviceFilter",
    "ErrorLog",
    "Filter",
    "FilterError",
    "GlobalUpdateQueue",
    "LdapFilter",
    "MediatorError",
    "MetaComm",
    "MetaCommConfig",
    "PbxConfig",
    "QueuedUpdate",
    "SyncReport",
    "Synchronizer",
    "UM_AGENT",
    "UmCrash",
    "UpdateManager",
    "VirtualMediator",
]
