"""Failure logging into the directory.

Paper section 4.4: "If failure occurs while an update is being applied to
one of the various devices (e.g., an update is invalid), the update is
aborted, an error is logged into the directory, and a notification is sent
to the administrator.  The administrator can browse through the errors and
manually fix the resulting inconsistencies at a later time."
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable

from ..ldap.dn import DN, Rdn
from ..ldap.entry import Entry
from ..ldap.result import LdapError
from ..ldap.server import LdapServer


@dataclass(frozen=True)
class AdminNotification:
    """What the administrator's pager receives."""

    error_id: str
    target: str
    message: str
    dn: str


AdminListener = Callable[[AdminNotification], None]


class ErrorLog:
    """Writes error entries under ``cn=errors,<suffix>`` and pages admins.

    The log writes directly to the server backend (not through LTAP): an
    error record must never itself fire trigger processing."""

    def __init__(self, server: LdapServer, suffix: DN | str):
        self.server = server
        if isinstance(suffix, str):
            suffix = DN.parse(suffix)
        self.base = suffix.child("ou=errors")
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._listeners: list[AdminListener] = []
        self._clock = 0
        self._ensure_base()

    def _ensure_base(self) -> None:
        if not self.server.backend.contains(self.base):
            self.server.backend.add(
                Entry(
                    self.base,
                    {
                        "objectClass": ["top", "organizationalUnit"],
                        "ou": "errors",
                        "description": "MetaComm update failure log",
                    },
                )
            )

    def add_admin_listener(self, listener: AdminListener) -> None:
        self._listeners.append(listener)

    def record(self, target: str, message: str, context: str = "") -> AdminNotification:
        """Log one failure; returns the notification sent to admins."""
        with self._lock:
            self._clock += 1
            error_id = f"error-{next(self._seq):06d}"
            timestamp = str(self._clock)
        entry = Entry(
            self.base.child(Rdn.single("cn", error_id)),
            {
                "objectClass": ["top", "metacommErrorEntry"],
                "cn": error_id,
                "metacommError": message[:512],
                "metacommErrorTime": timestamp,
                "metacommErrorTarget": target,
                **({"description": context[:512]} if context else {}),
            },
        )
        try:
            self.server.backend.add(entry)
        except LdapError:
            # Last-ditch: the log must never make a failure worse.
            pass
        notification = AdminNotification(error_id, target, message, str(entry.dn))
        for listener in list(self._listeners):
            listener(notification)
        return notification

    def entries(self) -> list[Entry]:
        """All logged errors, oldest first (the admin's browse view)."""
        hits = self.server.backend.search(
            self.base, filter="(objectClass=metacommErrorEntry)"
        )
        return sorted(hits, key=lambda e: e.first("cn") or "")

    def clear(self) -> int:
        """Purge handled errors; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            self.server.backend.delete(entry.dn)
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.entries())
