"""Per-repository filters: protocol converter + lexpress mapper."""

from .base import ApplyResult, DduHandler, Filter, FilterError
from .device_filter import UM_AGENT, DeviceFilter
from .ldap_filter import LdapFilter, UmCrash

__all__ = [
    "ApplyResult",
    "DduHandler",
    "DeviceFilter",
    "Filter",
    "FilterError",
    "LdapFilter",
    "UM_AGENT",
    "UmCrash",
]
