"""Filter framework: the per-repository adapters of MetaComm.

Paper section 4.1: "a filter is associated with each repository type.
Each filter has two components: a protocol converter and mapper.  The
protocol converter provides a unified API for all repositories, which
consists of: a method to retrieve a record given its key (or id); the
ability to receive notifications from the device; and methods to add,
modify and delete records in the device.  Additionally ... the API must
also provide a method to retrieve all relevant data from the repository."

The mapper half lives in lexpress; a filter holds the compiled mappings
for its schema pair and applies :class:`TargetUpdate`\\ s to its
repository — including the section-5.4 conditional semantics for
reapplied updates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ...lexpress.descriptor import TargetAction, TargetUpdate, UpdateDescriptor
from ...obs.metrics import MetricsRegistry
from ...obs.views import StatsView


class FilterError(Exception):
    """An update could not be applied at a repository.

    Carries enough context for the Update Manager's error log."""

    def __init__(self, target: str, message: str):
        super().__init__(f"{target}: {message}")
        self.target = target
        self.message = message


@dataclass
class ApplyResult:
    """What applying one TargetUpdate produced."""

    target: str
    action: TargetAction
    applied: bool
    #: True when conditional recovery kicked in (add→modify or modify→add).
    recovered: bool = False
    #: Device-generated information to fold back into the directory
    #: (section 5.5) — e.g. {"MailboxId": ["MB-000123"]}.
    generated: dict[str, list[str]] = field(default_factory=dict)


#: Signature for the UM callback a filter invokes on a direct device update.
DduHandler = Callable[["Filter", UpdateDescriptor], None]


class Filter(abc.ABC):
    """One repository adapter: protocol converter + mapper."""

    def __init__(
        self,
        name: str,
        schema: str,
        registry: MetricsRegistry | None = None,
    ):
        #: Instance name, e.g. ``pbx-west`` (appears in Originator checks).
        self.name = name
        #: Schema name the repository speaks, e.g. ``pbx``.
        self.schema = schema
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "metacomm_filter_events_total",
            "Per-repository apply outcomes and DDU notifications",
            labelnames=("filter", "event"),
        )
        self._apply_seconds = self.registry.histogram(
            "metacomm_filter_apply_seconds",
            "Latency of applying one translated update at a repository",
            labelnames=("filter",),
        )
        self.statistics = StatsView(
            {
                event: (
                    lambda e=event: self._events.value_for(
                        filter=self.name, event=e
                    )
                )
                for event in (
                    "applied",
                    "skipped",
                    "conditional",
                    "recovered",
                    "failed",
                    "ddus",
                )
            }
        )

    def _count(self, event: str, amount: int = 1) -> None:
        self._events.labels(filter=self.name, event=event).inc(amount)

    def _apply_timer(self):
        """Histogram timer for one ``apply`` call (used by subclasses)."""
        return self._apply_seconds.labels(filter=self.name).time()

    # -- unified repository API (section 4.1) ---------------------------------

    @abc.abstractmethod
    def fetch(self, key: str) -> dict[str, list[str]] | None:
        """Retrieve a record by key; None when absent."""

    @abc.abstractmethod
    def dump(self) -> list[dict[str, list[str]]]:
        """All relevant records (the synchronization API)."""

    @abc.abstractmethod
    def apply(self, update: TargetUpdate) -> ApplyResult:
        """Apply a translated update to the repository."""

    def before_image(self, update: TargetUpdate) -> dict[str, list[str]] | None:
        """The record an update is about to touch, as it stands now.

        Captured during the planning stage, before any device write of
        the sequence, so saga compensation and parallel-mode rollback can
        restore it verbatim.  None for keyless updates or absent records."""
        key = update.old_key or update.key
        return self.fetch(key) if key is not None else None

    def compensate(
        self,
        update: TargetUpdate,
        before: Mapping[str, list[str]] | None,
    ) -> None:
        """Undo a previously applied update using its pre-update image.

        Part of the unified repository API so the pipeline's failure
        policies (saga compensation, parallel rollback) can target any
        filter; repositories that cannot undo raise."""
        raise NotImplementedError(f"{self.name} cannot compensate updates")

    # -- bookkeeping helpers ------------------------------------------------------

    def _track(self, result: ApplyResult, update: TargetUpdate) -> ApplyResult:
        if update.conditional:
            self._count("conditional")
        if result.recovered:
            self._count("recovered")
        if result.applied:
            self._count("applied")
        else:
            self._count("skipped")
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
