"""Filter over a legacy :class:`~repro.devices.base.Device`.

Covers both the PBX filter and the Messaging Platform filter of Figure 1 —
the protocol half differs only in the device handed in, exactly the reuse
the paper describes ("This separation between protocol and mapping allows
protocol-specific software to be reused with varying schema").

Responsibilities:

* translate device records to/from the canonical list-valued form;
* listen for device commit notifications, classify direct device updates
  (any agent other than our own) and hand them to the Update Manager as
  lexpress descriptors;
* apply TargetUpdates with the section-5.4 conditional semantics:
  a conditional ADD is tried as a modify first (falling back to add),
  a conditional MODIFY falls back to add when the record is missing,
  a conditional DELETE tolerates an already-deleted record.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Mapping

from ...devices.base import Device, DeviceError, NoSuchRecordError
from ...lexpress.descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
)
from .base import ApplyResult, DduHandler, Filter, FilterError

#: Agent string the filter uses for its own writes — notifications carrying
#: it are the UM's own propagated updates, not DDUs.
UM_AGENT = "metacomm-um"


def _to_lists(record: Mapping[str, str]) -> dict[str, list[str]]:
    return {name: [value] for name, value in record.items()}


def _to_scalars(attrs: Mapping[str, list[str]]) -> dict[str, str]:
    return {name: values[0] for name, values in attrs.items() if values}


class DeviceFilter(Filter):
    """Adapter between a legacy device and the Update Manager."""

    def __init__(
        self,
        device: Device,
        schema: str,
        name: str | None = None,
        registry=None,
    ):
        super().__init__(name or device.name, schema, registry=registry)
        self.device = device
        self._ddu_handler: DduHandler | None = None
        device.add_listener(self._on_notification)

    # -- notifications ---------------------------------------------------------

    def on_ddu(self, handler: DduHandler) -> None:
        """Register the Update Manager's DDU callback."""
        self._ddu_handler = handler

    def _on_notification(self, notification) -> None:
        if notification.agent == UM_AGENT:
            return  # our own propagated write coming back to us
        if self._ddu_handler is None:
            return  # running without MetaComm — the paper's requirement
        self._count("ddus")
        op = {
            "add": UpdateOp.ADD,
            "modify": UpdateOp.MODIFY,
            "delete": UpdateOp.DELETE,
        }[notification.op]
        descriptor = UpdateDescriptor(
            op=op,
            source=self.schema,
            key=notification.key,
            old=_to_lists(notification.before) if notification.before else None,
            new=_to_lists(notification.after) if notification.after else None,
            explicit=frozenset(
                self._explicit_attrs(notification.before, notification.after)
            ),
            origin=self.name,
        )
        self._ddu_handler(self, descriptor)

    @staticmethod
    def _explicit_attrs(before, after) -> set[str]:
        before = before or {}
        after = after or {}
        names = set(before) | set(after)
        return {
            n.lower() for n in names if before.get(n) != after.get(n)
        }

    # -- unified API -------------------------------------------------------------

    def fetch(self, key: str) -> dict[str, list[str]] | None:
        try:
            return _to_lists(self.device.get(key))
        except NoSuchRecordError:
            return None

    def dump(self) -> list[dict[str, list[str]]]:
        return [_to_lists(r) for r in self.device.dump()]

    # -- applying updates -----------------------------------------------------------

    def apply(self, update: TargetUpdate) -> ApplyResult:
        with self._apply_timer():
            try:
                return self._track(self._apply(update), update)
            except DeviceError as exc:
                self._count("failed")
                raise FilterError(self.name, str(exc)) from exc

    def submit(self, update: TargetUpdate) -> "Future[ApplyResult]":
        """Queue ``update`` on the device's pipelined link; returns a Future.

        The non-blocking sibling of :meth:`apply` for callers that overlap
        device round-trips (the event-driven fan-out stage).  The Future
        resolves to the same :class:`ApplyResult` — or raises the same
        :class:`FilterError` — that a blocking :meth:`apply` would have
        produced.  Requires a link attached to the device."""
        link = self.device.link
        if link is None:
            raise FilterError(self.name, "no device link attached")
        return link.submit(
            lambda: self.apply(update),
            op=update.action.value,
            key=str(update.key),
        )

    def _apply(self, update: TargetUpdate) -> ApplyResult:
        action = update.action
        if action is TargetAction.SKIP:
            return ApplyResult(self.name, action, applied=False)
        if action is TargetAction.ADD:
            return self._apply_add(update)
        if action is TargetAction.MODIFY:
            return self._apply_modify(update)
        if action is TargetAction.DELETE:
            return self._apply_delete(update)
        raise FilterError(self.name, f"unknown action {action}")

    def _writable(self, attrs: Mapping[str, list[str]]) -> dict[str, str]:
        """Scalars the device will accept (drop generated fields)."""
        out: dict[str, str] = {}
        for name, value in _to_scalars(attrs).items():
            spec = self.device.fields.get(name.lower())
            if spec is None or spec.generated:
                continue
            out[spec.name] = value
        return out

    def _apply_add(self, update: TargetUpdate) -> ApplyResult:
        record = self._writable(update.attributes)
        if update.conditional:
            # Section 5.4: "add operations are reapplied as conditional
            # modify operations" — the record usually already exists.
            if update.key is not None and self.device.contains(update.key):
                self.device.modify(update.key, record, agent=UM_AGENT)
                return ApplyResult(
                    self.name, update.action, applied=True, recovered=True
                )
        committed = self.device.add(record, agent=UM_AGENT)
        return ApplyResult(
            self.name,
            update.action,
            applied=True,
            generated=self._generated(committed),
        )

    def _apply_modify(self, update: TargetUpdate) -> ApplyResult:
        key = update.old_key or update.key
        if key is None:
            raise FilterError(self.name, "modify without a key")
        changes: dict[str, str | None] = dict(self._writable(update.changed))
        for name in update.removed:
            spec = self.device.fields.get(name.lower())
            if spec is not None and not spec.generated:
                changes[spec.name] = None
        if update.key is not None and update.key != key:
            changes[self.device.key_field] = update.key  # re-key (rare)
        if not changes:
            return ApplyResult(self.name, update.action, applied=False)
        try:
            self.device.modify(key, changes, agent=UM_AGENT)
            return ApplyResult(self.name, update.action, applied=True)
        except NoSuchRecordError:
            if not update.conditional:
                raise
            # Conditional recovery: "If a conditional modify fails, the
            # update filters then attempt to add the record."
            committed = self.device.add(
                self._writable(update.attributes), agent=UM_AGENT
            )
            return ApplyResult(
                self.name,
                update.action,
                applied=True,
                recovered=True,
                generated=self._generated(committed),
            )

    def _apply_delete(self, update: TargetUpdate) -> ApplyResult:
        key = update.key or update.old_key
        if key is None:
            raise FilterError(self.name, "delete without a key")
        try:
            self.device.delete(key, agent=UM_AGENT)
            return ApplyResult(self.name, update.action, applied=True)
        except NoSuchRecordError:
            if not update.conditional:
                raise
            return ApplyResult(
                self.name, update.action, applied=False, recovered=True
            )

    # -- compensation (saga-style undo, paper section 4.4 future work) -----------

    def compensate(
        self,
        update: TargetUpdate,
        before: Mapping[str, list[str]] | None,
    ) -> None:
        """Undo a previously applied update using its pre-update image.

        "A later version of the system will use pre-update information to
        attempt to undo device updates, making the overall technique akin
        to sagas."  ADDs are compensated by delete, DELETEs by re-add,
        MODIFYs by restoring every writable field of the before image."""
        key = update.key or update.old_key
        if update.action is TargetAction.ADD:
            if key is not None and self.device.contains(key):
                self.device.delete(key, agent=UM_AGENT)
            return
        if update.action is TargetAction.DELETE:
            if before is not None and (key is None or not self.device.contains(key)):
                self.device.add(self._writable(before), agent=UM_AGENT)
            return
        if update.action is TargetAction.MODIFY and before is not None:
            old = self._writable(before)
            old_key = old.get(self.device.key_field)
            current_key = update.key if update.key is not None else key
            if current_key is None or not self.device.contains(current_key):
                self.device.add(old, agent=UM_AGENT)
                return
            changes: dict[str, str | None] = dict(old)
            current = self.device.get(current_key)
            for name in current:
                spec = self.device.fields.get(name.lower())
                if spec is None or spec.generated:
                    continue
                if name not in old and name != self.device.key_field:
                    changes[name] = None
            if old_key is not None:
                changes[self.device.key_field] = old_key
            self.device.modify(current_key, changes, agent=UM_AGENT)

    def _generated(self, committed: Mapping[str, str]) -> dict[str, list[str]]:
        """Device-generated fields of a freshly committed record (5.5)."""
        out: dict[str, list[str]] = {}
        for name, value in committed.items():
            spec = self.device.fields.get(name.lower())
            if spec is not None and spec.generated:
                out[spec.name] = [value]
        return out
