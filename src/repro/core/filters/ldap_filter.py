"""The LDAP filter: adapter between the Update Manager and the directory.

Two jobs, mirroring Figure 1's arrows:

* **Forwarding DDUs** — a device-originated update, translated into the
  LDAP schema, is applied *through LTAP with triggers firing*, so locks
  are obtained and the update comes back to the UM with the device as its
  origin ("the update is eventually sent back to the UM after proper LTAP
  locks are obtained", section 4.4).
* **Supplemental writes** — during the UM's fan-out the closure may have
  derived additional LDAP attributes (the transitive closure, generated
  mailbox ids, the ``lastUpdater`` stamp).  Those are applied with
  triggers suppressed (the closure already reached its fixpoint) while
  re-entering the entry lock of the triggering session.

Entry location: person entries are found anywhere under the people base by
their key attribute (``definityExtension``, ``telephoneNumber``, ...); new
entries are created under a default container with ``cn=<cn>`` RDNs.  A cn
change therefore needs the infamous ModifyRDN + Modify pair of section
5.1 — non-atomic by LDAP's nature — and the filter exposes a crash hook
between the two operations so experiments can reproduce the window.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ...ldap.client import LdapConnection
from ...ldap.dn import DN, Rdn
from ...ldap.entry import Entry
from ...ldap.filter import Equality
from ...ldap.protocol import LdapHandler, Modification, Scope, Session
from ...ldap.result import LdapError
from ...lexpress.descriptor import TargetAction, TargetUpdate
from ...ltap.gateway import SUPPRESS_TRIGGERS
from ...schemas.integrated import PERSON_CLASSES
from .base import ApplyResult, Filter, FilterError

#: Attributes never removed when a device releases a person.
_PRESERVED_ON_DELETE = frozenset({"objectclass", "cn", "sn", "userpassword"})


class UmCrash(RuntimeError):
    """Raised by the crash hook to simulate a UM failure mid-sequence."""


class LdapFilter(Filter):
    """Adapter for the LDAP directory (through the LTAP gateway)."""

    def __init__(
        self,
        gateway: LdapHandler,
        people_base: DN | str,
        default_container: DN | str | None = None,
        person_classes: Iterable[str] = PERSON_CLASSES,
        name: str = "ldap",
        registry=None,
    ):
        super().__init__(name, schema="ldap", registry=registry)
        self.gateway = gateway
        self.people_base = DN.parse(people_base) if isinstance(people_base, str) else people_base
        if default_container is None:
            default_container = self.people_base
        self.default_container = (
            DN.parse(default_container)
            if isinstance(default_container, str)
            else default_container
        )
        self.person_classes = tuple(person_classes)
        #: Test/experiment hook called between the ModifyRDN and the
        #: Modify of a rename pair (section 5.1); raising simulates a UM
        #: crash at the worst moment.
        self.crash_hook: Callable[[str], None] | None = None

    # -- connections ------------------------------------------------------------

    def _connection(self, session: Session | None, suppress: bool) -> LdapConnection:
        conn = LdapConnection(self.gateway)
        if session is not None:
            conn.session = session
        if suppress:
            conn.session.state[SUPPRESS_TRIGGERS] = True
        return conn

    # -- unified API ------------------------------------------------------------

    def locate(self, key_attribute: str, key: str) -> Entry | None:
        """Find the person entry carrying ``key_attribute=key``."""
        conn = self._connection(None, suppress=False)
        hits = conn.search(
            self.people_base,
            Scope.SUB,
            Equality(key_attribute, key),
        )
        return hits[0] if hits else None

    def fetch_entry(self, update: TargetUpdate) -> Entry | None:
        if update.key_attribute is None:
            return None
        key = update.old_key or update.key
        if key is None:
            return None
        return self.locate(update.key_attribute, key)

    def fetch(self, key: str) -> dict[str, list[str]] | None:
        """Fetch by DN string (the directory's natural key)."""
        conn = self._connection(None, suppress=False)
        try:
            return conn.get(key).attributes.to_dict()
        except LdapError:
            return None

    def dump(self) -> list[dict[str, list[str]]]:
        conn = self._connection(None, suppress=False)
        hits = conn.search(self.people_base, Scope.SUB, "(objectClass=person)")
        return [e.attributes.to_dict() for e in hits]

    def person_entries(self) -> list[Entry]:
        conn = self._connection(None, suppress=False)
        return conn.search(self.people_base, Scope.SUB, "(objectClass=person)")

    # -- applying updates --------------------------------------------------------

    def apply(self, update: TargetUpdate, session: Session | None = None) -> ApplyResult:
        """Supplemental apply: triggers suppressed, entry lock re-entered."""
        return self._apply_update(update, session, suppress=True)

    def forward_ddu(
        self, update: TargetUpdate, origin: str, session: Session | None = None
    ) -> ApplyResult:
        """Apply a device-originated update *with* trigger processing.

        The session is stamped with the origin so the trigger handler can
        build a descriptor whose origin is the device — the input to the
        Originator/conditional machinery."""
        conn_session = session or Session()
        conn_session.state["metacomm.origin"] = origin
        try:
            return self._apply_update(update, conn_session, suppress=False)
        finally:
            conn_session.state.pop("metacomm.origin", None)

    def _apply_update(
        self, update: TargetUpdate, session: Session | None, suppress: bool
    ) -> ApplyResult:
        suppressed_before = bool(session.state.get(SUPPRESS_TRIGGERS)) if session else False
        conn = self._connection(session, suppress=suppress)
        with self._apply_timer():
            try:
                result = self._dispatch(update, conn)
                return self._track(result, update)
            except LdapError as exc:
                self._count("failed")
                raise FilterError(self.name, str(exc)) from exc
            finally:
                if suppress and session is not None and not suppressed_before:
                    session.state.pop(SUPPRESS_TRIGGERS, None)

    def _dispatch(self, update: TargetUpdate, conn: LdapConnection) -> ApplyResult:
        if update.action is TargetAction.SKIP:
            return ApplyResult(self.name, update.action, applied=False)
        if update.action is TargetAction.ADD:
            return self._apply_add(update, conn)
        if update.action is TargetAction.MODIFY:
            return self._apply_modify(update, conn)
        if update.action is TargetAction.DELETE:
            return self._apply_delete(update, conn)
        raise FilterError(self.name, f"unknown action {update.action}")

    def apply_supplemental(
        self,
        dn: DN,
        attributes: Mapping[str, list[str]],
        session: Session | None = None,
    ) -> bool:
        """Write closure-derived / device-generated attributes to one entry.

        Runs with triggers suppressed (the closure already reached its
        fixpoint) while re-entering the caller's entry lock.  Returns True
        when anything was actually written."""
        suppressed_before = session is not None and bool(
            session.state.get(SUPPRESS_TRIGGERS)
        )
        conn = self._connection(session, suppress=True)
        try:
            try:
                entry = conn.get(dn)
            except LdapError:
                return False
            # LDAP attribute names are caseless; fold the supplement onto
            # one canonical key per attribute (last writer wins) so a
            # caller passing e.g. both ``telephonenumber`` and
            # ``telephoneNumber`` cannot emit duplicate modifications.
            canonical: dict[str, str] = {}
            folded: dict[str, list[str]] = {}
            for name, values in attributes.items():
                key = canonical.setdefault(name.lower(), name)
                folded[key] = list(values)
            attributes = folded
            # Values that are part of the entry's RDN must never be
            # stripped by a replace (the server would reject it, aborting
            # the whole supplement batch).
            rdn_values = {
                attr.lower(): value for attr, value in entry.dn.rdn.items()
            }
            safe_attrs: dict[str, list[str]] = {}
            for name, values in attributes.items():
                rdn_value = rdn_values.get(name.lower())
                if rdn_value is not None and rdn_value not in values:
                    values = list(values) + [rdn_value]
                safe_attrs[name] = list(values)
            mods = self._mods_for_attrs(safe_attrs, entry)
            if not mods:
                return False
            conn.modify(dn, mods)
            return True
        finally:
            if session is not None and not suppressed_before:
                session.state.pop(SUPPRESS_TRIGGERS, None)

    # -- add -----------------------------------------------------------------------

    def _cn_for(self, attrs: Mapping[str, list[str]], update: TargetUpdate) -> str:
        for name, values in attrs.items():
            if name.lower() == "cn" and values:
                return values[0]
        return update.key or "unknown"

    def _unique_dn(self, cn: str, key: str | None, conn: LdapConnection) -> DN:
        dn = self.default_container.child(Rdn.single("cn", cn))
        if not conn.exists(dn):
            return dn
        if key is not None:
            dn = self.default_container.child(Rdn.single("cn", f"{cn} ({key})"))
            if not conn.exists(dn):
                return dn
        raise FilterError(self.name, f"cannot find a unique DN for cn={cn}")

    def _apply_add(self, update: TargetUpdate, conn: LdapConnection) -> ApplyResult:
        existing = self.fetch_entry(update)
        if existing is None:
            # Identity resolution by name: a person whose device data was
            # stripped earlier (station removed, later re-added) should be
            # re-attached, not duplicated.  Only an entry that does not
            # already claim a *different* key is a safe match.
            existing = self._match_by_cn(update, conn)
        if existing is not None:
            # Conditional reapply, or the person already exists (e.g. data
            # for another device already materialized the entry): merge.
            mods = self._mods_for_attrs(update.attributes, existing)
            if mods:
                conn.modify(existing.dn, mods)
            return ApplyResult(
                self.name, update.action, applied=bool(mods),
                recovered=update.conditional,
            )
        attrs: dict[str, list[str]] = {"objectClass": list(self.person_classes)}
        attrs.update({k: list(v) for k, v in update.attributes.items()})
        cn = self._cn_for(attrs, update)
        attrs.setdefault("cn", [cn])
        if not any(n.lower() == "sn" for n in attrs):
            attrs["sn"] = [cn.split()[-1] if cn.split() else cn]
        dn = self._unique_dn(cn, update.key, conn)
        conn.add(dn, attrs)
        return ApplyResult(self.name, update.action, applied=True)

    def _match_by_cn(
        self, update: TargetUpdate, conn: LdapConnection
    ) -> Entry | None:
        cn = None
        for name, values in update.attributes.items():
            if name.lower() == "cn" and values:
                cn = values[0]
                break
        if cn is None:
            return None
        hits = conn.search(
            self.people_base,
            Scope.SUB,
            Equality("cn", cn),
        )
        for hit in hits:
            if "person" not in [c.lower() for c in hit.object_classes]:
                continue
            if update.key_attribute is not None and hit.has(update.key_attribute):
                continue  # already belongs to someone else on this device
            return hit
        return None

    @staticmethod
    def _mods_for_attrs(
        attrs: Mapping[str, list[str]], existing: Entry
    ) -> list[Modification]:
        mods = []
        for name, values in attrs.items():
            if existing.get(name) != list(values):
                mods.append(Modification.replace(name, *values))
        return mods

    # -- modify ------------------------------------------------------------------------

    def _apply_modify(self, update: TargetUpdate, conn: LdapConnection) -> ApplyResult:
        entry = self.fetch_entry(update)
        if entry is None:
            if update.conditional:
                return self._apply_add(update, conn)
            raise FilterError(
                self.name,
                f"no entry with {update.key_attribute}={update.old_key or update.key}",
            )
        dn = entry.dn

        # The section-5.1 pair: a cn change renames the entry (ModifyRDN)
        # and the remaining attributes follow in a separate Modify.  The
        # entry locks (old and new DN) are held across the whole pair —
        # "locking at the LTAP level prevents the interleaving of
        # operations at the LDAP level" — though a UM crash between the
        # two still leaves readers an inconsistent entry.
        new_cn = update.changed.get("cn") or next(
            (v for k, v in update.changed.items() if k.lower() == "cn"), None
        )
        renamed = False
        held: list = []
        locks = getattr(self.gateway, "locks", None)
        try:
            if new_cn and dn.rdn.attribute.lower() == "cn":
                target_rdn = Rdn.single("cn", new_cn[0])
                if target_rdn != dn.rdn:
                    new_dn = dn.parent().child(target_rdn)
                    if locks is not None:
                        for lock_dn in (dn, new_dn):
                            locks.acquire(lock_dn, conn.session)
                            held.append(lock_dn)
                    conn.modify_rdn(dn, target_rdn)
                    dn = new_dn
                    renamed = True
                    if self.crash_hook is not None:
                        self.crash_hook("between-rdn-and-modify")

            mods: list[Modification] = []
            for name, values in update.changed.items():
                if renamed and name.lower() == "cn":
                    continue  # already handled by the rename
                mods.append(Modification.replace(name, *values))
            for name in update.removed:
                if entry.has(name):
                    mods.append(Modification.delete(name))
            if mods:
                conn.modify(dn, mods)
        finally:
            if locks is not None:
                for lock_dn in held:
                    locks.release(lock_dn, conn.session)
        if not mods and not renamed:
            return ApplyResult(self.name, update.action, applied=False)
        return ApplyResult(self.name, update.action, applied=True)

    # -- delete -------------------------------------------------------------------------

    def _apply_delete(self, update: TargetUpdate, conn: LdapConnection) -> ApplyResult:
        entry = self.fetch_entry(update)
        if entry is None:
            if update.conditional:
                return ApplyResult(
                    self.name, update.action, applied=False, recovered=True
                )
            raise FilterError(
                self.name, f"no entry with {update.key_attribute}={update.key}"
            )
        # Removing a person from a device strips the device's attributes
        # from the entry; the person itself stays in the directory.
        mods = []
        for name in update.old_attributes:
            if name.lower() in _PRESERVED_ON_DELETE:
                continue
            if entry.has(name):
                mods.append(Modification.delete(name))
        if mods:
            conn.modify(entry.dn, mods)
        return ApplyResult(self.name, update.action, applied=bool(mods))
