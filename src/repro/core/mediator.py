"""The virtual-view mediator baseline.

Paper section 3: "unlike mediators where queries posed against the unified
system are dynamically executed at the various data sources, because of
reliability and performance requirements, MetaComm materializes subsets of
the data from the various sources in an integrated directory."

This module implements the road not taken — a classic Wiederhold-style
mediator [27] over the same filters and mappings: every query fans out to
the live devices, maps their records into the integrated schema on the
fly, joins per person, and evaluates the LDAP filter over the virtual
entries.  Experiment E15 uses it as the baseline for the paper's two
stated reasons to materialize instead:

* **performance** — a virtual query costs a full dump+map of every device,
  every time; the materialized directory answers from its own (indexed)
  tree;
* **reliability/availability** — a virtual query dies with any unreachable
  device; the materialized view keeps answering ("updates can still be
  made directly to the device even if the directory becomes inaccessible"
  cuts both ways: reads keep working when devices are down).
"""

from __future__ import annotations

from ..ldap.dn import DN, Rdn
from ..ldap.entry import Entry
from ..ldap.filter import Filter, parse_filter
from ..schemas.integrated import PERSON_CLASSES
from .update_manager import DeviceBinding


class MediatorError(RuntimeError):
    """A source needed by the query could not be reached."""


class VirtualMediator:
    """Answers integrated-schema queries by live fan-out to the devices."""

    def __init__(
        self,
        bindings: list[DeviceBinding],
        suffix: DN | str = "o=Lucent",
        person_classes: tuple[str, ...] = PERSON_CLASSES,
    ):
        self.bindings = list(bindings)
        self.suffix = DN.parse(suffix) if isinstance(suffix, str) else suffix
        self.person_classes = person_classes
        self.statistics = {"queries": 0, "source_dumps": 0, "records_mapped": 0}

    # -- the read path -----------------------------------------------------------

    def search(self, filter_text: str | Filter) -> list[Entry]:
        """Evaluate an LDAP filter over the virtual integrated view."""
        self.statistics["queries"] += 1
        compiled = parse_filter(filter_text)
        entries = self._materialize_virtual_view()
        return [e for e in entries if compiled.matches(e)]

    def _materialize_virtual_view(self) -> list[Entry]:
        """Dump every source and join records into virtual person entries.

        Records from different devices describing the same person are
        joined on the integrated key chain: the PBX key maps to
        ``definityExtension`` → ``telephoneNumber`` joins the MP record.
        """
        people: dict[str, dict[str, list[str]]] = {}

        def join_key(image: dict[str, list[str]]) -> str | None:
            for attr in ("telephoneNumber", "definityExtension"):
                for name, values in image.items():
                    if name.lower() == attr.lower() and values:
                        return f"{attr.lower()}={values[0].lower()}"
            return None

        for binding in self.bindings:
            try:
                records = binding.filter.dump()
            except Exception as exc:
                raise MediatorError(
                    f"source {binding.name} unavailable: {exc}"
                ) from exc
            self.statistics["source_dumps"] += 1
            for record in records:
                self.statistics["records_mapped"] += 1
                image = binding.to_ldap.image(record) or {}
                key = join_key(image)
                if key is None:
                    continue
                merged = people.setdefault(key, {})
                for name, values in image.items():
                    merged.setdefault(name, list(values))
            # Phone-derived join: a PBX image carries telephoneNumber, so
            # an MP record for the same number lands in the same bucket.

        entries: list[Entry] = []
        for merged in people.values():
            cn = next(
                (v[0] for n, v in merged.items() if n.lower() == "cn" and v),
                None,
            )
            if cn is None:
                cn = next(iter(merged.values()))[0]
            attrs: dict[str, object] = {"objectClass": list(self.person_classes)}
            attrs.update(merged)
            attrs.setdefault("sn", [cn.split()[-1]])
            entries.append(
                Entry(self.suffix.child(Rdn.single("cn", cn)), attrs)  # type: ignore[arg-type]
            )
        return entries
