"""The MetaComm facade: wires the whole Figure-1 architecture together.

One call builds the LDAP server (with the integrated schema), the LTAP
gateway in front of it, the legacy devices, one filter per repository, the
Update Manager with the standard mapping library, the error log and the
synchronizer::

    from repro.core import MetaComm, MetaCommConfig, PbxConfig

    system = MetaComm(MetaCommConfig(
        pbxes=[PbxConfig("pbx-west", ("41", "42")),
               PbxConfig("pbx-east", ("43",))],
    ))
    conn = system.connection()            # any LDAP tool — via LTAP
    terminal = system.terminal("pbx-west")  # the legacy craft interface
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.messaging.platform import MessagingPlatform
from ..devices.pbx.definity import DefinityPbx, partition_expression
from ..devices.pbx.ossi import OssiTerminal
from ..ldap.client import LdapConnection
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.server import LdapServer
from .. import lexpress
from ..lexpress.partition import PartitionConstraint
from ..ltap.gateway import LtapGateway
from ..obs import (
    AlertEngine,
    ConsistencyAuditor,
    Observability,
    Trace,
    default_rules,
)
from ..obs.events import LEXPRESS_COMPILED
from ..schemas.integrated import build_integrated_schema
from ..schemas.mappings import DEFAULT_PHONE_PREFIX, standard_mappings
from .errorlog import ErrorLog
from .filters.device_filter import DeviceFilter
from .filters.ldap_filter import LdapFilter
from .sync import Synchronizer
from .update_manager import DeviceBinding, UpdateManager


@dataclass(frozen=True)
class PbxConfig:
    """One Definity switch in the deployment."""

    name: str = "definity"
    extension_prefixes: tuple[str, ...] = ("4",)


@dataclass
class MetaCommConfig:
    """Deployment parameters for a MetaComm instance."""

    suffix: str = "o=Lucent"
    #: Where new person entries land (defaults to the suffix).
    people_container: str | None = None
    #: Additional organization entries to create under the suffix.
    organizations: tuple[str, ...] = ()
    phone_prefix: str = DEFAULT_PHONE_PREFIX
    pbxes: tuple[PbxConfig, ...] | list[PbxConfig] = (PbxConfig(),)
    messaging_name: str | None = "messaging"
    lock_timeout: float = 5.0
    #: Abort the remaining fan-out when one device rejects an update
    #: (section 4.4 semantics).  False = best-effort to all devices.
    abort_on_failure: bool = True
    #: Section 4.4 future work: saga-style compensation — undo the device
    #: updates already applied in an aborted sequence.
    undo_on_failure: bool = False
    #: Collect metrics and per-update traces (repro.obs).  Disabling turns
    #: every instrument into a no-op — the baseline of the overhead
    #: benchmark.
    observability: bool = True
    #: How many recent update traces the ring buffer retains.
    trace_capacity: int = 256
    #: How many lifecycle events the journal's bounded ring retains.
    journal_capacity: int = 1024
    #: Cadence (seconds) of the background consistency auditor when
    #: started via ``system.auditor.start()``.  The auditor never runs
    #: unless started — tests and the `monitor` CLI drive cycles
    #: explicitly.
    audit_interval: float = 0.5
    #: Worker threads for the update pipeline's device fan-out stage.
    #: 1 (default) preserves the paper's serial device order; >1 applies
    #: the planned per-device updates concurrently (the repositories are
    #: disjoint, so per-device histories are unchanged — see
    #: docs/PIPELINE.md for the serialization argument).
    fanout_workers: int = 1
    #: Concurrent coordinator lanes for the Update Manager's drain path.
    #: 1 (default) is the paper's single global queue, byte-identical in
    #: behaviour; >1 builds a routing oracle from the mapping
    #: configuration (repro.analysis.build_routing_plan) and shards
    #: provably-commuting updates over that many lanes, with a serial
    #: fallback lane for everything unprovable — see docs/CONCURRENCY.md.
    coordinator_lanes: int = 1
    #: Event-driven device links (docs/DEVICE_LINKS.md): replace the
    #: blocking thread-per-device fan-out with one dispatcher thread
    #: driving pipelined, batched command streams over every device link.
    #: Off by default — the blocking paths stay byte-identical.
    device_links: bool = False
    #: Maximum command streams (flushed batches) in flight per link.
    link_window: int = 4
    #: Maximum operations coalesced into one command stream.
    link_batch: int = 8
    #: Maximum operations waiting on one link before submits defer/block.
    link_queue_limit: int = 64
    #: Maximum outstanding updates per coordinator lane before LTAP's
    #: admission control defers or rejects with ServerBusy.  ``None``
    #: (default) disables admission — the pre-link unbounded behaviour.
    #: Requires ``coordinator_lanes > 1`` to take effect.
    lane_depth_limit: int | None = None
    #: What admission does at the limit: "reject" answers ServerBusy
    #: immediately, "defer" waits up to ``busy_timeout`` first.
    busy_policy: str = "reject"
    #: Bounded admission wait (seconds) under ``busy_policy="defer"``.
    busy_timeout: float = 0.5
    #: Run lexcheck (repro.analysis) over the full configuration before
    #: constructing the Update Manager and refuse to boot on any
    #: error-severity finding (docs/ANALYSIS.md).  Off by default: the
    #: analyzer costs a few closure probes per boot and most tests build
    #: throwaway configurations.
    strict_analysis: bool = False
    #: Execution engine for lexpress rule evaluation
    #: (docs/LEXPRESS_COMPILER.md): "interpret" (default) runs the
    #: byte-code interpreter, "compiled" serves verifier-gated Python
    #: closures from the process-wide rule cache, "verify" runs both and
    #: raises LexpressDivergenceError on any disagreement.
    lexpress_mode: str = "interpret"
    #: Wrap this system's subsystem locks in order-recording witness
    #: proxies (repro.obs.lockwitness): every acquisition pair is checked
    #: against the static LX5xx lock-order graph and reversals are
    #: journaled as ``witness.violation`` events.  Meant for tests,
    #: stress runs and canaries — each acquisition pays a dict probe.
    lock_witness: bool = False
    #: Boot gate over the *runtime* source: run the LX5xx concurrency
    #: analyzer (repro.analysis.concur) and refuse to construct the
    #: system on any error-severity finding (a known lock-order
    #: inversion).  The analysis is per-process cached by the witness
    #: seed path but re-run here for the gate's own report.
    strict_concurrency: bool = False


class MetaComm:
    """A fully wired MetaComm system."""

    def __init__(self, config: MetaCommConfig | None = None):
        self.config = config or MetaCommConfig()
        suffix = DN.parse(self.config.suffix)

        if self.config.strict_concurrency:
            # Boot gate over the runtime source itself: refuse to build a
            # system whose lock discipline has a known inversion (LX501).
            from ..analysis.concur import analyze_concurrency_strict

            analyze_concurrency_strict()

        #: This system's health plane: metrics registry, trace ring
        #: buffer, event journal and device-health board.  Every component
        #: below reports here, so one scrape (``metrics_text``), one trace
        #: query or one journal read covers the whole Figure-1 pipeline.
        self.obs = Observability(
            enabled=self.config.observability,
            trace_capacity=self.config.trace_capacity,
            journal_capacity=self.config.journal_capacity,
        )
        self.schema = build_integrated_schema()
        self.server = LdapServer(
            [suffix],
            schema=self.schema,
            server_id="metacomm",
            registry=self.obs.registry,
        )
        self._bootstrap_tree(suffix)

        self.gateway = LtapGateway(
            self.server,
            lock_timeout=self.config.lock_timeout,
            registry=self.obs.registry,
            tracer=self.obs.tracer,
        )
        self.error_log = ErrorLog(self.server, suffix)
        self.mappings = standard_mappings(self.config.phone_prefix)

        mode = self.config.lexpress_mode
        if mode not in lexpress.MODES:
            raise ValueError(
                f"lexpress_mode must be one of {', '.join(lexpress.MODES)}; "
                f"got {mode!r}"
            )
        self._lexpress_listener = None
        if mode != "interpret":
            for mapping in self.mappings.values():
                mapping.lexpress_mode = mode

            def _on_compile(event: dict, _journal=self.obs.journal) -> None:
                _journal.emit(LEXPRESS_COMPILED, **event)

            self._lexpress_listener = _on_compile
            lexpress.rule_cache().subscribe(_on_compile)

        people_container = (
            DN.parse(self.config.people_container)
            if self.config.people_container
            else suffix
        )
        self.ldap_filter = LdapFilter(
            self.gateway,
            people_base=suffix,
            default_container=people_container,
            registry=self.obs.registry,
        )

        self.pbxes: dict[str, DefinityPbx] = {}
        bindings: list[DeviceBinding] = []
        for pbx_config in self.config.pbxes:
            pbx = DefinityPbx(pbx_config.name, pbx_config.extension_prefixes)
            self.pbxes[pbx.name] = pbx
            bindings.append(
                DeviceBinding(
                    filter=DeviceFilter(
                        pbx, schema="pbx", registry=self.obs.registry
                    ),
                    to_ldap=self.mappings["pbx_to_ldap"],
                    from_ldap=self.mappings["ldap_to_pbx"],
                    partition=PartitionConstraint.compile(partition_expression(pbx)),
                )
            )

        self.messaging: MessagingPlatform | None = None
        if self.config.messaging_name:
            self.messaging = MessagingPlatform(self.config.messaging_name)
            bindings.append(
                DeviceBinding(
                    filter=DeviceFilter(
                        self.messaging, schema="mp", registry=self.obs.registry
                    ),
                    to_ldap=self.mappings["mp_to_ldap"],
                    from_ldap=self.mappings["ldap_to_mp"],
                )
            )

        self._bindings = bindings
        if self.config.strict_analysis:
            # Boot gate: a configuration with error-severity findings
            # (overlapping partitions, broken byte code, ...) would corrupt
            # repositories at the first update — refuse to build the UM.
            from ..analysis import analyze_strict

            analyze_strict(self.analysis_target(), registry=self.obs.registry)

        routing_plan = None
        if self.config.coordinator_lanes > 1:
            # The commutativity proof the sharded drain path rests on:
            # lexcheck's partition constraints + LX403 conflict probing,
            # compiled once into a per-configuration RoutingPlan.
            from ..analysis import build_routing_plan

            routing_plan = build_routing_plan(self.analysis_target())

        self.um = UpdateManager(
            self.server,
            self.gateway,
            self.ldap_filter,
            bindings,
            self.error_log,
            abort_on_failure=self.config.abort_on_failure,
            undo_on_failure=self.config.undo_on_failure,
            registry=self.obs.registry,
            tracer=self.obs.tracer,
            fanout_workers=self.config.fanout_workers,
            journal=self.obs.journal,
            health=self.obs.health,
            coordinator_lanes=self.config.coordinator_lanes,
            routing_plan=routing_plan,
            lane_depth_limit=self.config.lane_depth_limit,
            busy_policy=self.config.busy_policy,
            busy_timeout=self.config.busy_timeout,
        )
        self.sync = Synchronizer(self.um)
        self.suffix = suffix

        #: The event-driven link layer (docs/DEVICE_LINKS.md): one
        #: dispatcher thread drives a pipelined, batched command stream
        #: per device; the fan-out stage submits apply closures instead of
        #: blocking a worker per round-trip.  Started below, after the
        #: lock witness has had its chance to wrap the dispatcher's locks.
        self.links = None
        if self.config.device_links:
            from ..devices.links import LinkConfig, LinkDispatcher

            self.links = LinkDispatcher(
                metrics=self.obs.registry, journal=self.obs.journal
            )
            link_config = LinkConfig(
                window=self.config.link_window,
                batch=self.config.link_batch,
                queue_limit=self.config.link_queue_limit,
            )
            self.um.pipeline.attach_links(
                {
                    binding.name: self.links.register(
                        binding.filter.device, link_config
                    )
                    for binding in bindings
                }
            )
        if self.config.lane_depth_limit is not None:
            # Close the backpressure loop: saturated lanes surface at the
            # gateway as typed ServerBusy results, before any write.
            self.gateway.admission = self.um.admission_check

        # Device-link telemetry: every raw device write (fan-out, DDU,
        # sync push) feeds the health board's latency reservoir.
        for binding in bindings:
            device = binding.filter.device
            device.op_observer = self.obs.health.link_observer(binding.name)

        #: Declarative alert rules over this system's registry, evaluated
        #: on the auditor's clock (docs/OBSERVABILITY.md for the syntax).
        self.alerts = AlertEngine(
            self.obs.registry,
            journal=self.obs.journal,
            rules=default_rules(),
        )
        #: The background consistency auditor (not started by default).
        self.auditor = ConsistencyAuditor(
            self, interval=self.config.audit_interval
        )

        # Equality indexes on the hot lookup paths: entry location by
        # device key and the person-class searches of every fan-out.
        for attribute in ("definityExtension", "telephoneNumber", "objectClass"):
            self.server.backend.create_index(attribute)

        #: The runtime lock witness, when enabled — order-recording
        #: proxies over every subsystem lock, seeded with the static
        #: LX5xx acquisition graph (docs/CONCURRENCY.md).
        self.lock_witness = None
        if self.config.lock_witness:
            from ..obs.lockwitness import witness_system

            self.lock_witness = witness_system(self)

        if self.links is not None:
            # Started only now: the witness must wrap the dispatcher's
            # condition before its event loop starts waiting on it.
            self.links.start()

    # -- bootstrap ------------------------------------------------------------------

    def _bootstrap_tree(self, suffix: DN) -> None:
        self.server.backend.add(
            Entry(
                suffix,
                {"objectClass": ["top", "organization"], "o": suffix.rdn.value},
            )
        )
        for org in self.config.organizations:
            self.server.backend.add(
                Entry(
                    suffix.child(f"o={org}"),
                    {"objectClass": ["top", "organization"], "o": org},
                )
            )
        if self.config.people_container:
            container = DN.parse(self.config.people_container)
            if not self.server.backend.contains(container):
                self.server.backend.add(
                    Entry(
                        container,
                        {
                            "objectClass": ["top", "organizationalUnit"],
                            "ou": container.rdn.value,
                        },
                    )
                )

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Release background resources (auditor thread, coordinator
        thread, fan-out pool, link dispatcher)."""
        self.auditor.stop()
        self.um.close()
        if self.links is not None:
            # After the UM: coordinator lanes may still be draining work
            # through the links, and stop() fails any orphaned futures.
            self.links.stop()
        if self._lexpress_listener is not None:
            lexpress.rule_cache().unsubscribe(self._lexpress_listener)
            self._lexpress_listener = None

    def __enter__(self) -> "MetaComm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- handles -----------------------------------------------------------------------

    def connection(self) -> LdapConnection:
        """A fresh LDAP client connection *through the LTAP gateway* —
        what 'any LDAP tool' in the paper connects to."""
        return LdapConnection(self.gateway)

    def direct_connection(self) -> LdapConnection:
        """A connection straight to the server, bypassing LTAP (reads only
        if you want the system to stay consistent!)."""
        return LdapConnection(self.server)

    def pbx(self, name: str | None = None) -> DefinityPbx:
        if name is None:
            if len(self.pbxes) != 1:
                raise KeyError("several PBXes configured; name one")
            return next(iter(self.pbxes.values()))
        return self.pbxes[name]

    def terminal(self, pbx_name: str | None = None, login: str = "craft") -> OssiTerminal:
        """An OSSI craft terminal on one of the switches (the DDU path)."""
        return OssiTerminal(self.pbx(pbx_name), login=login)

    def find_person(self, filter_text: str) -> list[Entry]:
        return self.connection().search(self.suffix, filter=filter_text)

    # -- static analysis -------------------------------------------------------------

    def analysis_target(self):
        """This deployment as a lexcheck :class:`~repro.analysis.AnalysisTarget`:
        every compiled mapping, one instance binding per device (with its
        partition constraint), and the integrated schema's attributes."""
        from ..analysis import AnalysisTarget, InstanceBinding

        return AnalysisTarget(
            mappings=list(self.mappings.values()),
            instances=[
                InstanceBinding(b.name, b.from_ldap, b.partition)
                for b in self._bindings
            ],
            schema_attributes={
                "ldap": frozenset(self.schema.attribute_names())
            },
        )

    def analyze(self, strict: bool = False):
        """Run lexcheck over the live configuration.

        Returns an :class:`~repro.analysis.AnalysisReport`; with
        ``strict=True`` raises :class:`~repro.analysis.AnalysisError` on
        error findings, mirroring ``MetaCommConfig(strict_analysis=True)``."""
        from ..analysis import analyze, analyze_strict

        run = analyze_strict if strict else analyze
        return run(self.analysis_target(), registry=self.obs.registry)

    # -- observability ---------------------------------------------------------------

    def traces(self, name: str | None = None) -> list[Trace]:
        """Recent update traces (``name``: ``"update"`` or ``"ddu"``)."""
        return self.obs.tracer.traces(name)

    def last_trace(self, name: str | None = None) -> Trace | None:
        return self.obs.tracer.last(name)

    def metrics_text(self) -> str:
        """This system's metrics in Prometheus text exposition format."""
        return self.obs.prometheus()

    def metrics_json(self) -> str:
        """Metrics + trace ring buffer as a JSON document."""
        return self.obs.json()

    def consistent(self) -> bool:
        """Global consistency check: every device record matches the
        directory's materialized view, and vice versa (E1's oracle)."""
        return not self.inconsistencies()

    def inconsistencies(self) -> list[str]:
        """Human-readable list of device↔directory disagreements."""
        problems: list[str] = []
        for binding in self.um.bindings:
            problems.extend(self.binding_inconsistencies(binding))
        return problems

    def binding_inconsistencies(self, binding: DeviceBinding) -> list[str]:
        """One device binding's slice of :meth:`inconsistencies`.

        This is the consistency auditor's probe unit: sampling one binding
        per cycle keeps the audit low-rate while covering the whole
        deployment round-robin."""
        problems: list[str] = []
        key_attr = binding.to_ldap.key_target
        device_keys = set()
        for record in binding.filter.dump():
            image = binding.to_ldap.image(record) or {}
            ldap_key = binding.to_ldap.key_of(image)
            if ldap_key is None:
                continue
            device_keys.add(ldap_key.lower())
            entry = self.um.ldap_filter.locate(key_attr, ldap_key)
            if entry is None:
                problems.append(
                    f"{binding.name}: record {ldap_key} missing from directory"
                )
                continue
            for name, values in image.items():
                if name.lower() == "lastupdater":
                    continue  # bookkeeping, not user data
                have = entry.get(name)
                # The directory may carry extra values (e.g. an RDN
                # disambiguator on cn); the device's view must be a
                # subset of the directory's.
                if not set(values) <= set(have):
                    problems.append(
                        f"{binding.name}: {ldap_key}: {name} device={values} "
                        f"directory={have}"
                    )
        for entry in self.um.ldap_filter.person_entries():
            values = entry.get(key_attr) if key_attr else []
            if not values:
                continue
            if values[0].lower() not in device_keys:
                # Only a problem when the entry claims data this device
                # should hold (partition check).
                device_image = binding.from_ldap.image(
                    entry.attributes.to_dict()
                )
                in_partition = binding.partition is None or (
                    binding.partition.satisfied_by(device_image)
                )
                if in_partition and binding.from_ldap.partition.satisfied_by(
                    device_image
                ):
                    problems.append(
                        f"{binding.name}: directory entry {entry.dn} claims "
                        f"{key_attr}={values[0]} unknown to the device"
                    )
        return problems

    def monitor_snapshot(self) -> dict:
        """One consolidated health-plane view (the `monitor` CLI's data):
        queue staleness, device health, audit verdict, active alerts."""
        queue = self.um.queue
        report = self.auditor.last_report
        return {
            "queue": {
                "depth": len(queue),
                "oldest_age": queue.oldest_age(),
                "last_serial": queue.last_serial,
                "lanes": queue.lane_snapshot(),
            },
            "devices": self.obs.health.snapshot(),
            "links": self.links.snapshot() if self.links is not None else None,
            "audit": report.to_dict() if report is not None else None,
            "alerts": [alert.to_dict() for alert in self.alerts.active()],
            "journal_events": len(self.obs.journal),
        }
