"""The staged update-sequence pipeline of the Update Manager.

Section 4.4 describes one *serialized* update sequence: closure
enrichment, fan-out to every device repository, fold-back of
device-generated information, and a supplemental LDAP write ("update the
LDAP Server after all other devices are updated", section 5.5).  The seed
implemented that sequence as one monolithic method; this module breaks it
into explicit stages with first-class plan/outcome objects:

* **intake** — build the :class:`~repro.lexpress.descriptor.UpdateDescriptor`
  that enters the sequence, whether it originates at LTAP (an LDAP event)
  or at a device (a DDU being translated for forwarding).  Both paths
  funnel through here so they share instrumentation and semantics.
* **enrich** — run the transitive closure over the LDAP image.
* **plan** — translate the enriched descriptor for *every* device binding
  up front (partition routing, Originator/conditional marking) and capture
  each repository's before-image for saga compensation.  The result is an
  :class:`UpdatePlan` holding one :class:`DevicePlan` per affected device.
* **fanout** — apply the planned updates to the device repositories,
  either serially (the paper's discipline) or concurrently across devices
  (see below).
* **merge** — fold the closure-derived attributes and every device echo
  (defaults, truncations, generated ids) into one supplemental image.
  Attribute names are merged *case-insensitively* — LDAP attribute names
  are caseless, so a device echoing ``telephonenumber`` must land on the
  same canonical key as the closure's ``telephoneNumber``.
* **supplemental** — write the merged image back through the LDAP filter,
  re-entering the originating session's entry lock.

Why concurrent fan-out preserves the serialization discipline
-------------------------------------------------------------

The queue serializes *sequences*: at most one update sequence is in its
fanout stage at any time.  Within a sequence, each device binding receives
at most one translated update, and the device repositories are disjoint
(partitioned PBXes, the Messaging Platform) — so the per-repository
apply order seen by any single device is identical in serial and parallel
modes.  This is the same observation that lets multimaster replication
propagate to independent peers without quiescing: concurrency across
*non-conflicting* targets cannot reorder the per-target history.

Failure policies run *after* the fan-out barrier, replaying the device
outcomes in binding order — so error-log records, abort decisions and
saga-compensation order are byte-for-byte identical in both modes.  In
parallel mode a device that committed *after* the abort point (it could
not know a predecessor failed) is rolled back to its before-image,
restoring exactly the state serial mode would have left.  A barrier
before the supplemental write guarantees the section-5.5 ordering in both
modes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, TYPE_CHECKING

from ..ldap.backend import ChangeType
from ..ldap.dn import DN
from ..ldap.protocol import Session
from ..lexpress.closure import ClosureEngine
from ..lexpress.descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
)
from ..ltap.triggers import TriggerEvent
from ..obs.events import (
    DEVICE_ATTEMPT,
    DEVICE_COMMIT,
    DEVICE_FAILURE,
    DEVICE_ROLLBACK,
    SEQUENCE_ABORTED,
    SUPPLEMENTAL_WRITE,
    UPDATE_PLANNED,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Trace, trace_span
from .errorlog import ErrorLog
from .filters.base import ApplyResult, FilterError
from .filters.ldap_filter import LdapFilter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..devices.links import DeviceLink
    from .update_manager import DeviceBinding

__all__ = [
    "STAGES",
    "DeviceOutcome",
    "DevicePlan",
    "FailurePolicy",
    "SequenceOutcome",
    "StageResult",
    "UpdatePlan",
    "UpdateSequencePipeline",
    "merge_attrs",
]

#: The stages of one update sequence, in execution order.
STAGES = ("intake", "enrich", "plan", "fanout", "merge", "supplemental")

#: Span names per stage.  ``enrich`` and ``supplemental`` keep their
#: historical names so existing trace consumers stay valid.
STAGE_SPANS = {
    "intake": "stage.intake",
    "enrich": "closure.enrich",
    "plan": "stage.plan",
    "fanout": "stage.fanout",
    "merge": "stage.merge",
    "supplemental": "ldap.supplemental",
}


def merge_attrs(
    dest: dict[str, list[str]], src: Mapping[str, list[str]]
) -> dict[str, list[str]]:
    """Merge ``src`` into ``dest`` with case-insensitive attribute names.

    LDAP attribute names are caseless, but ``dict.update`` is not: a
    device echoing ``telephonenumber`` used to shadow or duplicate the
    closure's ``telephoneNumber``.  Each attribute keeps exactly one
    canonical key — the spelling already in ``dest`` wins, new attributes
    keep the spelling of their first appearance.  Returns ``dest``.
    """
    canonical = {name.lower(): name for name in dest}
    for name, values in src.items():
        existing = canonical.get(name.lower())
        if existing is None:
            dest[name] = list(values)
            canonical[name.lower()] = name
        else:
            dest[existing] = list(values)
    return dest


@dataclass(frozen=True)
class FailurePolicy:
    """What happens when a device rejects its planned update.

    ``abort_on_failure`` — stop the remaining sequence (section 4.4's
    shipped behaviour).  ``undo_on_failure`` — saga-style compensation of
    the device updates already applied (section 4.4's sketched future).
    Both act on the fan-out outcomes *in binding order*, so their effects
    are identical whether the fan-out ran serially or concurrently.
    """

    abort_on_failure: bool = True
    undo_on_failure: bool = False


@dataclass
class DevicePlan:
    """One device's share of an update sequence, computed up front."""

    index: int
    binding: "DeviceBinding"
    update: TargetUpdate
    #: The repository's pre-update image (saga compensation input).
    before: dict[str, list[str]] | None = None


@dataclass
class UpdatePlan:
    """Everything the fan-out stage needs, fixed before any device write."""

    descriptor: UpdateDescriptor
    enriched: UpdateDescriptor
    serial: int = 0
    #: Closure-derived LDAP image (the base of the supplemental write).
    base_supplement: dict[str, list[str]] = field(default_factory=dict)
    device_plans: list[DevicePlan] = field(default_factory=list)


@dataclass
class DeviceOutcome:
    """What one :class:`DevicePlan` produced at its repository."""

    plan: DevicePlan
    #: False when the plan was never attempted (sequence aborted first).
    executed: bool = False
    result: ApplyResult | None = None
    error: FilterError | None = None
    #: A non-FilterError escape (re-raised after the fan-out barrier).
    unexpected: Exception | None = None
    #: Device echo / generated attributes for the fold-back merge.
    supplement: dict[str, list[str]] = field(default_factory=dict)
    #: True when parallel mode undid a commit past the abort point.
    rolled_back: bool = False

    @property
    def applied(self) -> bool:
        return self.executed and self.error is None and self.unexpected is None


@dataclass
class StageResult:
    """Timing and headline facts of one executed stage."""

    stage: str
    duration: float
    info: dict = field(default_factory=dict)


@dataclass
class SequenceOutcome:
    """The full result of one update sequence through the pipeline."""

    plan: UpdatePlan
    outcomes: list[DeviceOutcome] = field(default_factory=list)
    aborted: bool = False
    #: Binding index of the failure that aborted the sequence.
    abort_index: int | None = None
    #: Device names compensated by the saga policy, in compensation order.
    compensated: list[str] = field(default_factory=list)
    #: Device names rolled back past the abort point (parallel mode only).
    rolled_back: list[str] = field(default_factory=list)
    supplement: dict[str, list[str]] = field(default_factory=dict)
    supplemental_written: bool = False
    stages: list[StageResult] = field(default_factory=list)

    def stage(self, name: str) -> StageResult | None:
        for result in self.stages:
            if result.stage == name:
                return result
        return None


class UpdateSequencePipeline:
    """Executes update sequences as explicit stages with a fan-out policy.

    ``fanout_workers`` selects the fan-out mode: ``1`` (the default)
    preserves the paper's serial device order exactly; ``>1`` applies the
    planned updates concurrently on a worker pool of that size.
    """

    def __init__(
        self,
        bindings: Iterable["DeviceBinding"],
        closure: ClosureEngine,
        ldap_filter: LdapFilter,
        error_log: ErrorLog,
        policy: FailurePolicy | None = None,
        registry: MetricsRegistry | None = None,
        fanout_workers: int = 1,
        compensate: Callable[[list, Trace | None], None] | None = None,
        journal=None,
        health=None,
    ):
        self.bindings = list(bindings)
        self.closure = closure
        self.ldap_filter = ldap_filter
        self.error_log = error_log
        self.policy = policy if policy is not None else FailurePolicy()
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Health-plane hooks (both optional): the event journal receives
        #: lifecycle events, the health board the per-device outcome feed.
        self.journal = journal
        self.health = health
        if fanout_workers < 1:
            raise ValueError("fanout_workers must be >= 1")
        self._fanout_workers = fanout_workers
        self._compensate = compensate
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: Event-driven device links by binding name (see
        #: :mod:`repro.devices.links`).  When attached, the fan-out stage
        #: dispatches apply closures onto the links instead of the worker
        #: pool: one dispatcher thread overlaps every device's round-trip
        #: and coalesces ops into pipelined command streams.
        self._links: dict[str, "DeviceLink"] = {}
        #: The outcome of the most recent sequence (diagnostic handle).
        self.last_outcome: SequenceOutcome | None = None

        self.fanout_total = self.registry.counter(
            "metacomm_um_fanout_total",
            "Translated updates applied to device repositories",
            labelnames=("device",),
        )
        self.reapplied_total = self.registry.counter(
            "metacomm_um_reapplied_total",
            "Conditional reapplications to an update's originating device "
            "(the section-5.4 write-write consistency technique)",
            labelnames=("device",),
        )
        self.aborted_total = self.registry.counter(
            "metacomm_um_aborted_sequences_total",
            "Update sequences aborted by a repository rejection",
            labelnames=("target",),
        )
        self.supplemental_total = self.registry.counter(
            "metacomm_um_supplemental_writes_total",
            "Supplemental LDAP writes (closure-derived and "
            "device-generated attributes folded back, section 5.5)",
        )
        self.rolled_back_total = self.registry.counter(
            "metacomm_um_rolled_back_total",
            "Parallel-mode rollbacks of device commits past an abort point",
            labelnames=("device",),
        )
        self.stage_seconds = self.registry.histogram(
            "metacomm_um_stage_seconds",
            "Duration of one pipeline stage of an update sequence",
            labelnames=("stage",),
        )
        self.parallelism = self.registry.gauge(
            "metacomm_um_fanout_parallelism",
            "Device applies currently in flight in the fan-out stage",
        )

    # -- configuration -----------------------------------------------------------

    @property
    def fanout_workers(self) -> int:
        # Single-int snapshot under the GIL; the setter swaps it under
        # _pool_lock and _executor() re-reads it there before building.
        return self._fanout_workers  # lexcheck: ignore[LX503]

    @fanout_workers.setter
    def fanout_workers(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("fanout_workers must be >= 1")
        # Swap the pool reference under the lock, but drain it outside:
        # shutdown(wait=True) blocks until in-flight applies finish, and
        # those worker threads must not find the lock held (LX502).
        stale = None
        with self._pool_lock:
            if workers != self._fanout_workers and self._pool is not None:
                stale = self._pool
                self._pool = None
            self._fanout_workers = workers
        if stale is not None:
            stale.shutdown(wait=True)

    @property
    def parallel(self) -> bool:
        return self._fanout_workers > 1

    @property
    def links_enabled(self) -> bool:
        return bool(self._links)

    def attach_links(self, links: Mapping[str, "DeviceLink"]) -> None:
        """Route fan-out through event-driven device links.

        ``links`` maps binding names to their :class:`DeviceLink`; bindings
        without a link fall back to an inline (blocking) apply."""
        self._links = dict(links)

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._fanout_workers,
                    thread_name_prefix="metacomm-fanout",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the fan-out worker pool (idempotent)."""
        # Same discipline as the fanout_workers setter: detach under the
        # lock, block on the drain after releasing it.
        stale = None
        with self._pool_lock:
            stale = self._pool
            self._pool = None
        if stale is not None:
            stale.shutdown(wait=True)

    # -- stage bookkeeping --------------------------------------------------------

    @contextmanager
    def _stage(
        self,
        stage: str,
        trace: Trace | None,
        stages: list[StageResult] | None = None,
        **attributes,
    ):
        info: dict = {}
        start = time.perf_counter()
        try:
            with trace_span(trace, STAGE_SPANS[stage], **attributes) as span:
                yield span, info
        finally:
            duration = time.perf_counter() - start
            self.stage_seconds.labels(stage=stage).observe(duration)
            if stages is not None:
                stages.append(StageResult(stage, duration, info))

    # -- intake ------------------------------------------------------------------

    def intake_event(
        self, event: TriggerEvent, trace: Trace | None
    ) -> UpdateDescriptor | None:
        """Build the descriptor for an LDAP-originated update (LTAP event)."""
        with self._stage("intake", trace, origin="ldap-event"):
            return _descriptor_from_event(event)

    def intake_ddu(
        self,
        binding: "DeviceBinding",
        descriptor: UpdateDescriptor,
        trace: Trace | None,
    ) -> TargetUpdate | None:
        """Translate a direct device update for forwarding through LTAP.

        Returns ``None`` when the mapping deems the DDU irrelevant.  The
        translated update re-enters the pipeline as an LDAP event once
        LTAP has obtained the proper locks (section 4.4) — so both intake
        paths converge on :meth:`intake_event`.
        """
        with self._stage("intake", trace, origin="ddu"):
            with trace_span(trace, "ddu.translate", device=binding.name):
                update = binding.to_ldap.translate(descriptor)
        if update is None or update.action is TargetAction.SKIP:
            return None
        return update

    # -- enrich + plan ------------------------------------------------------------

    def build_plan(
        self,
        descriptor: UpdateDescriptor,
        trace: Trace | None = None,
        serial: int = 0,
        stages: list[StageResult] | None = None,
    ) -> UpdatePlan:
        """Run the enrich and plan stages for one descriptor."""
        if descriptor.op is UpdateOp.DELETE:
            enriched = descriptor
        else:
            with self._stage("enrich", trace, stages):
                enriched = self._enrich(descriptor)
        plan = UpdatePlan(
            descriptor=descriptor,
            enriched=enriched,
            serial=serial,
            base_supplement=merge_attrs({}, enriched.new or {})
            if descriptor.op is not UpdateOp.DELETE
            else {},
        )
        with self._stage("plan", trace, stages) as (span, info):
            for index, binding in enumerate(self.bindings):
                device_plan = self.plan_device_update(binding, enriched, index)
                if device_plan is not None:
                    plan.device_plans.append(device_plan)
            info["devices"] = len(plan.device_plans)
            if span is not None:
                span.attributes["devices"] = len(plan.device_plans)
        if self.journal is not None:
            self.journal.emit(
                UPDATE_PLANNED,
                trace=trace,
                serial=serial,
                op=descriptor.op.value,
                key=descriptor.key,
                devices=[p.binding.name for p in plan.device_plans],
            )
        return plan

    def plan_device_update(
        self,
        binding: "DeviceBinding",
        descriptor: UpdateDescriptor,
        index: int = 0,
    ) -> DevicePlan | None:
        """Translate + partition-route one descriptor for one binding and
        capture the repository's before-image.  Returns ``None`` when the
        binding is not affected (irrelevant mapping or partition miss)."""
        update = binding.from_ldap.translate(
            descriptor,
            extra_partition=binding.partition,
            target_name=binding.name,
        )
        if update is None or update.action is TargetAction.SKIP:
            return None
        return DevicePlan(
            index=index,
            binding=binding,
            update=update,
            before=binding.filter.before_image(update),
        )

    def _enrich(self, descriptor: UpdateDescriptor) -> UpdateDescriptor:
        """Run the transitive closure; return a descriptor whose new image
        includes all derived LDAP attributes."""
        result = self.closure.propagate(
            "ldap",
            descriptor.new or {},
            changed=descriptor.changed_attributes(),
            explicit=descriptor.explicit,
        )
        merged = dict(descriptor.new or {})
        have = {n.lower() for n in merged}
        for name, values in result.image("ldap").items():
            if name.lower() not in have:
                merged[name] = values
        return replace(descriptor, new=merged)

    # -- the full sequence ---------------------------------------------------------

    def run(
        self,
        descriptor: UpdateDescriptor,
        session: Session | None,
        trace: Trace | None = None,
        serial: int = 0,
    ) -> SequenceOutcome:
        """Execute one update sequence: enrich → plan → fanout → merge →
        supplemental.  Failure policies are applied inside the fan-out
        stage; the merge and supplemental stages are skipped for aborted
        sequences and DELETE descriptors (matching section 4.4/5.5)."""
        stages: list[StageResult] = []
        plan = self.build_plan(descriptor, trace, serial=serial, stages=stages)
        outcome = SequenceOutcome(plan=plan, stages=stages)
        self.last_outcome = outcome

        if self._links:
            mode = "links"
        elif self.parallel:
            mode = "parallel"
        else:
            mode = "serial"
        with self._stage(
            "fanout",
            trace,
            stages,
            mode=mode,
            devices=len(plan.device_plans),
        ):
            if self._links and plan.device_plans:
                outcomes = self._fanout_links(
                    plan.device_plans, trace, serial
                )
            elif self.parallel and len(plan.device_plans) > 1:
                outcomes = self._fanout_parallel(
                    plan.device_plans, trace, serial
                )
            else:
                outcomes = self._fanout_serial(
                    plan.device_plans, trace, serial
                )
            outcome.outcomes = outcomes
            self._raise_unexpected(outcomes)
            self._apply_failure_policy(outcome, trace)
            if outcome.aborted:
                self._rollback_past_abort(outcome, trace)
            self._count_applied(outcome)

        if outcome.aborted:
            return outcome

        with self._stage("merge", trace, stages) as (_span, info):
            supplement = merge_attrs({}, plan.base_supplement)
            for device_outcome in outcome.outcomes:
                if device_outcome.applied:
                    merge_attrs(supplement, device_outcome.supplement)
            outcome.supplement = supplement
            info["attributes"] = len(supplement)

        if supplement and descriptor.op is not UpdateOp.DELETE:
            dn = DN.parse(descriptor.key) if descriptor.key else None
            if dn is not None:
                with self._stage("supplemental", trace, stages) as (span, info):
                    wrote = self.ldap_filter.apply_supplemental(
                        dn, supplement, session
                    )
                    if span is not None:
                        span.attributes["wrote"] = wrote
                    info["wrote"] = wrote
                if wrote:
                    self.supplemental_total.inc()
                    outcome.supplemental_written = True
                    if self.journal is not None:
                        self.journal.emit(
                            SUPPLEMENTAL_WRITE,
                            trace=trace,
                            serial=serial,
                            key=descriptor.key,
                            attributes_written=len(supplement),
                        )
        return outcome

    # -- fan-out executors ---------------------------------------------------------

    def _fanout_serial(
        self, plans: list[DevicePlan], trace: Trace | None, serial: int = 0
    ) -> list[DeviceOutcome]:
        """The paper's discipline: one device at a time, in binding order,
        stopping at the first failure when the policy says abort."""
        outcomes = [DeviceOutcome(plan=plan) for plan in plans]
        for i, plan in enumerate(plans):
            outcomes[i] = self._apply_one(plan, trace, serial)
            if outcomes[i].unexpected is not None:
                raise outcomes[i].unexpected
            if outcomes[i].error is not None and self.policy.abort_on_failure:
                break
        return outcomes

    def _fanout_parallel(
        self, plans: list[DevicePlan], trace: Trace | None, serial: int = 0
    ) -> list[DeviceOutcome]:
        """Concurrent fan-out: every plan is applied on the worker pool and
        the stage joins all of them (the barrier) before any policy runs.
        Optimistic with respect to failures — a commit past an abort point
        is undone afterwards by :meth:`_rollback_past_abort`."""
        pool = self._executor()
        futures = [
            pool.submit(self._apply_one, plan, trace, serial)
            for plan in plans
        ]
        return [future.result() for future in futures]

    def _fanout_links(
        self, plans: list[DevicePlan], trace: Trace | None, serial: int = 0
    ) -> list[DeviceOutcome]:
        """Event-driven fan-out: each plan's apply closure is queued on its
        device link, where the dispatcher coalesces it with other
        sequences' ops for the same device into one pipelined command
        stream.  The barrier (awaiting every future) still runs before any
        failure policy, so the policy replay — and therefore error-log and
        saga-compensation order — is identical to the serial path."""
        submitted: list[tuple[DevicePlan, object | None]] = []
        for plan in plans:
            link = self._links.get(plan.binding.name)
            if link is None:
                submitted.append((plan, None))
                continue
            future = link.submit(
                lambda p=plan: self._apply_one(p, trace, serial),
                op=plan.update.action.value,
                key=str(plan.update.key),
            )
            submitted.append((plan, future))
        outcomes: list[DeviceOutcome] = []
        for plan, future in submitted:
            if future is None:
                outcomes.append(self._apply_one(plan, trace, serial))
            else:
                outcomes.append(future.result())
        return outcomes

    def _apply_one(
        self, plan: DevicePlan, trace: Trace | None, serial: int = 0
    ) -> DeviceOutcome:
        """Apply one planned update at its repository (worker body).

        Also the health plane's **outcome feed**: every attempt emits a
        ``device.attempt`` then a ``device.commit``/``device.failure``
        journal event, and the timed outcome lands on the health board
        (which owns the error window, streak and derived state)."""
        outcome = DeviceOutcome(plan=plan, executed=True)
        binding, update = plan.binding, plan.update
        if self.journal is not None:
            self.journal.emit(
                DEVICE_ATTEMPT,
                trace=trace,
                serial=serial,
                device=binding.name,
                action=update.action.value,
                key=update.key,
                conditional=update.conditional,
            )
        started = time.perf_counter()
        with self.parallelism.track():
            with trace_span(
                trace,
                "filter.apply",
                device=binding.name,
                conditional=update.conditional,
            ) as span:
                try:
                    result = binding.filter.apply(update)
                except FilterError as exc:
                    if span is not None:
                        span.attributes["error"] = exc.message
                    outcome.error = exc
                    self._note_outcome(outcome, trace, serial, started)
                    return outcome
                except Exception as exc:  # re-raised after the barrier
                    outcome.unexpected = exc
                    self._note_outcome(outcome, trace, serial, started)
                    return outcome
            outcome.result = result
            self._note_outcome(outcome, trace, serial, started)
            if update.key is not None and (
                update.action is TargetAction.ADD or result.recovered
            ):
                # A record was (re)created at the device: echo its full
                # view — defaults, truncations, generated ids — back to
                # the directory so both sides agree (section 5.5).
                outcome.supplement = self._echo_supplement(binding, update.key)
            elif result.generated and update.key is not None:
                outcome.supplement = self._generated_supplement(
                    binding, update.key, result.generated
                )
            return outcome

    def _note_outcome(
        self,
        outcome: DeviceOutcome,
        trace: Trace | None,
        serial: int,
        started: float,
    ) -> None:
        """Publish one apply outcome to the journal and the health board."""
        elapsed = time.perf_counter() - started
        name = outcome.plan.binding.name
        ok = outcome.applied
        if self.journal is not None:
            if ok:
                self.journal.emit(
                    DEVICE_COMMIT,
                    trace=trace,
                    serial=serial,
                    device=name,
                    key=outcome.plan.update.key,
                    duration=round(elapsed, 6),
                )
            else:
                error = outcome.error
                message = (
                    error.message
                    if error is not None
                    else str(outcome.unexpected)
                )
                self.journal.emit(
                    DEVICE_FAILURE,
                    trace=trace,
                    serial=serial,
                    device=name,
                    key=outcome.plan.update.key,
                    error=message,
                    duration=round(elapsed, 6),
                )
        if self.health is not None:
            self.health.record_outcome(name, elapsed, ok)
            if ok and serial:
                self.health.note_applied(name, serial)

    def _count_applied(self, outcome: SequenceOutcome) -> None:
        """Account the fan-out counters once the sequence's fate is known.

        Counting after the policy pass (instead of inside the workers)
        keeps the totals identical in serial and parallel modes: a
        speculative commit that was rolled back past an abort point never
        counts as fanned out — it shows up in ``rolled_back_total``."""
        for device_outcome in outcome.outcomes:
            if not device_outcome.applied or device_outcome.rolled_back:
                continue
            name = device_outcome.plan.binding.name
            self.fanout_total.labels(device=name).inc()
            if device_outcome.plan.update.conditional:
                self.reapplied_total.labels(device=name).inc()

    def _raise_unexpected(self, outcomes: list[DeviceOutcome]) -> None:
        for outcome in outcomes:
            if outcome.unexpected is not None:
                raise outcome.unexpected

    # -- failure policies ----------------------------------------------------------

    def _apply_failure_policy(
        self, outcome: SequenceOutcome, trace: Trace | None
    ) -> None:
        """Replay the fan-out outcomes in binding order, producing exactly
        the error-log records, abort decision and saga compensations that
        serial execution interleaves with its applies.  Deterministic by
        construction: the replay order is the binding order, regardless of
        the order in which concurrent applies actually finished."""
        applied: list[tuple] = []
        for device_outcome in outcome.outcomes:
            if not device_outcome.executed:
                continue
            plan = device_outcome.plan
            if device_outcome.error is None:
                applied.append((plan.binding, plan.update, plan.before))
                continue
            exc = device_outcome.error
            self.aborted_total.labels(target=plan.binding.name).inc()
            self.error_log.record(
                target=plan.binding.name,
                message=exc.message,
                context=(
                    f"update serial={outcome.plan.serial} key={plan.update.key}"
                ),
            )
            if self.policy.undo_on_failure:
                outcome.compensated.extend(
                    binding.name for binding, _, _ in reversed(applied)
                )
                if self._compensate is not None:
                    self._compensate(applied, trace)
            if self.policy.abort_on_failure:
                outcome.aborted = True
                outcome.abort_index = plan.index
                if self.journal is not None:
                    self.journal.emit(
                        SEQUENCE_ABORTED,
                        trace=trace,
                        serial=outcome.plan.serial,
                        device=plan.binding.name,
                        error=exc.message,
                    )
                break

    def _rollback_past_abort(
        self, outcome: SequenceOutcome, trace: Trace | None
    ) -> None:
        """Undo commits past the abort point (parallel mode only).

        In serial mode a device past the failure is simply never reached;
        a concurrent worker may already have committed before the policy
        replay discovered the abort.  Restoring those repositories to
        their before-images re-establishes the serial post-abort state.
        Distinct from saga compensation: this is a parallelism artifact,
        counted separately and applied in reverse binding order."""
        if outcome.abort_index is None:
            return
        late = [
            device_outcome
            for device_outcome in outcome.outcomes
            if device_outcome.applied
            and device_outcome.plan.index > outcome.abort_index
        ]
        for device_outcome in reversed(late):
            plan = device_outcome.plan
            try:
                with trace_span(trace, "filter.rollback", device=plan.binding.name):
                    plan.binding.filter.compensate(plan.update, plan.before)
                device_outcome.rolled_back = True
                outcome.rolled_back.append(plan.binding.name)
                self.rolled_back_total.labels(device=plan.binding.name).inc()
                if self.journal is not None:
                    self.journal.emit(
                        DEVICE_ROLLBACK,
                        trace=trace,
                        serial=outcome.plan.serial,
                        device=plan.binding.name,
                        key=plan.update.key,
                    )
            except Exception as exc:  # rollback is best-effort
                self.error_log.record(
                    target=plan.binding.name,
                    message=f"rollback failed: {exc}",
                    context=(
                        f"undo of {plan.update.action.value} "
                        f"key={plan.update.key} past abort point"
                    ),
                )

    # -- fold-back supplements -------------------------------------------------------

    def _echo_supplement(
        self, binding: "DeviceBinding", key: str
    ) -> dict[str, list[str]]:
        """The device's committed view of a freshly created record, mapped
        back into LDAP attributes (excluding the Originator stamp, which
        must reflect who really made the update)."""
        record = binding.filter.fetch(key)
        if record is None:
            return {}
        image = binding.to_ldap.image(record) or {}
        return {
            name: values
            for name, values in image.items()
            if name.lower() != "lastupdater"
        }

    def _generated_supplement(
        self,
        binding: "DeviceBinding",
        key: str,
        generated: dict[str, list[str]],
    ) -> dict[str, list[str]]:
        """Fold device-generated information back toward LDAP (section 5.5).

        Only attributes that *derive from* the generated fields are folded
        back: the full committed record is mapped once with and once
        without those fields, and the difference is the supplement."""
        record = binding.filter.fetch(key)
        if record is None:
            return {}
        without = {
            name: values
            for name, values in record.items()
            if name.lower() not in {g.lower() for g in generated}
        }
        image_full = binding.to_ldap.image(record) or {}
        image_without = binding.to_ldap.image(without) or {}
        out: dict[str, list[str]] = {}
        for name, values in image_full.items():
            if image_without.get(name) != values:
                out[name] = values
        return out


def _descriptor_from_event(event: TriggerEvent) -> UpdateDescriptor | None:
    """The LDAP-event half of intake: one trigger event → one descriptor."""
    origin = str(event.session.state.get("metacomm.origin", "ldap"))
    before = event.before.attributes.to_dict() if event.before else None
    after = event.after.attributes.to_dict() if event.after else None
    if event.change_type is ChangeType.ADD:
        op = UpdateOp.ADD
    elif event.change_type is ChangeType.DELETE:
        op = UpdateOp.DELETE
    else:
        op = UpdateOp.MODIFY
        if before is None or after is None:
            return None
    key = str(event.after.dn if event.after is not None else event.dn)
    explicit: set[str] = set()
    if before is not None and after is not None:
        names = {n.lower() for n in before} | {n.lower() for n in after}
        for name in names:
            if _get(before, name) != _get(after, name):
                explicit.add(name)
    elif after is not None:
        explicit = {n.lower() for n in after}
    # Stamp the update's source so the Originator machinery (section
    # 5.4) sees who really made this change, not a stale value.
    if after is not None:
        after = dict(after)
        for name in list(after):
            if name.lower() == "lastupdater":
                del after[name]
        after["lastUpdater"] = [origin]
    return UpdateDescriptor(
        op=op,
        source="ldap",
        key=key,
        old=before,
        new=after,
        explicit=frozenset(explicit),
        origin=origin,
    )


def _get(attrs: dict[str, list[str]] | None, name: str) -> list[str]:
    if not attrs:
        return []
    for key, values in attrs.items():
        if key.lower() == name:
            return list(values)
    return []
