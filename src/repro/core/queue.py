"""The Update Manager's global update queue.

Paper section 4.4: "the LDAP filter ... creates a lexpress update
descriptor for the update that is then added to a global queue in the UM.
The main thread of the UM, the coordinator, iterates through the global
update queue" and "The queue maintained by the UM enforces a serialization
order."

The queue is a plain FIFO with a serial number per item — the serial *is*
the system-wide serialization order that makes the reapplication technique
converge.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from ..lexpress.descriptor import UpdateDescriptor


@dataclass(frozen=True)
class QueuedUpdate:
    """One queue item: a descriptor stamped with its serialization order."""

    serial: int
    descriptor: UpdateDescriptor


class GlobalUpdateQueue:
    """FIFO of update descriptors with a global serialization order."""

    def __init__(self) -> None:
        self._items: list[QueuedUpdate] = []
        self._serials = itertools.count(1)
        self._lock = threading.Lock()
        self.statistics = {"enqueued": 0, "processed": 0}

    def enqueue(self, descriptor: UpdateDescriptor) -> QueuedUpdate:
        item = QueuedUpdate(next(self._serials), descriptor)
        with self._lock:
            self._items.append(item)
            self.statistics["enqueued"] += 1
        return item

    def dequeue(self) -> QueuedUpdate | None:
        with self._lock:
            if not self._items:
                return None
            item = self._items.pop(0)
            self.statistics["processed"] += 1
            return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_serial(self) -> int | None:
        with self._lock:
            return self._items[0].serial if self._items else None
