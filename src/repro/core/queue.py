"""The Update Manager's global update queue.

Paper section 4.4: "the LDAP filter ... creates a lexpress update
descriptor for the update that is then added to a global queue in the UM.
The main thread of the UM, the coordinator, iterates through the global
update queue" and "The queue maintained by the UM enforces a serialization
order."

The queue is a plain FIFO with a serial number per item — the serial *is*
the system-wide serialization order that makes the reapplication technique
converge.  Items are stamped with their enqueue time so the dequeue path
can feed the enqueue→dequeue latency histogram (queue lag is the paper's
"converge after some delay", made measurable), and the consistency auditor
publishes how long the oldest unclaimed item has waited
(``metacomm_queue_oldest_age_seconds`` — the staleness-window gauge the
no-quiesce sync work will report through).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..lexpress.descriptor import UpdateDescriptor
from ..obs.events import UPDATE_ACCEPTED, UPDATE_CLAIMED
from ..obs.metrics import MetricsRegistry
from ..obs.views import StatsView


@dataclass(frozen=True)
class QueuedUpdate:
    """One queue item: a descriptor stamped with its serialization order."""

    serial: int
    descriptor: UpdateDescriptor
    #: ``time.perf_counter()`` at enqueue (0.0 for hand-built items).
    enqueued_at: float = field(default=0.0, compare=False)


class GlobalUpdateQueue:
    """FIFO of update descriptors with a global serialization order."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        journal=None,
    ) -> None:
        self._items: deque[QueuedUpdate] = deque()
        self._serials = itertools.count(1)
        self._last_serial = 0
        self._lock = threading.Lock()
        self.journal = journal
        registry = registry if registry is not None else MetricsRegistry()
        self._enqueued = registry.counter(
            "metacomm_queue_enqueued_total",
            "Update descriptors appended to the global queue",
        )
        self._processed = registry.counter(
            "metacomm_queue_processed_total",
            "Update descriptors removed from the global queue",
        )
        self._depth = registry.gauge(
            "metacomm_queue_depth",
            "Update descriptors currently waiting in the global queue",
        )
        self._oldest_age = registry.gauge(
            "metacomm_queue_oldest_age_seconds",
            "How long the oldest unclaimed update has waited "
            "(refreshed on queue transitions and each audit cycle)",
        )
        self._wait = registry.histogram(
            "metacomm_queue_wait_seconds",
            "Enqueue-to-dequeue latency of the global queue",
        )
        self.statistics = StatsView(
            {
                "enqueued": lambda: self._enqueued.value,
                "processed": lambda: self._processed.value,
            }
        )

    def _emit(self, kind: str, item: QueuedUpdate, trace) -> None:
        if self.journal is None:
            return
        descriptor = item.descriptor
        op = getattr(descriptor, "op", None)
        self.journal.emit(
            kind,
            trace=trace,
            serial=item.serial,
            op=getattr(op, "value", op),
            key=getattr(descriptor, "key", None),
        )

    def enqueue(
        self, descriptor: UpdateDescriptor, trace=None
    ) -> QueuedUpdate:
        item = QueuedUpdate(
            next(self._serials), descriptor, time.perf_counter()
        )
        with self._lock:
            self._items.append(item)
            self._last_serial = item.serial
            self._enqueued.inc()
            self._depth.set(len(self._items))
        self.refresh_staleness()
        self._emit(UPDATE_ACCEPTED, item, trace)
        return item

    def claim(
        self, descriptor: UpdateDescriptor, trace=None
    ) -> QueuedUpdate:
        """Atomically enqueue-and-dequeue one descriptor for its caller.

        The threaded coordinator hand-off needs the serialization order
        *and* a guarantee that the caller processes its own descriptor —
        a separate ``enqueue()``/``dequeue()`` pair lets two interleaved
        sessions swap items, pairing a job with the wrong entry lock.
        ``claim`` assigns the serial and accounts the item as enqueued and
        processed in one critical section; the item is never visible to
        any other dequeuer."""
        now = time.perf_counter()
        with self._lock:
            item = QueuedUpdate(next(self._serials), descriptor, now)
            self._last_serial = item.serial
            self._enqueued.inc()
            self._processed.inc()
        self._wait.observe(time.perf_counter() - now)
        self._emit(UPDATE_ACCEPTED, item, trace)
        self._emit(UPDATE_CLAIMED, item, trace)
        return item

    def dequeue(self, trace=None) -> QueuedUpdate | None:
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._processed.inc()
            self._depth.set(len(self._items))
        if item.enqueued_at:
            self._wait.observe(time.perf_counter() - item.enqueued_at)
        self.refresh_staleness()
        self._emit(UPDATE_CLAIMED, item, trace)
        return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_serial(self) -> int | None:
        with self._lock:
            return self._items[0].serial if self._items else None

    @property
    def last_serial(self) -> int:
        """The highest serial issued so far (the serialization head)."""
        with self._lock:
            return self._last_serial

    def oldest_age(self) -> float:
        """Seconds the oldest unclaimed update has waited (0.0 if empty)."""
        with self._lock:
            if not self._items or not self._items[0].enqueued_at:
                return 0.0
            return time.perf_counter() - self._items[0].enqueued_at

    def refresh_staleness(self) -> float:
        """Recompute and publish the oldest-age gauge; returns the age.

        Age is a function of *now*, so unlike depth it cannot be kept
        current purely on queue transitions — the auditor calls this each
        cycle (and tests call it directly)."""
        age = self.oldest_age()
        self._oldest_age.set(age)
        return age
