"""The Update Manager's update queues: global (paper-serial) and sharded.

Paper section 4.4: "the LDAP filter ... creates a lexpress update
descriptor for the update that is then added to a global queue in the UM.
The main thread of the UM, the coordinator, iterates through the global
update queue" and "The queue maintained by the UM enforces a serialization
order."

:class:`GlobalUpdateQueue` is that paper queue: a plain FIFO with a serial
number per item — the serial *is* the system-wide serialization order that
makes the reapplication technique converge.  Items are stamped with their
enqueue time so the dequeue path can feed the enqueue→dequeue latency
histogram, and the consistency auditor publishes how long the oldest
unclaimed item has waited (``metacomm_queue_oldest_age_seconds``).

:class:`ShardedUpdateQueue` relaxes the single FIFO into N lanes plus one
serial lane, *without giving up the serial numbers*: every claim still
draws from one global counter, so the system-wide serialization order is
preserved — lanes merely allow items the routing oracle
(:mod:`repro.analysis.routing`) proved commuting to drain concurrently.
Items the oracle cannot prove disjoint land on the serial lane, which
drains under a barrier: a serial item runs only once every lane has
quiesced past its serial, and lane items enqueued after it wait for it to
finish.  See docs/CONCURRENCY.md for the protocol and its correctness
argument.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from zlib import crc32

from ..lexpress.descriptor import UpdateDescriptor
from ..obs.events import (
    LANE_BARRIER,
    UPDATE_ACCEPTED,
    UPDATE_CLAIMED,
    UPDATE_DEFERRED,
    UPDATE_REJECTED,
)
from ..obs.metrics import MetricsRegistry
from ..obs.views import StatsView

#: Label of the fallback lane everything unprovable serializes onto.
SERIAL_LANE = "serial"


class QueueSaturatedError(RuntimeError):
    """A lane is at its depth limit and the admission policy gave up.

    The bottom-up backpressure signal of the event-driven link layer:
    LTAP's admission hook converts it into a typed ``ServerBusy`` LDAP
    result *before* the directory write, so a rejected update leaves no
    trace to lose or compensate."""

    def __init__(self, lane: str, depth: int, limit: int):
        super().__init__(
            f"coordinator lane {lane!r} at depth {depth} (limit {limit})"
        )
        self.lane = lane
        self.depth = depth
        self.limit = limit


@dataclass(frozen=True)
class QueuedUpdate:
    """One queue item: a descriptor stamped with its serialization order."""

    serial: int
    descriptor: UpdateDescriptor
    #: ``time.perf_counter()`` at enqueue (0.0 for hand-built items).
    enqueued_at: float = field(default=0.0, compare=False)
    #: Lane label assigned by the routing oracle (None on the global queue).
    lane: str | None = field(default=None, compare=False)
    #: The oracle's reason: "partition" or one of the serial fallbacks.
    reason: str | None = field(default=None, compare=False)


class GlobalUpdateQueue:
    """FIFO of update descriptors with a global serialization order."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        journal=None,
    ) -> None:
        self._items: deque[QueuedUpdate] = deque()
        self._serials = itertools.count(1)
        self._last_serial = 0
        self._lock = threading.Lock()
        self.journal = journal
        registry = registry if registry is not None else MetricsRegistry()
        self._enqueued = registry.counter(
            "metacomm_queue_enqueued_total",
            "Update descriptors appended to the global queue",
        )
        self._processed = registry.counter(
            "metacomm_queue_processed_total",
            "Update descriptors removed from the global queue",
        )
        self._depth = registry.gauge(
            "metacomm_queue_depth",
            "Update descriptors currently waiting in the global queue",
        )
        self._oldest_age = registry.gauge(
            "metacomm_queue_oldest_age_seconds",
            "How long the oldest unclaimed update has waited "
            "(refreshed on queue transitions and each audit cycle)",
        )
        self._wait = registry.histogram(
            "metacomm_queue_wait_seconds",
            "Enqueue-to-dequeue latency of the global queue",
        )
        self.statistics = StatsView(
            {
                "enqueued": lambda: self._enqueued.value,
                "processed": lambda: self._processed.value,
            }
        )

    def _emit(self, kind: str, item: QueuedUpdate, trace) -> None:
        if self.journal is None:
            return
        descriptor = item.descriptor
        op = getattr(descriptor, "op", None)
        self.journal.emit(
            kind,
            trace=trace,
            serial=item.serial,
            op=getattr(op, "value", op),
            key=getattr(descriptor, "key", None),
        )

    def _complete(self, item: QueuedUpdate, trace) -> None:
        """The shared leaving-the-queue path of ``claim`` and ``dequeue``:
        one place observes the wait histogram and emits ``update.claimed``,
        so journal/metric emission cannot drift between the two."""
        if item.enqueued_at:
            self._wait.observe(time.perf_counter() - item.enqueued_at)
        self._emit(UPDATE_CLAIMED, item, trace)

    def enqueue(
        self, descriptor: UpdateDescriptor, trace=None
    ) -> QueuedUpdate:
        item = QueuedUpdate(
            next(self._serials), descriptor, time.perf_counter()
        )
        with self._lock:
            self._items.append(item)
            self._last_serial = item.serial
            self._enqueued.inc()
            self._depth.set(len(self._items))
        self.refresh_staleness()
        self._emit(UPDATE_ACCEPTED, item, trace)
        return item

    def claim(
        self, descriptor: UpdateDescriptor, trace=None
    ) -> QueuedUpdate:
        """Atomically enqueue-and-dequeue one descriptor for its caller.

        The threaded coordinator hand-off needs the serialization order
        *and* a guarantee that the caller processes its own descriptor —
        a separate ``enqueue()``/``dequeue()`` pair lets two interleaved
        sessions swap items, pairing a job with the wrong entry lock.
        ``claim`` assigns the serial and accounts the item as enqueued and
        processed in one critical section; the item is never visible to
        any other dequeuer."""
        now = time.perf_counter()
        with self._lock:
            item = QueuedUpdate(next(self._serials), descriptor, now)
            self._last_serial = item.serial
            self._enqueued.inc()
            self._processed.inc()
        self._emit(UPDATE_ACCEPTED, item, trace)
        self._complete(item, trace)
        return item

    def dequeue(self, trace=None) -> QueuedUpdate | None:
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._processed.inc()
            self._depth.set(len(self._items))
        self.refresh_staleness()
        self._complete(item, trace)
        return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_serial(self) -> int | None:
        with self._lock:
            return self._items[0].serial if self._items else None

    @property
    def last_serial(self) -> int:
        """The highest serial issued so far (the serialization head)."""
        with self._lock:
            return self._last_serial

    def oldest_age(self) -> float:
        """Seconds the oldest unclaimed update has waited (0.0 if empty)."""
        with self._lock:
            if not self._items or not self._items[0].enqueued_at:
                return 0.0
            return time.perf_counter() - self._items[0].enqueued_at

    def refresh_staleness(self) -> float:
        """Recompute and publish the oldest-age gauge; returns the age.

        Age is a function of *now*, so unlike depth it cannot be kept
        current purely on queue transitions — the auditor calls this each
        cycle (and tests call it directly)."""
        age = self.oldest_age()
        self._oldest_age.set(age)
        return age

    def lane_snapshot(self) -> list[dict]:
        """The single FIFO viewed as one pseudo-lane, so monitoring code
        renders identically against either queue class."""
        return [
            {
                "lane": "0",
                "depth": len(self),
                "oldest_age": self.oldest_age(),
                "last_serial": self.last_serial,
            }
        ]

    def admit(
        self,
        descriptor: UpdateDescriptor,
        rename: bool = False,
        timeout: float | None = None,
        trace=None,
    ) -> str:
        """Admission is a no-op on the paper-serial queue.

        Interface parity with :meth:`ShardedUpdateQueue.admit`.  The
        single FIFO is naturally bounded by client concurrency: every
        producer either drains its own sequence synchronously or blocks
        on the coordinator hand-off, so at most one update per client
        session is ever outstanding."""
        return "admitted"

    def wake(self) -> None:
        """Wake any consumer blocked on queue state (shutdown fast path).

        The global FIFO has no condition waiters — consumers poll their
        own work queues — so this is a no-op kept for interface parity
        with :meth:`ShardedUpdateQueue.wake`."""


class ShardedUpdateQueue:
    """N FIFO lanes + one serial lane over a single global serial counter.

    The routing oracle assigns every claimed descriptor a lane key (hashed
    onto one of ``lanes`` labels) or sends it to the serial lane.  Claims
    are atomic, per-lane order is FIFO by serial, and the **barrier
    protocol** orders the serial lane against everything else:

    * a serial item with serial *S* becomes runnable only when it is the
      serial lane's oldest outstanding item **and** no lane holds an
      outstanding item with serial < *S* (all lanes have quiesced past
      its enqueue point);
    * a lane item with serial *L* becomes runnable only when it is its
      lane's oldest outstanding item **and** no serial-lane item with
      serial < *L* is still outstanding.

    Serials never wait on larger serials, so the protocol is deadlock-free
    by strict descent.  ``claim`` → ``wait_turn`` → (process) → ``finish``
    is the consumer contract; each step is safe under arbitrary thread
    interleavings.
    """

    def __init__(
        self,
        plan,
        lanes: int = 2,
        registry: MetricsRegistry | None = None,
        journal=None,
        depth_limit: int | None = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("a sharded queue needs at least one lane")
        if depth_limit is not None and depth_limit < 1:
            raise ValueError("depth_limit must be >= 1")
        self.plan = plan
        self.lanes = lanes
        #: Maximum *outstanding* (claimed, not yet finished) updates per
        #: lane before :meth:`admit` defers or rejects; ``None`` disables
        #: admission control (the pre-link behaviour).
        self.depth_limit = depth_limit
        self.journal = journal
        self.labels: tuple[str, ...] = tuple(
            [str(i) for i in range(lanes)] + [SERIAL_LANE]
        )
        self._cond = threading.Condition()
        self._serials = itertools.count(1)
        self._last_serial = 0
        #: lane label -> serial -> enqueue stamp, for items claimed but not
        #: yet running (the depth/staleness view).
        self._waiting: dict[str, dict[int, float]] = {
            label: {} for label in self.labels
        }
        #: lane label -> serials claimed but not finished (the barrier's
        #: quiescence view: waiting ∪ running).
        self._outstanding: dict[str, set[int]] = {
            label: set() for label in self.labels
        }
        #: lane label -> highest serial ever claimed onto the lane.
        self._lane_last: dict[str, int] = {label: 0 for label in self.labels}

        registry = registry if registry is not None else MetricsRegistry()
        self._enqueued = registry.counter(
            "metacomm_queue_enqueued_total",
            "Update descriptors appended to the global queue",
        )
        self._processed = registry.counter(
            "metacomm_queue_processed_total",
            "Update descriptors removed from the global queue",
        )
        self._lane_enqueued = registry.counter(
            "metacomm_queue_lane_enqueued_total",
            "Update descriptors routed onto each coordinator lane",
            labelnames=("lane",),
        )
        self._serial_fallback = registry.counter(
            "metacomm_queue_serial_fallback_total",
            "Updates the routing oracle sent to the serial lane, by reason",
            labelnames=("reason",),
        )
        self._depth = registry.gauge(
            "metacomm_queue_depth",
            "Update descriptors currently waiting in the global queue",
        )
        self._lane_depth = registry.gauge(
            "metacomm_queue_lane_depth",
            "Update descriptors currently waiting on each lane",
            labelnames=("lane",),
        )
        self._oldest_age = registry.gauge(
            "metacomm_queue_oldest_age_seconds",
            "How long the oldest unclaimed update has waited "
            "(the max over all lanes, so the queue-backlog alert rule "
            "keeps firing under sharding)",
        )
        self._lane_oldest_age = registry.gauge(
            "metacomm_queue_lane_oldest_age_seconds",
            "How long each lane's oldest unclaimed update has waited",
            labelnames=("lane",),
        )
        self._wait = registry.histogram(
            "metacomm_queue_wait_seconds",
            "Enqueue-to-dequeue latency of the global queue",
        )
        self._barrier_wait = registry.histogram(
            "metacomm_queue_barrier_seconds",
            "How long serial-lane items waited for all lanes to quiesce",
        )
        self._admission_deferred = registry.counter(
            "metacomm_queue_admission_deferred_total",
            "Updates that waited at admission for lane capacity",
            labelnames=("lane",),
        )
        self._admission_rejected = registry.counter(
            "metacomm_queue_admission_rejected_total",
            "Updates rejected at admission because a lane stayed at its "
            "depth limit (surfaced to LTAP clients as ServerBusy)",
            labelnames=("lane",),
        )
        self.statistics = StatsView(
            {
                "enqueued": lambda: self._enqueued.value,
                "processed": lambda: self._processed.value,
                "serial_routed": lambda: self._serial_fallback.total(),
                "admission_deferred": lambda: self._admission_deferred.total(),
                "admission_rejected": lambda: self._admission_rejected.total(),
            }
        )

    # -- producing ----------------------------------------------------------

    def _emit(self, kind: str, item: QueuedUpdate, trace, **extra) -> None:
        if self.journal is None:
            return
        descriptor = item.descriptor
        op = getattr(descriptor, "op", None)
        self.journal.emit(
            kind,
            trace=trace,
            serial=item.serial,
            op=getattr(op, "value", op),
            key=getattr(descriptor, "key", None),
            lane=item.lane,
            **extra,
        )

    def lane_of(self, lane_key: str | None) -> str:
        """Deterministic lane assignment: same key → same lane, always."""
        if lane_key is None:
            return SERIAL_LANE
        return str(crc32(lane_key.encode("utf-8")) % self.lanes)

    def claim(
        self,
        descriptor: UpdateDescriptor,
        trace=None,
        rename: bool = False,
        dispatch=None,
    ) -> QueuedUpdate:
        """Atomically assign the next global serial and a lane.

        Like :meth:`GlobalUpdateQueue.claim`, the item is never visible to
        any other consumer — the caller (or the lane worker it hands the
        item to) must call :meth:`wait_turn` before processing and
        :meth:`finish` afterwards.

        *dispatch*, when given, is invoked with the item inside the same
        critical section that assigns its serial.  The threaded hand-off
        needs this atomicity: if serial assignment and the lane
        work-queue insert were separate steps, two clients claiming into
        the same lane could enqueue out of serial order, and the single
        lane worker would wait on an item that can never become the
        lane's oldest outstanding serial while the older item sits
        behind it in the same FIFO.  *dispatch* must not block (a
        ``queue.Queue.put`` is fine)."""
        decision = self.plan.classify(descriptor, rename=rename)
        label = self.lane_of(decision.lane_key)
        now = time.perf_counter()
        with self._cond:
            serial = next(self._serials)
            self._last_serial = serial
            self._waiting[label][serial] = now
            self._outstanding[label].add(serial)
            self._lane_last[label] = serial
            self._enqueued.inc()
            self._lane_enqueued.labels(lane=label).inc()
            if decision.serial:
                self._serial_fallback.labels(reason=decision.reason).inc()
            self._publish_depth()
            item = QueuedUpdate(
                serial, descriptor, now, lane=label, reason=decision.reason
            )
            if dispatch is not None:
                try:
                    dispatch(item)
                except BaseException:
                    # A failed hand-off must not leave the serial
                    # outstanding — it would wedge the barrier forever.
                    self._outstanding[label].discard(serial)
                    self._waiting[label].pop(serial, None)
                    self._publish_depth()
                    raise
        self._emit(UPDATE_ACCEPTED, item, trace, reason=decision.reason)
        return item

    # -- admission control ----------------------------------------------------

    def admit(
        self,
        descriptor: UpdateDescriptor,
        rename: bool = False,
        timeout: float | None = None,
        trace=None,
    ) -> str:
        """Gate one prospective update on its target lane's depth limit.

        Called by LTAP's admission hook *before* the directory write, with
        a descriptor built from the inbound request: the routing oracle
        says which lane the update would land on, and if that lane already
        holds ``depth_limit`` outstanding updates the caller either defers
        (bounded wait of ``timeout`` seconds for capacity) or — when the
        wait expires, or ``timeout`` is ``None``/``0`` — gets
        :class:`QueueSaturatedError`, which the gateway surfaces as a
        typed ``ServerBusy`` LDAP result.  Returns ``"admitted"`` or
        ``"deferred"`` on success.

        Advisory by design: admission and the later :meth:`claim` are two
        critical sections, so concurrent admits can overshoot the limit by
        the number of racing clients — the limit bounds growth, it is not
        an exact semaphore."""
        if self.depth_limit is None:
            return "admitted"
        decision = self.plan.classify(descriptor, rename=rename)
        label = self.lane_of(decision.lane_key)
        deadline = (
            time.perf_counter() + timeout if timeout else None
        )
        status = "admitted"
        depth = 0
        waited = 0.0
        started = time.perf_counter()
        with self._cond:
            while len(self._outstanding[label]) >= self.depth_limit:
                if status == "admitted":
                    status = "deferred"
                    self._admission_deferred.labels(lane=label).inc()
                if deadline is None or time.perf_counter() >= deadline:
                    status = "rejected"
                    depth = len(self._outstanding[label])
                    break
                self._cond.wait(timeout=0.05)
        waited = time.perf_counter() - started
        # Journal emission stays outside _cond: listener callbacks must
        # never run under the queue's condition (LX502 discipline).
        if status == "rejected":
            self._admission_rejected.labels(lane=label).inc()
            if self.journal is not None:
                self.journal.emit(
                    UPDATE_REJECTED,
                    trace=trace,
                    key=getattr(descriptor, "key", None),
                    lane=label,
                    depth=depth,
                    limit=self.depth_limit,
                    waited=round(waited, 6),
                )
            raise QueueSaturatedError(label, depth, self.depth_limit)
        if status == "deferred" and self.journal is not None:
            self.journal.emit(
                UPDATE_DEFERRED,
                trace=trace,
                key=getattr(descriptor, "key", None),
                lane=label,
                waited=round(waited, 6),
            )
        return status

    # -- the barrier protocol ------------------------------------------------

    def _runnable(self, item: QueuedUpdate) -> bool:
        """Caller holds ``_cond``.  See the class docstring for the rules."""
        mine = self._outstanding[item.lane]
        if not mine or min(mine) != item.serial:
            return False
        if item.lane == SERIAL_LANE:
            return all(
                not lane or min(lane) > item.serial
                for label, lane in self._outstanding.items()
                if label != SERIAL_LANE
            )
        serial_lane = self._outstanding[SERIAL_LANE]
        return not serial_lane or min(serial_lane) > item.serial

    def wait_turn(
        self,
        item: QueuedUpdate,
        stop: threading.Event | None = None,
        timeout: float | None = None,
        trace=None,
    ) -> bool:
        """Block until *item* may run under the barrier protocol.

        Returns True once the item is runnable (it then counts as claimed
        for metrics/journal purposes); False when ``stop`` was set or
        ``timeout`` elapsed first — the caller must still call
        :meth:`finish` so the barrier does not wedge on the abandoned
        serial."""
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        with self._cond:
            while not self._runnable(item):
                if stop is not None and stop.is_set():
                    return False
                if deadline is not None and time.perf_counter() >= deadline:
                    return False
                self._cond.wait(timeout=0.05)
            self._waiting[item.lane].pop(item.serial, None)
            self._processed.inc()
            self._publish_depth()
        waited = (
            time.perf_counter() - item.enqueued_at if item.enqueued_at else 0.0
        )
        self._wait.observe(waited)
        if item.lane == SERIAL_LANE:
            # The serial item just cleared the barrier: every lane has
            # quiesced past its serial.  Journal it — this is the event a
            # wedged-barrier investigation greps for.
            self._barrier_wait.observe(waited)
            self._emit(LANE_BARRIER, item, trace, waited=round(waited, 6))
        self._emit(UPDATE_CLAIMED, item, trace)
        return True

    def finish(self, item: QueuedUpdate) -> None:
        """Mark *item* done; wakes every consumer blocked on the barrier."""
        with self._cond:
            self._outstanding[item.lane].discard(item.serial)
            self._waiting[item.lane].pop(item.serial, None)
            self._publish_depth()
            self._cond.notify_all()

    def wake(self) -> None:
        """Wake every barrier waiter so it re-checks its stop Event now.

        :meth:`wait_turn`'s condition wait is already bounded (50 ms
        ticks), so a missed wake-up only costs one tick — but
        ``UpdateManager.stop()`` calls this so shutdown never waits out
        even that tick per lane."""
        with self._cond:
            self._cond.notify_all()

    def _publish_depth(self) -> None:
        """Caller holds ``_cond``."""
        total = 0
        for label in self.labels:
            depth = len(self._waiting[label])
            total += depth
            self._lane_depth.labels(lane=label).set(depth)
        self._depth.set(total)

    # -- status (the GlobalUpdateQueue compatibility surface) ----------------

    def __len__(self) -> int:
        with self._cond:
            return sum(len(w) for w in self._waiting.values())

    def peek_serial(self) -> int | None:
        with self._cond:
            waiting = [min(w) for w in self._waiting.values() if w]
            return min(waiting) if waiting else None

    @property
    def last_serial(self) -> int:
        """The highest serial issued so far (the serialization head)."""
        with self._cond:
            return self._last_serial

    def _lane_age(self, label: str, now: float) -> float:
        """Caller holds ``_cond``."""
        stamps = self._waiting[label].values()
        return (now - min(stamps)) if stamps else 0.0

    def oldest_age(self) -> float:
        """Seconds the oldest unclaimed update has waited, over all lanes."""
        now = time.perf_counter()
        with self._cond:
            return max(self._lane_age(label, now) for label in self.labels)

    def refresh_staleness(self) -> float:
        """Publish per-lane and aggregate (max-lane) oldest-age gauges.

        The aggregate lands on ``metacomm_queue_oldest_age_seconds`` — the
        same series the single queue publishes — so the shipped
        ``queue-backlog`` alert rule fires identically under sharding."""
        now = time.perf_counter()
        with self._cond:
            ages = {
                label: self._lane_age(label, now) for label in self.labels
            }
        for label, age in ages.items():
            self._lane_oldest_age.labels(lane=label).set(age)
        aggregate = max(ages.values())
        self._oldest_age.set(aggregate)
        return aggregate

    def lane_snapshot(self) -> list[dict]:
        """Per-lane depth / staleness / last-serial (the monitor CLI's
        lane section)."""
        now = time.perf_counter()
        with self._cond:
            return [
                {
                    "lane": label,
                    "depth": len(self._waiting[label]),
                    "outstanding": len(self._outstanding[label]),
                    "limit": self.depth_limit,
                    "oldest_age": self._lane_age(label, now),
                    "last_serial": self._lane_last[label],
                }
                for label in self.labels
            ]
