"""The Update Manager's global update queue.

Paper section 4.4: "the LDAP filter ... creates a lexpress update
descriptor for the update that is then added to a global queue in the UM.
The main thread of the UM, the coordinator, iterates through the global
update queue" and "The queue maintained by the UM enforces a serialization
order."

The queue is a plain FIFO with a serial number per item — the serial *is*
the system-wide serialization order that makes the reapplication technique
converge.  Items are stamped with their enqueue time so the dequeue path
can feed the enqueue→dequeue latency histogram (queue lag is the paper's
"converge after some delay", made measurable).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..lexpress.descriptor import UpdateDescriptor
from ..obs.metrics import MetricsRegistry
from ..obs.views import StatsView


@dataclass(frozen=True)
class QueuedUpdate:
    """One queue item: a descriptor stamped with its serialization order."""

    serial: int
    descriptor: UpdateDescriptor
    #: ``time.perf_counter()`` at enqueue (0.0 for hand-built items).
    enqueued_at: float = field(default=0.0, compare=False)


class GlobalUpdateQueue:
    """FIFO of update descriptors with a global serialization order."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._items: deque[QueuedUpdate] = deque()
        self._serials = itertools.count(1)
        self._lock = threading.Lock()
        registry = registry if registry is not None else MetricsRegistry()
        self._enqueued = registry.counter(
            "metacomm_queue_enqueued_total",
            "Update descriptors appended to the global queue",
        )
        self._processed = registry.counter(
            "metacomm_queue_processed_total",
            "Update descriptors removed from the global queue",
        )
        self._depth = registry.gauge(
            "metacomm_queue_depth",
            "Update descriptors currently waiting in the global queue",
        )
        self._wait = registry.histogram(
            "metacomm_queue_wait_seconds",
            "Enqueue-to-dequeue latency of the global queue",
        )
        self.statistics = StatsView(
            {
                "enqueued": lambda: self._enqueued.value,
                "processed": lambda: self._processed.value,
            }
        )

    def enqueue(self, descriptor: UpdateDescriptor) -> QueuedUpdate:
        item = QueuedUpdate(
            next(self._serials), descriptor, time.perf_counter()
        )
        with self._lock:
            self._items.append(item)
            self._enqueued.inc()
            self._depth.set(len(self._items))
        return item

    def claim(self, descriptor: UpdateDescriptor) -> QueuedUpdate:
        """Atomically enqueue-and-dequeue one descriptor for its caller.

        The threaded coordinator hand-off needs the serialization order
        *and* a guarantee that the caller processes its own descriptor —
        a separate ``enqueue()``/``dequeue()`` pair lets two interleaved
        sessions swap items, pairing a job with the wrong entry lock.
        ``claim`` assigns the serial and accounts the item as enqueued and
        processed in one critical section; the item is never visible to
        any other dequeuer."""
        now = time.perf_counter()
        with self._lock:
            item = QueuedUpdate(next(self._serials), descriptor, now)
            self._enqueued.inc()
            self._processed.inc()
        self._wait.observe(time.perf_counter() - now)
        return item

    def dequeue(self) -> QueuedUpdate | None:
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._processed.inc()
            self._depth.set(len(self._items))
        if item.enqueued_at:
            self._wait.observe(time.perf_counter() - item.enqueued_at)
        return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_serial(self) -> int | None:
        with self._lock:
            return self._items[0].serial if self._items else None
