"""Synchronization of pre-existing directories and devices.

Section 4.4: "The UM also supports the synchronization of preexisting
directories.  This is necessary to populate the directory initially and to
recover from disconnected operations of devices without logging
facilities."  Section 5.1 adds the two LTAP extensions that make it safe:
persistent connections (a sync is a *sequence* of updates on one
connection) and the quiesce facility (no other updates may interleave).

Two directions are provided:

* :meth:`Synchronizer.synchronize` — the device is authoritative: its
  records are pushed into the directory through the normal UM pipeline
  (so other devices sharing the data converge too), and directory entries
  claiming device data the device no longer has are cleaned up.
* :meth:`Synchronizer.push_directory` — the directory is authoritative:
  device records are created/updated/deleted to match the directory
  (initial provisioning of a fresh device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ldap.protocol import Session
from ..lexpress.descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
)
from ..obs.events import SYNC_PROGRESS
from .filters.base import FilterError
from .update_manager import DeviceBinding, UpdateManager

#: One ``sync.progress`` batch event per this many examined records.
PROGRESS_EVERY = 25


@dataclass
class SyncReport:
    """Outcome of one synchronization run."""

    device: str
    direction: str
    examined: int = 0
    added: int = 0
    modified: int = 0
    deleted: int = 0
    skipped: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return self.added + self.modified + self.deleted

    def __str__(self) -> str:
        return (
            f"sync({self.device}, {self.direction}): examined={self.examined} "
            f"added={self.added} modified={self.modified} deleted={self.deleted} "
            f"skipped={self.skipped} errors={len(self.errors)}"
        )


class Synchronizer:
    """Drives full-device synchronization through the UM pipeline."""

    def __init__(self, um: UpdateManager):
        self.um = um

    def _progress(self, report: SyncReport, phase: str) -> None:
        """One ``sync.progress`` journal event (no-op without a journal)."""
        journal = getattr(self.um, "journal", None)
        if journal is None:
            return
        journal.emit(
            SYNC_PROGRESS,
            device=report.device,
            direction=report.direction,
            phase=phase,
            examined=report.examined,
            applied=report.applied,
            skipped=report.skipped,
            errors=len(report.errors),
        )

    def _batch_progress(self, report: SyncReport) -> None:
        if report.examined and report.examined % PROGRESS_EVERY == 0:
            self._progress(report, "batch")

    # -- device-authoritative ---------------------------------------------------

    def synchronize(self, device_name: str) -> SyncReport:
        """Make the directory (and the other devices) agree with one device."""
        binding = self.um.binding(device_name)
        report = SyncReport(device_name, "from-device")
        session = Session()
        self._progress(report, "start")
        with self.um.gateway.quiesce(session):
            with self.um.connections.open(persistent=True) as connection:
                device_keys = self._sync_records_in(binding, report, session, connection)
                self._cleanup_directory(binding, device_keys, report, session, connection)
        self._progress(report, "end")
        return report

    def _sync_records_in(
        self, binding: DeviceBinding, report: SyncReport, session: Session, connection
    ) -> set[str]:
        """Push every device record through the pipeline; returns the set of
        LDAP key values the device accounts for."""
        seen: set[str] = set()
        for record in binding.filter.dump():
            report.examined += 1
            self._batch_progress(report)
            image = binding.to_ldap.image(record) or {}
            ldap_key = binding.to_ldap.key_of(image)
            if ldap_key is not None:
                seen.add(ldap_key.lower())
            key_attr = binding.to_ldap.key_target
            entry = (
                self.um.ldap_filter.locate(key_attr, ldap_key)
                if key_attr and ldap_key
                else None
            )
            if entry is None:
                descriptor = UpdateDescriptor(
                    UpdateOp.ADD, binding.to_ldap.source,
                    self._device_key(binding, record), new=record,
                )
                self._forward(binding, descriptor, report, session, connection)
                continue
            # Compare the device's desired LDAP image against the live
            # entry — translate()'s own diff would recompute derived
            # attributes from the entry and mask gaps in the directory.
            diff = {
                name: values
                for name, values in image.items()
                if name.lower() != "lastupdater"
                and entry.get(name) != values
            }
            if not diff:
                report.skipped += 1
                continue
            update = TargetUpdate(
                action=TargetAction.MODIFY,
                target="ldap",
                key=ldap_key,
                old_key=ldap_key,
                key_attribute=key_attr,
                attributes=image,
                old_attributes=entry.attributes.to_dict(),
                changed=diff,
                mapping=binding.to_ldap.name,
            )
            self._forward_update(binding, update, report, session, connection)
        return seen

    def _cleanup_directory(
        self,
        binding: DeviceBinding,
        device_keys: set[str],
        report: SyncReport,
        session: Session,
        connection,
    ) -> None:
        """Strip device data from entries the device no longer knows."""
        key_attr = binding.to_ldap.key_target
        if key_attr is None:
            return
        for entry in self.um.ldap_filter.person_entries():
            values = entry.get(key_attr)
            if not values:
                continue
            if values[0].lower() in device_keys:
                continue
            report.examined += 1
            old_device = binding.from_ldap.image(entry.attributes.to_dict()) or {}
            if not old_device:
                report.skipped += 1
                continue
            descriptor = UpdateDescriptor(
                UpdateOp.DELETE, binding.to_ldap.source,
                self._device_key(binding, old_device), old=old_device,
            )
            self._forward(binding, descriptor, report, session, connection)

    def _forward(
        self,
        binding: DeviceBinding,
        descriptor: UpdateDescriptor,
        report: SyncReport,
        session: Session,
        connection,
    ) -> None:
        update = binding.to_ldap.translate(descriptor)
        if update is None or update.action is TargetAction.SKIP:
            report.skipped += 1
            return
        self._forward_update(binding, update, report, session, connection)

    def _forward_update(
        self,
        binding: DeviceBinding,
        update: TargetUpdate,
        report: SyncReport,
        session: Session,
        connection,
    ) -> None:
        try:
            self.um.ldap_filter.forward_ddu(
                update, origin=binding.name, session=session
            )
            connection.send(update)
        except FilterError as exc:
            report.errors.append(str(exc))
            self.um.error_log.record(
                target="ldap", message=str(exc),
                context=f"sync from {binding.name}",
            )
            return
        if update.action is TargetAction.ADD:
            report.added += 1
        elif update.action is TargetAction.MODIFY:
            report.modified += 1
        else:
            report.deleted += 1

    # -- directory-authoritative ----------------------------------------------------

    def push_directory(self, device_name: str) -> SyncReport:
        """Provision a device from the directory's materialized view."""
        binding = self.um.binding(device_name)
        report = SyncReport(device_name, "to-device")
        directory_keys: set[str] = set()
        self._progress(report, "start")
        for entry in self.um.ldap_filter.person_entries():
            report.examined += 1
            self._batch_progress(report)
            attrs = entry.attributes.to_dict()
            descriptor = UpdateDescriptor(
                UpdateOp.ADD, "ldap", str(entry.dn), new=attrs
            )
            # Reuse the pipeline's planning stage: translate + partition
            # routing + before-image capture in one place.
            plan = self.um.pipeline.plan_device_update(binding, descriptor)
            if plan is None or plan.update.key is None:
                report.skipped += 1
                continue
            update = plan.update
            directory_keys.add(update.key)
            existing = plan.before
            try:
                if existing is None:
                    binding.filter.apply(update)
                    report.added += 1
                else:
                    current = {n: v[0] for n, v in existing.items() if v}
                    desired = {n: v[0] for n, v in update.attributes.items() if v}
                    changed = {
                        n: [v] for n, v in desired.items()
                        if current.get(n) != v
                        and not self._generated_field(binding, n)
                    }
                    if not changed:
                        report.skipped += 1
                        continue
                    from dataclasses import replace as _replace

                    binding.filter.apply(
                        _replace(
                            update,
                            action=TargetAction.MODIFY,
                            old_key=update.key,
                            changed=changed,
                        )
                    )
                    report.modified += 1
            except FilterError as exc:
                report.errors.append(str(exc))
                self.um.error_log.record(
                    target=binding.name, message=str(exc), context="push_directory"
                )
        # Remove device records the directory does not sanction.
        for key in binding.filter.device.keys():
            if key not in directory_keys:
                try:
                    binding.filter.device.delete(key, agent="metacomm-um")
                    report.deleted += 1
                except Exception as exc:  # pragma: no cover - defensive
                    report.errors.append(str(exc))
        self._progress(report, "end")
        return report

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _device_key(binding: DeviceBinding, record: dict) -> str | None:
        key_field = binding.to_ldap.key_source
        if key_field is None:
            return None
        for name, values in record.items():
            if name.lower() == key_field.lower():
                if isinstance(values, list):
                    return str(values[0]) if values else None
                return str(values)
        return None

    @staticmethod
    def _generated_field(binding: DeviceBinding, name: str) -> bool:
        spec = binding.filter.device.fields.get(name.lower())
        return spec is not None and spec.generated
