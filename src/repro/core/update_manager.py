"""The Update Manager (UM) — the central component of MetaComm.

Figure 1 / section 4.4: the UM "keeps the data in the LDAP directory
synchronized with the data in the telecom devices.  It responds to update
requests that originate from client applications such as the WBA, or from
one of the devices, and it ensures that after an update is applied, the
information in all devices and directories remains consistent."

The flow implemented here is the paper's:

* **LDAP-originated updates** (WBA, browsers): LTAP traps the request,
  holds the entry lock, and fires the UM's AFTER trigger.  The trigger
  builds a lexpress descriptor, appends it to the global queue, and the
  coordinator drains the queue — computing the transitive closure of the
  change, fanning translated updates out to every device filter, folding
  device-generated information back, and finally applying supplemental
  attributes to the LDAP server ("update the LDAP Server after all other
  devices are updated", section 5.5) — all while the lock is held.

* **Direct device updates (DDUs)**: the device filter hears the commit
  notification, builds a descriptor, and the UM forwards it through the
  LDAP filter to LTAP, where locks are obtained and the update re-enters
  as an LDAP event whose *origin* is the device.  The fan-out then
  *reapplies* the update to the originating device as conditional
  operations — the write-write consistency technique of sections 4.4/5.4.

* **Failures**: a device that rejects an update aborts the remaining
  sequence; the error is logged into the directory and the administrator
  notified (section 4.4).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Iterable

from ..ldap.backend import ChangeType
from ..ldap.dn import DN
from ..ldap.protocol import Session
from ..ldap.server import LdapServer
from ..lexpress.closure import ClosureEngine
from ..lexpress.descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
)
from ..lexpress.mapping import CompiledMapping
from ..lexpress.partition import PartitionConstraint
from ..ltap.connection import ConnectionManager
from ..ltap.gateway import LtapGateway
from ..ltap.triggers import Trigger, TriggerEvent
from ..obs.metrics import MetricsRegistry
from ..obs.trace import OBS_TRACE, Tracer, trace_span
from ..obs.views import StatsView
from .errorlog import ErrorLog
from .filters.base import Filter, FilterError
from .filters.device_filter import DeviceFilter
from .filters.ldap_filter import LdapFilter
from .queue import GlobalUpdateQueue, QueuedUpdate


@dataclass
class DeviceBinding:
    """One integrated device: its filter, its schema pair, its partition."""

    filter: DeviceFilter
    to_ldap: CompiledMapping
    from_ldap: CompiledMapping
    partition: PartitionConstraint | None = None

    @property
    def name(self) -> str:
        return self.filter.name


class UpdateManager:
    """Coordinator + global queue + filter fan-out."""

    def __init__(
        self,
        server: LdapServer,
        gateway: LtapGateway,
        ldap_filter: LdapFilter,
        bindings: Iterable[DeviceBinding],
        error_log: ErrorLog,
        abort_on_failure: bool = True,
        undo_on_failure: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.server = server
        self.gateway = gateway
        self.ldap_filter = ldap_filter
        self.bindings = list(bindings)
        self.error_log = error_log
        self.abort_on_failure = abort_on_failure
        #: Section 4.4 future work: compensate already-applied device
        #: updates when a later one fails — the saga technique.
        self.undo_on_failure = undo_on_failure
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.queue = GlobalUpdateQueue(registry=self.registry)
        self.connections = ConnectionManager(self._handle_connection_event)
        self._thread: threading.Thread | None = None
        #: How long a blocked trigger waits for the coordinator thread to
        #: finish one sequence before giving up (section 4.4's serialized
        #: discipline means a stuck sequence must surface, not hang).
        self.coordinator_timeout: float = 30.0
        self._ldap_events = self.registry.counter(
            "metacomm_um_ldap_events_total",
            "Trigger events received from LTAP (LDAP-originated updates)",
        )
        self._ddus = self.registry.counter(
            "metacomm_um_ddus_total",
            "Direct device updates received from device filters",
            labelnames=("device",),
        )
        self._fanout = self.registry.counter(
            "metacomm_um_fanout_total",
            "Translated updates applied to device repositories",
            labelnames=("device",),
        )
        self._reapplied = self.registry.counter(
            "metacomm_um_reapplied_total",
            "Conditional reapplications to an update's originating device "
            "(the section-5.4 write-write consistency technique)",
            labelnames=("device",),
        )
        self._aborted = self.registry.counter(
            "metacomm_um_aborted_sequences_total",
            "Update sequences aborted by a repository rejection",
            labelnames=("target",),
        )
        self._compensated = self.registry.counter(
            "metacomm_um_compensated_total",
            "Saga-style compensations of already-applied device updates",
            labelnames=("device",),
        )
        self._supplemental = self.registry.counter(
            "metacomm_um_supplemental_writes_total",
            "Supplemental LDAP writes (closure-derived and "
            "device-generated attributes folded back, section 5.5)",
        )
        self._connection_events = self.registry.counter(
            "metacomm_um_connection_events_total",
            "Events delivered over explicit LTAP action connections",
            labelnames=("kind",),
        )
        self._sequence_seconds = self.registry.histogram(
            "metacomm_um_sequence_seconds",
            "Duration of one full update sequence (closure, fan-out, "
            "supplemental write)",
        )
        self.statistics = StatsView(
            {
                "ldap_events": lambda: self._ldap_events.value,
                "ddus": lambda: self._ddus.total(),
                "fanned_out": lambda: self._fanout.total(),
                "reapplied": lambda: self._reapplied.total(),
                "supplemental_writes": lambda: self._supplemental.value,
                "aborted_sequences": lambda: self._aborted.total(),
                "compensated": lambda: self._compensated.total(),
            }
        )

        mappings: dict[str, CompiledMapping] = {}
        for binding in self.bindings:
            mappings.setdefault(binding.to_ldap.name, binding.to_ldap)
            mappings.setdefault(binding.from_ldap.name, binding.from_ldap)
        self.closure = ClosureEngine(mappings.values())

        gateway.register_trigger(
            Trigger(
                action=self._on_ldap_event,
                base=self.ldap_filter.people_base,
                filter="(objectClass=person)",
                name="metacomm-um",
            )
        )
        for binding in self.bindings:
            binding.filter.on_ddu(self._on_ddu)

    # -- connection sink (persistent connections deliver sync batches) -----------

    def _handle_connection_event(self, event, connection) -> None:
        # Events arriving over explicit connections are already descriptors
        # processed elsewhere; the manager only tracks them for statistics.
        kind = (
            "persistent"
            if getattr(connection, "persistent", False)
            else "single_shot"
        )
        self._connection_events.labels(kind=kind).inc()

    # -- threaded coordinator (the paper's "main thread of the UM") -----------------

    def start(self) -> None:
        """Run the coordinator on its own thread.

        Section 4.4: "The main thread of the UM, the coordinator, iterates
        through the global update queue."  In threaded mode, LTAP's trigger
        enqueues the descriptor and *blocks until the coordinator signals
        completion* — so the entry lock is still held for the whole update
        sequence, exactly as in the synchronous mode.  Entry locks are
        owned by sessions (not threads), so the coordinator can re-enter
        the waiting client's lock for supplemental writes."""
        import queue as _queue

        if self._thread is not None:
            return
        self._work: "_queue.Queue" = _queue.Queue()
        self._stop = threading.Event()

        def coordinator_loop():
            while not self._stop.is_set():
                try:
                    job = self._work.get(timeout=0.05)
                except _queue.Empty:
                    continue
                item, session, done, failure = job
                try:
                    self._process(item, session)
                except Exception as exc:  # surfaced to the waiting trigger
                    failure.append(exc)
                finally:
                    done.set()

        self._thread = threading.Thread(
            target=coordinator_loop, name="metacomm-coordinator", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None

    @property
    def threaded(self) -> bool:
        return self._thread is not None

    # -- LDAP event intake ---------------------------------------------------------

    def _on_ldap_event(self, event: TriggerEvent) -> None:
        self._ldap_events.inc()
        descriptor = self._descriptor_from_event(event)
        if descriptor is None:
            return
        item = self.queue.enqueue(descriptor)
        if self._thread is not None:
            done = threading.Event()
            failure: list[Exception] = []
            dequeued = self.queue.dequeue()
            # FIFO discipline is preserved: enqueue/dequeue happen inside
            # the entry lock, and the coordinator consumes jobs in order.
            self._work.put((dequeued or item, event.session, done, failure))
            if not done.wait(timeout=self.coordinator_timeout):
                raise RuntimeError("coordinator did not complete the sequence")
            if failure:
                raise failure[0]
            return
        self._drain(event.session)

    def _descriptor_from_event(self, event: TriggerEvent) -> UpdateDescriptor | None:
        origin = str(event.session.state.get("metacomm.origin", "ldap"))
        before = event.before.attributes.to_dict() if event.before else None
        after = event.after.attributes.to_dict() if event.after else None
        if event.change_type is ChangeType.ADD:
            op = UpdateOp.ADD
        elif event.change_type is ChangeType.DELETE:
            op = UpdateOp.DELETE
        else:
            op = UpdateOp.MODIFY
            if before is None or after is None:
                return None
        key = str(event.after.dn if event.after is not None else event.dn)
        explicit: set[str] = set()
        if before is not None and after is not None:
            names = {n.lower() for n in before} | {n.lower() for n in after}
            for name in names:
                if _get(before, name) != _get(after, name):
                    explicit.add(name)
        elif after is not None:
            explicit = {n.lower() for n in after}
        # Stamp the update's source so the Originator machinery (section
        # 5.4) sees who really made this change, not a stale value.
        if after is not None:
            after = dict(after)
            for name in list(after):
                if name.lower() == "lastupdater":
                    del after[name]
            after["lastUpdater"] = [origin]
        return UpdateDescriptor(
            op=op,
            source="ldap",
            key=key,
            old=before,
            new=after,
            explicit=frozenset(explicit),
            origin=origin,
        )

    # -- DDU intake -------------------------------------------------------------------

    def _on_ddu(self, source_filter: Filter, descriptor: UpdateDescriptor) -> None:
        """Section 4.4's DDU sequence: device filter → LDAP filter → LTAP."""
        binding = self._binding_of(source_filter)
        self._ddus.labels(device=binding.name).inc()
        trace = (
            self.tracer.start("ddu", device=binding.name, key=str(descriptor.key))
            if self.tracer is not None
            else None
        )
        try:
            with trace_span(trace, "ddu.translate", device=binding.name):
                update = binding.to_ldap.translate(descriptor)
            if update is None or update.action is TargetAction.SKIP:
                return
            session = Session()
            if trace is not None:
                session.state[OBS_TRACE] = trace
            try:
                with trace_span(trace, "ddu.forward", device=binding.name):
                    self.ldap_filter.forward_ddu(
                        update, origin=binding.name, session=session
                    )
            except FilterError as exc:
                self._aborted.labels(target="ldap").inc()
                self.error_log.record(
                    target="ldap",
                    message=str(exc),
                    context=f"DDU from {binding.name} key={descriptor.key}",
                )
            finally:
                session.state.pop(OBS_TRACE, None)
        finally:
            if trace is not None:
                trace.finish()

    def _binding_of(self, source_filter: Filter) -> DeviceBinding:
        for binding in self.bindings:
            if binding.filter is source_filter:
                return binding
        raise KeyError(f"no binding for filter {source_filter!r}")

    # -- the coordinator --------------------------------------------------------------

    def _drain(self, session: Session) -> None:
        while True:
            item = self.queue.dequeue()
            if item is None:
                return
            self._process(item, session)

    def _process(self, item: QueuedUpdate, session: Session) -> None:
        trace = (
            session.state.get(OBS_TRACE) if session is not None else None
        )
        start = time.perf_counter()
        if trace is not None and item.enqueued_at:
            # The enqueue→dequeue leg: its endpoints live in different
            # frames (and, in threaded mode, different threads), so it is
            # recorded from the enqueue stamp rather than measured inline.
            trace.record(
                "queue.wait", start - item.enqueued_at, serial=item.serial
            )
        try:
            self._run_sequence(item, session, trace)
        finally:
            self._sequence_seconds.observe(time.perf_counter() - start)

    def _run_sequence(
        self, item: QueuedUpdate, session: Session, trace
    ) -> None:
        descriptor = item.descriptor
        if descriptor.op is UpdateOp.DELETE:
            enriched = descriptor
        else:
            with trace_span(trace, "closure.enrich"):
                enriched = self._enrich(descriptor)

        supplemental: dict[str, list[str]] = self._closure_supplement(
            descriptor, enriched
        )
        aborted = False
        applied: list[tuple[DeviceBinding, TargetUpdate, dict | None]] = []
        for binding in self.bindings:
            update = binding.from_ldap.translate(
                enriched,
                extra_partition=binding.partition,
                target_name=binding.name,
            )
            if update is None or update.action is TargetAction.SKIP:
                continue
            before = (
                binding.filter.fetch(update.old_key or update.key)
                if (update.old_key or update.key) is not None
                else None
            )
            with trace_span(
                trace,
                "filter.apply",
                device=binding.name,
                conditional=update.conditional,
            ) as span:
                try:
                    result = binding.filter.apply(update)
                except FilterError as exc:
                    if span is not None:
                        span.attributes["error"] = exc.message
                    self._aborted.labels(target=binding.name).inc()
                    self.error_log.record(
                        target=binding.name,
                        message=exc.message,
                        context=f"update serial={item.serial} key={update.key}",
                    )
                    if self.undo_on_failure:
                        self._compensate(applied, trace)
                    if self.abort_on_failure:
                        aborted = True
                        break
                    continue
            applied.append((binding, update, before))
            self._fanout.labels(device=binding.name).inc()
            if update.conditional:
                self._reapplied.labels(device=binding.name).inc()
            if update.key is not None and (
                update.action is TargetAction.ADD or result.recovered
            ):
                # A record was (re)created at the device: echo its full
                # view — defaults, truncations, generated ids — back to
                # the directory so both sides agree (section 5.5).
                supplemental.update(self._echo_supplement(binding, update.key))
            elif result.generated and update.key is not None:
                supplemental.update(
                    self._generated_supplement(
                        binding, update.key, result.generated
                    )
                )
        if aborted:
            return
        # "update the LDAP Server after all other devices are updated".
        if supplemental and descriptor.op is not UpdateOp.DELETE:
            dn = DN.parse(descriptor.key) if descriptor.key else None
            if dn is not None:
                # NB: the result deliberately does not reuse the name
                # `applied` — that is the saga compensation list above.
                with trace_span(trace, "ldap.supplemental") as span:
                    wrote = self.ldap_filter.apply_supplemental(
                        dn, supplemental, session
                    )
                    if span is not None:
                        span.attributes["wrote"] = wrote
                if wrote:
                    self._supplemental.inc()

    def _compensate(
        self,
        applied: list[tuple[DeviceBinding, TargetUpdate, dict | None]],
        trace=None,
    ) -> None:
        """Undo already-applied device updates in reverse order (sagas)."""
        for binding, update, before in reversed(applied):
            try:
                with trace_span(trace, "filter.compensate", device=binding.name):
                    binding.filter.compensate(update, before)
                self._compensated.labels(device=binding.name).inc()
            except Exception as exc:  # compensation is best-effort
                self.error_log.record(
                    target=binding.name,
                    message=f"compensation failed: {exc}",
                    context=f"undo of {update.action.value} key={update.key}",
                )

    def _enrich(self, descriptor: UpdateDescriptor) -> UpdateDescriptor:
        """Run the transitive closure; return a descriptor whose new image
        includes all derived LDAP attributes."""
        result = self.closure.propagate(
            "ldap",
            descriptor.new or {},
            changed=descriptor.changed_attributes(),
            explicit=descriptor.explicit,
        )
        merged = dict(descriptor.new or {})
        have = {n.lower() for n in merged}
        for name, values in result.image("ldap").items():
            if name.lower() not in have:
                merged[name] = values
        return replace(descriptor, new=merged)

    def _closure_supplement(
        self, original: UpdateDescriptor, enriched: UpdateDescriptor
    ) -> dict[str, list[str]]:
        """The desired final LDAP image after closure.

        The whole enriched image is handed to
        :meth:`LdapFilter.apply_supplemental`, which diffs it against the
        live entry and writes only what actually changed — that keeps the
        supplemental pass idempotent and covers both closure-derived
        attributes and the ``lastUpdater`` stamp."""
        return dict(enriched.new or {})

    def _echo_supplement(
        self, binding: DeviceBinding, key: str
    ) -> dict[str, list[str]]:
        """The device's committed view of a freshly created record, mapped
        back into LDAP attributes (excluding the Originator stamp, which
        must reflect who really made the update)."""
        record = binding.filter.fetch(key)
        if record is None:
            return {}
        image = binding.to_ldap.image(record) or {}
        return {
            name: values
            for name, values in image.items()
            if name.lower() != "lastupdater"
        }

    def _generated_supplement(
        self,
        binding: DeviceBinding,
        key: str,
        generated: dict[str, list[str]],
    ) -> dict[str, list[str]]:
        """Fold device-generated information back toward LDAP (section 5.5).

        Only attributes that *derive from* the generated fields are folded
        back: the full committed record is mapped once with and once
        without those fields, and the difference is the supplement."""
        record = binding.filter.fetch(key)
        if record is None:
            return {}
        without = {
            name: values
            for name, values in record.items()
            if name.lower() not in {g.lower() for g in generated}
        }
        image_full = binding.to_ldap.image(record) or {}
        image_without = binding.to_ldap.image(without) or {}
        out: dict[str, list[str]] = {}
        for name, values in image_full.items():
            if image_without.get(name) != values:
                out[name] = values
        return out

    # -- public status -------------------------------------------------------------------

    def binding(self, name: str) -> DeviceBinding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise KeyError(f"no device binding named {name!r}")


def _get(attrs: dict[str, list[str]] | None, name: str) -> list[str]:
    if not attrs:
        return []
    for key, values in attrs.items():
        if key.lower() == name:
            return list(values)
    return []
