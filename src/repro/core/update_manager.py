"""The Update Manager (UM) — the central component of MetaComm.

Figure 1 / section 4.4: the UM "keeps the data in the LDAP directory
synchronized with the data in the telecom devices.  It responds to update
requests that originate from client applications such as the WBA, or from
one of the devices, and it ensures that after an update is applied, the
information in all devices and directories remains consistent."

The flow implemented here is the paper's:

* **LDAP-originated updates** (WBA, browsers): LTAP traps the request,
  holds the entry lock, and fires the UM's AFTER trigger.  The trigger
  builds a lexpress descriptor, appends it to the global queue, and the
  coordinator drains the queue — running the staged update-sequence
  pipeline of :mod:`repro.core.pipeline` (closure enrichment, per-device
  planning, fan-out, fold-back merge, supplemental LDAP write) — all
  while the lock is held.

* **Direct device updates (DDUs)**: the device filter hears the commit
  notification, builds a descriptor, and the UM forwards it through the
  LDAP filter to LTAP, where locks are obtained and the update re-enters
  as an LDAP event whose *origin* is the device.  The fan-out then
  *reapplies* the update to the originating device as conditional
  operations — the write-write consistency technique of sections 4.4/5.4.

* **Failures**: a device that rejects an update aborts the remaining
  sequence; the error is logged into the directory and the administrator
  notified (section 4.4).  Abort and saga compensation are pipeline
  failure policies, identical in serial and parallel fan-out modes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable

from ..ldap.backend import ChangeType
from ..ldap.protocol import (
    AddRequest,
    DeleteRequest,
    LdapRequest,
    ModifyRdnRequest,
    ModifyRequest,
    ModOp,
    Session,
)
from ..ldap.result import ServerBusyError
from ..ldap.server import LdapServer
from ..lexpress.closure import ClosureEngine
from ..lexpress.descriptor import TargetUpdate, UpdateDescriptor, UpdateOp
from ..lexpress.mapping import CompiledMapping
from ..lexpress.partition import PartitionConstraint
from ..ltap.connection import ConnectionManager
from ..ltap.gateway import LtapGateway
from ..ltap.triggers import Trigger, TriggerEvent
from ..obs.events import DDU_RECEIVED, SAGA_COMPENSATED
from ..obs.metrics import MetricsRegistry
from ..obs.trace import OBS_TRACE, Tracer, trace_span
from ..obs.views import StatsView
from .errorlog import ErrorLog
from .filters.base import Filter, FilterError
from .filters.device_filter import DeviceFilter
from .filters.ldap_filter import LdapFilter
from .pipeline import FailurePolicy, UpdateSequencePipeline, _descriptor_from_event
from .queue import (
    GlobalUpdateQueue,
    QueuedUpdate,
    QueueSaturatedError,
    ShardedUpdateQueue,
)


@dataclass
class DeviceBinding:
    """One integrated device: its filter, its schema pair, its partition."""

    filter: DeviceFilter
    to_ldap: CompiledMapping
    from_ldap: CompiledMapping
    partition: PartitionConstraint | None = None

    @property
    def name(self) -> str:
        return self.filter.name


class UpdateManager:
    """Coordinator + global queue + staged pipeline fan-out."""

    def __init__(
        self,
        server: LdapServer,
        gateway: LtapGateway,
        ldap_filter: LdapFilter,
        bindings: Iterable[DeviceBinding],
        error_log: ErrorLog,
        abort_on_failure: bool = True,
        undo_on_failure: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        fanout_workers: int = 1,
        journal=None,
        health=None,
        coordinator_lanes: int = 1,
        routing_plan=None,
        lane_depth_limit: int | None = None,
        busy_policy: str = "reject",
        busy_timeout: float = 0.5,
    ):
        self.server = server
        self.gateway = gateway
        self.ldap_filter = ldap_filter
        bindings = list(bindings)
        self.error_log = error_log
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.journal = journal
        self.health = health
        self.coordinator_lanes = max(1, coordinator_lanes)
        self.routing_plan = routing_plan
        if busy_policy not in ("reject", "defer"):
            raise ValueError("busy_policy must be 'reject' or 'defer'")
        #: Admission policy when a lane is at its depth limit: ``reject``
        #: answers ServerBusy immediately, ``defer`` waits up to
        #: ``busy_timeout`` seconds for capacity first.
        self.busy_policy = busy_policy
        self.busy_timeout = busy_timeout
        if self.coordinator_lanes > 1:
            # Sharded drain path: the routing oracle's lane keys spread
            # provably-commuting updates over concurrent coordinator
            # lanes; everything unprovable serializes behind the barrier.
            if routing_plan is None:
                raise ValueError(
                    "coordinator_lanes > 1 requires a routing plan "
                    "(repro.analysis.build_routing_plan)"
                )
            self.queue: GlobalUpdateQueue | ShardedUpdateQueue = (
                ShardedUpdateQueue(
                    routing_plan,
                    lanes=self.coordinator_lanes,
                    registry=self.registry,
                    journal=journal,
                    depth_limit=lane_depth_limit,
                )
            )
        else:
            # 1 lane = the paper's single global queue, byte-identical.
            self.queue = GlobalUpdateQueue(
                registry=self.registry, journal=journal
            )
        self.connections = ConnectionManager(self._handle_connection_event)
        self._thread: threading.Thread | None = None
        self._lane_threads: dict[str, threading.Thread] = {}
        self._lane_work: dict[str, object] = {}
        #: How long a blocked trigger waits for the coordinator thread to
        #: finish one sequence before giving up (section 4.4's serialized
        #: discipline means a stuck sequence must surface, not hang).
        self.coordinator_timeout: float = 30.0
        self._ldap_events = self.registry.counter(
            "metacomm_um_ldap_events_total",
            "Trigger events received from LTAP (LDAP-originated updates)",
        )
        self._ddus = self.registry.counter(
            "metacomm_um_ddus_total",
            "Direct device updates received from device filters",
            labelnames=("device",),
        )
        self._compensated = self.registry.counter(
            "metacomm_um_compensated_total",
            "Saga-style compensations of already-applied device updates",
            labelnames=("device",),
        )
        self._connection_events = self.registry.counter(
            "metacomm_um_connection_events_total",
            "Events delivered over explicit LTAP action connections",
            labelnames=("kind",),
        )
        self._sequence_seconds = self.registry.histogram(
            "metacomm_um_sequence_seconds",
            "Duration of one full update sequence (closure, fan-out, "
            "supplemental write)",
        )

        mappings: dict[str, CompiledMapping] = {}
        for binding in bindings:
            mappings.setdefault(binding.to_ldap.name, binding.to_ldap)
            mappings.setdefault(binding.from_ldap.name, binding.from_ldap)

        #: The staged update-sequence pipeline: enrich → plan → fanout →
        #: merge → supplemental, with abort/saga as explicit policies.
        #: ``bindings`` and ``closure`` live here; the UM's attributes of
        #: the same names are views onto the pipeline's.
        self.pipeline = UpdateSequencePipeline(
            bindings=bindings,
            closure=ClosureEngine(mappings.values()),
            ldap_filter=ldap_filter,
            error_log=error_log,
            policy=FailurePolicy(
                abort_on_failure=abort_on_failure,
                undo_on_failure=undo_on_failure,
            ),
            registry=self.registry,
            fanout_workers=fanout_workers,
            # Late-bound so a monkeypatched ``um._compensate`` is honored.
            compensate=lambda applied, trace=None: self._compensate(
                applied, trace
            ),
            journal=journal,
            health=health,
        )

        self.statistics = StatsView(
            {
                "ldap_events": lambda: self._ldap_events.value,
                "ddus": lambda: self._ddus.total(),
                "fanned_out": lambda: self.pipeline.fanout_total.total(),
                "reapplied": lambda: self.pipeline.reapplied_total.total(),
                "supplemental_writes": (
                    lambda: self.pipeline.supplemental_total.value
                ),
                "aborted_sequences": (
                    lambda: self.pipeline.aborted_total.total()
                ),
                "compensated": lambda: self._compensated.total(),
            }
        )

        gateway.register_trigger(
            Trigger(
                action=self._on_ldap_event,
                base=self.ldap_filter.people_base,
                filter="(objectClass=person)",
                name="metacomm-um",
            )
        )
        for binding in self.bindings:
            binding.filter.on_ddu(self._on_ddu)

    # -- pipeline views ------------------------------------------------------------

    @property
    def bindings(self) -> list[DeviceBinding]:
        """The device bindings, shared with the pipeline — appending a
        binding at run time (section 4.2's dynamic integration) affects
        both."""
        return self.pipeline.bindings

    @bindings.setter
    def bindings(self, bindings: Iterable[DeviceBinding]) -> None:
        self.pipeline.bindings = list(bindings)

    @property
    def closure(self) -> ClosureEngine:
        return self.pipeline.closure

    @closure.setter
    def closure(self, closure: ClosureEngine) -> None:
        self.pipeline.closure = closure

    # -- failure policy / fan-out knobs (delegated to the pipeline) ---------------

    @property
    def abort_on_failure(self) -> bool:
        return self.pipeline.policy.abort_on_failure

    @abort_on_failure.setter
    def abort_on_failure(self, value: bool) -> None:
        self.pipeline.policy = FailurePolicy(
            abort_on_failure=value,
            undo_on_failure=self.pipeline.policy.undo_on_failure,
        )

    @property
    def undo_on_failure(self) -> bool:
        """Section 4.4 future work: compensate already-applied device
        updates when a later one fails — the saga technique."""
        return self.pipeline.policy.undo_on_failure

    @undo_on_failure.setter
    def undo_on_failure(self, value: bool) -> None:
        self.pipeline.policy = FailurePolicy(
            abort_on_failure=self.pipeline.policy.abort_on_failure,
            undo_on_failure=value,
        )

    @property
    def fanout_workers(self) -> int:
        return self.pipeline.fanout_workers

    @fanout_workers.setter
    def fanout_workers(self, workers: int) -> None:
        self.pipeline.fanout_workers = workers

    def close(self) -> None:
        """Stop the coordinator thread and the fan-out worker pool."""
        self.stop()
        self.pipeline.close()

    # -- connection sink (persistent connections deliver sync batches) -----------

    def _handle_connection_event(self, event, connection) -> None:
        # Events arriving over explicit connections are already descriptors
        # processed elsewhere; the manager only tracks them for statistics.
        kind = (
            "persistent"
            if getattr(connection, "persistent", False)
            else "single_shot"
        )
        self._connection_events.labels(kind=kind).inc()

    # -- threaded coordinator (the paper's "main thread of the UM") -----------------

    def start(self) -> None:
        """Run the coordinator on its own thread.

        Section 4.4: "The main thread of the UM, the coordinator, iterates
        through the global update queue."  In threaded mode, LTAP's trigger
        claims the descriptor and *blocks until the coordinator signals
        completion* — so the entry lock is still held for the whole update
        sequence, exactly as in the synchronous mode.  Entry locks are
        owned by sessions (not threads), so the coordinator can re-enter
        the waiting client's lock for supplemental writes."""
        import queue as _queue

        if self.sharded:
            self._start_lanes()
            return
        if self._thread is not None:
            return
        self._work: "_queue.Queue" = _queue.Queue()
        self._stop = threading.Event()

        def coordinator_loop():
            while not self._stop.is_set():
                try:
                    job = self._work.get(timeout=0.05)
                except _queue.Empty:
                    continue
                item, session, done, failure = job
                try:
                    self._process(item, session)
                except Exception as exc:  # surfaced to the waiting trigger
                    failure.append(exc)
                finally:
                    done.set()

        self._thread = threading.Thread(
            target=coordinator_loop, name="metacomm-coordinator", daemon=True
        )
        self._thread.start()

    def _start_lanes(self) -> None:
        """The coordinator *pool*: one worker per lane plus the serial
        lane's.  Each worker runs the same staged pipeline the single
        coordinator would; the sharded queue's barrier protocol decides
        when each claimed item may start."""
        import queue as _queue

        if self._lane_threads:
            return
        self._stop = threading.Event()

        def lane_loop(label: str, work: "_queue.Queue") -> None:
            while not self._stop.is_set():
                try:
                    job = work.get(timeout=0.05)
                except _queue.Empty:
                    continue
                item, session, done, failure = job
                trace = (
                    session.state.get(OBS_TRACE)
                    if session is not None
                    else None
                )
                try:
                    if self.queue.wait_turn(
                        item,
                        stop=self._stop,
                        timeout=self.coordinator_timeout,
                        trace=trace,
                    ):
                        self._process(item, session)
                    else:
                        failure.append(
                            RuntimeError(
                                f"lane {item.lane} barrier wait gave up "
                                f"on serial {item.serial}"
                            )
                        )
                except Exception as exc:  # surfaced to the waiting trigger
                    failure.append(exc)
                finally:
                    # Always release the serial from the barrier — an
                    # abandoned outstanding serial would wedge every
                    # later serial-lane item.
                    self.queue.finish(item)
                    done.set()

        for label in self.queue.labels:
            work: "_queue.Queue" = _queue.Queue()
            thread = threading.Thread(
                target=lane_loop,
                args=(label, work),
                name=f"metacomm-lane-{label}",
                daemon=True,
            )
            self._lane_work[label] = work
            self._lane_threads[label] = thread
            thread.start()

    def stop(self) -> None:
        if self._thread is None and not self._lane_threads:
            return
        self._stop.set()
        # Kick every barrier waiter out of its condition wait immediately
        # — without this, each lane worker finishes its current 50 ms
        # wait tick before noticing the stop Event.
        self.queue.wake()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for thread in self._lane_threads.values():
            thread.join(timeout=5)
        self._lane_threads = {}
        self._lane_work = {}

    @property
    def threaded(self) -> bool:
        return self._thread is not None or bool(self._lane_threads)

    @property
    def sharded(self) -> bool:
        """True when the drain path runs multiple coordinator lanes."""
        return isinstance(self.queue, ShardedUpdateQueue)

    # -- admission control (the LTAP gateway hook) ----------------------------------

    def admission_check(self, request: LdapRequest, session: Session) -> None:
        """Gate one inbound LTAP update on coordinator-lane capacity.

        Installed as :attr:`LtapGateway.admission` when a
        ``lane_depth_limit`` is configured: runs *before* the directory
        write, builds a best-effort descriptor from the request so the
        routing oracle can name the lane the update would land on, and
        defers (``busy_policy="defer"``) or rejects with
        :class:`~repro.ldap.result.ServerBusyError` when that lane is at
        its depth limit.  A rejected update never reaches the directory,
        so nothing is lost, duplicated, or left to compensate."""
        if (
            not isinstance(self.queue, ShardedUpdateQueue)
            or self.queue.depth_limit is None
        ):
            return
        rename = isinstance(request, ModifyRdnRequest)
        descriptor = self._probe_descriptor(request)
        if descriptor is None:
            return
        timeout = self.busy_timeout if self.busy_policy == "defer" else None
        trace = session.state.get(OBS_TRACE) if session is not None else None
        try:
            self.queue.admit(
                descriptor, rename=rename, timeout=timeout, trace=trace
            )
        except QueueSaturatedError as exc:
            raise ServerBusyError(str(exc)) from exc

    def _probe_descriptor(
        self, request: LdapRequest
    ) -> UpdateDescriptor | None:
        """A descriptor approximating the one the real claim will build.

        Adds carry their full new image, so their lane is exact.  Modify
        and delete probes use the entry's *current* image (the request has
        not been applied yet) — the lane key derives from the record's
        device-key claims, which a plain modify does not move, so the
        approximation only drifts for cross-partition moves the real
        claim serializes anyway."""
        if isinstance(request, AddRequest):
            attrs = request.entry.attributes.to_dict()
            return UpdateDescriptor(
                op=UpdateOp.ADD,
                source="ldap",
                key=str(request.entry.dn),
                old=None,
                new=attrs,
                explicit=frozenset(n.lower() for n in attrs),
                origin="ldap",
            )
        if isinstance(
            request, (ModifyRequest, DeleteRequest, ModifyRdnRequest)
        ):
            entry = self.gateway._snapshot(request.dn)
            attrs = entry.attributes.to_dict() if entry is not None else None
            if isinstance(request, DeleteRequest):
                return UpdateDescriptor(
                    op=UpdateOp.DELETE,
                    source="ldap",
                    key=str(request.dn),
                    old=attrs,
                    new=None,
                    explicit=frozenset(
                        n.lower() for n in (attrs or {})
                    ),
                    origin="ldap",
                )
            new = dict(attrs) if attrs else {}
            explicit: set[str] = set()
            if isinstance(request, ModifyRequest):
                for mod in request.modifications:
                    explicit.add(mod.attribute.lower())
                    if mod.op is ModOp.DELETE and not mod.values:
                        new.pop(mod.attribute, None)
                    elif mod.values:
                        new[mod.attribute] = list(mod.values)
            return UpdateDescriptor(
                op=UpdateOp.MODIFY,
                source="ldap",
                key=str(request.dn),
                old=attrs,
                new=new or None,
                explicit=frozenset(explicit),
                origin="ldap",
            )
        return None

    # -- LDAP event intake ---------------------------------------------------------

    def _on_ldap_event(self, event: TriggerEvent) -> None:
        self._ldap_events.inc()
        trace = event.session.state.get(OBS_TRACE)
        descriptor = self.pipeline.intake_event(event, trace)
        if descriptor is None:
            return
        if self.sharded:
            # The descriptor folds a ModifyRDN into a MODIFY keyed by the
            # new DN, so the oracle needs the operation kind from the
            # trigger event to route renames onto the serial lane.
            rename = event.change_type is ChangeType.MODIFY_RDN
            if self._lane_threads:
                done = threading.Event()
                failure: list[Exception] = []
                # The work-queue insert runs inside claim's critical
                # section: serial assignment and hand-off must be atomic
                # or two clients claiming into one lane can enqueue out
                # of serial order and wedge the lane worker (see
                # ShardedUpdateQueue.claim).
                self.queue.claim(
                    descriptor,
                    trace=trace,
                    rename=rename,
                    dispatch=lambda item: self._lane_work[item.lane].put(
                        (item, event.session, done, failure)
                    ),
                )
                if not done.wait(timeout=self.coordinator_timeout):
                    raise RuntimeError(
                        "coordinator did not complete the sequence"
                    )
                if failure:
                    raise failure[0]
                return
            item = self.queue.claim(descriptor, trace=trace, rename=rename)
            # Synchronous sharded mode: the client thread is its own lane
            # worker — the barrier still orders it against concurrent
            # claims from other client threads.
            try:
                if not self.queue.wait_turn(
                    item, timeout=self.coordinator_timeout, trace=trace
                ):
                    raise RuntimeError(
                        "coordinator did not complete the sequence"
                    )
                self._process(item, event.session)
            finally:
                self.queue.finish(item)
            return
        if self._thread is not None:
            # Atomic claim: the descriptor gets its serial and goes
            # straight to the coordinator *paired with its own session*.
            # The old enqueue-then-dequeue dance could hand this trigger a
            # different session's item when two clients interleaved,
            # pointing the supplemental write at the wrong entry lock.
            item = self.queue.claim(descriptor, trace=trace)
            done = threading.Event()
            failure: list[Exception] = []
            self._work.put((item, event.session, done, failure))
            if not done.wait(timeout=self.coordinator_timeout):
                raise RuntimeError("coordinator did not complete the sequence")
            if failure:
                raise failure[0]
            return
        self.queue.enqueue(descriptor, trace=trace)
        self._drain(event.session)

    def _descriptor_from_event(
        self, event: TriggerEvent
    ) -> UpdateDescriptor | None:
        return _descriptor_from_event(event)

    # -- DDU intake -------------------------------------------------------------------

    def _on_ddu(self, source_filter: Filter, descriptor: UpdateDescriptor) -> None:
        """Section 4.4's DDU sequence: device filter → LDAP filter → LTAP."""
        binding = self._binding_of(source_filter)
        self._ddus.labels(device=binding.name).inc()
        trace = (
            self.tracer.start("ddu", device=binding.name, key=str(descriptor.key))
            if self.tracer is not None
            else None
        )
        if self.journal is not None:
            self.journal.emit(
                DDU_RECEIVED,
                trace=trace,
                device=binding.name,
                op=descriptor.op.value,
                key=str(descriptor.key),
            )
        try:
            update = self.pipeline.intake_ddu(binding, descriptor, trace)
            if update is None:
                return
            session = Session()
            if trace is not None:
                session.state[OBS_TRACE] = trace
            try:
                with trace_span(trace, "ddu.forward", device=binding.name):
                    self.ldap_filter.forward_ddu(
                        update, origin=binding.name, session=session
                    )
            except FilterError as exc:
                self.pipeline.aborted_total.labels(target="ldap").inc()
                self.error_log.record(
                    target="ldap",
                    message=str(exc),
                    context=f"DDU from {binding.name} key={descriptor.key}",
                )
            finally:
                session.state.pop(OBS_TRACE, None)
        finally:
            if trace is not None:
                trace.finish()

    def _binding_of(self, source_filter: Filter) -> DeviceBinding:
        for binding in self.bindings:
            if binding.filter is source_filter:
                return binding
        raise KeyError(f"no binding for filter {source_filter!r}")

    # -- the coordinator --------------------------------------------------------------

    def _drain(self, session: Session) -> None:
        trace = session.state.get(OBS_TRACE) if session is not None else None
        while True:
            item = self.queue.dequeue(trace=trace)
            if item is None:
                return
            self._process(item, session)

    def _process(self, item: QueuedUpdate, session: Session) -> None:
        trace = (
            session.state.get(OBS_TRACE) if session is not None else None
        )
        start = time.perf_counter()
        if trace is not None and item.enqueued_at:
            # The enqueue→dequeue leg: its endpoints live in different
            # frames (and, in threaded mode, different threads), so it is
            # recorded from the enqueue stamp rather than measured inline.
            trace.record(
                "queue.wait", start - item.enqueued_at, serial=item.serial
            )
        try:
            self.pipeline.run(
                item.descriptor, session, trace, serial=item.serial
            )
        finally:
            self._sequence_seconds.observe(time.perf_counter() - start)

    def _compensate(
        self,
        applied: list[tuple[DeviceBinding, TargetUpdate, dict | None]],
        trace=None,
    ) -> None:
        """Undo already-applied device updates in reverse order (sagas)."""
        for binding, update, before in reversed(applied):
            try:
                with trace_span(trace, "filter.compensate", device=binding.name):
                    binding.filter.compensate(update, before)
                self._compensated.labels(device=binding.name).inc()
                if self.journal is not None:
                    self.journal.emit(
                        SAGA_COMPENSATED,
                        trace=trace,
                        device=binding.name,
                        action=update.action.value,
                        key=update.key,
                    )
            except Exception as exc:  # compensation is best-effort
                self.error_log.record(
                    target=binding.name,
                    message=f"compensation failed: {exc}",
                    context=f"undo of {update.action.value} key={update.key}",
                )

    # -- public status -------------------------------------------------------------------

    def binding(self, name: str) -> DeviceBinding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise KeyError(f"no device binding named {name!r}")
