"""Legacy telecom device simulators.

The proprietary repositories MetaComm integrates: a Definity PBX (with an
OSSI-style admin terminal) and a voice messaging platform.  Both exhibit
the transactional weaknesses the paper's consistency machinery is built
around: weak typing, single-record atomicity, commit-time notifications,
and no update interception.
"""

from .base import (
    Device,
    DeviceError,
    DeviceNotification,
    DeviceUnavailableError,
    DuplicateRecordError,
    FieldSpec,
    InvalidFieldError,
    NoSuchRecordError,
)
from .messaging.platform import SUBSCRIBER_FIELDS, MessagingPlatform
from .pbx.definity import DefinityPbx, partition_expression
from .pbx.ossi import OssiTerminal, TerminalResponse
from .pbx.station import STATION_FIELD_NAMES, STATION_FIELDS

__all__ = [
    "Device",
    "DeviceError",
    "DeviceNotification",
    "DeviceUnavailableError",
    "DefinityPbx",
    "DuplicateRecordError",
    "FieldSpec",
    "InvalidFieldError",
    "MessagingPlatform",
    "NoSuchRecordError",
    "OssiTerminal",
    "STATION_FIELDS",
    "STATION_FIELD_NAMES",
    "SUBSCRIBER_FIELDS",
    "TerminalResponse",
    "partition_expression",
]
