"""Legacy device simulation framework.

The paper's devices — a Definity PBX and a voice messaging platform — are
exactly the kind of repository MetaComm exists to tame: weakly typed
(everything is a string, over-long values silently truncated), atomic only
at single-record granularity, no triggers beyond a change notification
"noted during transaction commit", and administered through proprietary
interfaces.  :class:`Device` models those properties faithfully so that
the Update Manager's machinery is exercised against the same weaknesses.

Devices are usable entirely on their own (the paper's requirement: "the
devices must be usable with or without MetaComm") — direct device updates
(DDUs) are just calls made by some other agent.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (links imports base)
    from concurrent.futures import Future

    from .links import DeviceLink


# Thread-local marker set by the link dispatcher while it executes queued
# operations: the round-trip was already paid for the whole batch, so the
# per-op link simulation and per-op telemetry are suppressed, and commit
# notifications are *deferred* to the dispatcher's notifier thread instead
# of being delivered inline (a DDU listener may fan back into the links and
# must not run on the dispatcher itself).
_LINK_EXECUTION = threading.local()


@contextmanager
def link_execution(sink: list["DeviceNotification"]):
    """Mark the current thread as executing inside a device-link flush."""
    _LINK_EXECUTION.sink = sink
    try:
        yield
    finally:
        _LINK_EXECUTION.sink = None


def _link_sink() -> "list[DeviceNotification] | None":
    return getattr(_LINK_EXECUTION, "sink", None)


class DeviceError(Exception):
    """Base class for device failures (legacy-style terse messages)."""


class NoSuchRecordError(DeviceError):
    pass


class DuplicateRecordError(DeviceError):
    pass


class InvalidFieldError(DeviceError):
    pass


class DeviceUnavailableError(DeviceError):
    """The device is disconnected/unreachable (used for failure injection
    and disconnected-operation experiments)."""


@dataclass(frozen=True)
class FieldSpec:
    """One field of a device record.

    ``max_length`` models the weak typing of legacy gear: longer values
    are *silently truncated*, never rejected.  ``validator`` returns an
    error string for genuinely malformed values (e.g. non-numeric
    extension).  ``generated`` fields are assigned by the device itself
    and cannot be written by callers (section 5.5's mailbox id)."""

    name: str
    max_length: int = 64
    required: bool = False
    generated: bool = False
    validator: Callable[[str], str | None] | None = None


@dataclass(frozen=True)
class DeviceNotification:
    """Change notification emitted at transaction commit.

    ``agent`` identifies the management session that made the change; the
    MetaComm device filter uses it to tell direct device updates (DDUs)
    apart from the Update Manager's own propagated writes."""

    device: str
    op: str  # "add" | "modify" | "delete"
    key: str
    before: dict[str, str] | None
    after: dict[str, str] | None
    agent: str


NotificationListener = Callable[[DeviceNotification], None]


class Device:
    """A generic legacy repository: flat records keyed by one field."""

    def __init__(
        self,
        name: str,
        key_field: str,
        fields: Iterable[FieldSpec],
    ):
        self.name = name
        self.key_field = key_field
        self.fields: dict[str, FieldSpec] = {f.name.lower(): f for f in fields}
        if key_field.lower() not in self.fields:
            raise ValueError(f"key field {key_field!r} is not declared")
        self._records: dict[str, dict[str, str]] = {}
        self._lock = threading.RLock()
        self._listeners: list[NotificationListener] = []
        self.available = True
        #: Simulated management-link round-trip (seconds) paid by every
        #: write operation, before the record lock is taken — real gear is
        #: reached over a serial craft interface or network hop, and the
        #: fan-out benchmarks use this to model that latency.
        self.link_latency: float = 0.0
        #: When True the management link is modelled as a *serial craft
        #: channel*: concurrent write ops queue for the channel and each
        #: holds it for its full round-trip(s).  Real OSSI terminals are
        #: single administration sessions — two blocking writers cannot
        #: overlap their round-trips.  Off by default so existing tests and
        #: benchmarks keep the optimistic parallel-link model.
        self.link_serial: bool = False
        #: Number of OSSI commands one mutating op costs on the blocking
        #: path (e.g. a messaging add = add subscriber + set COS + enable).
        #: The pipelined link stream amortises these: a flushed batch is one
        #: command stream, i.e. one round-trip, regardless of op count.
        self.link_commands: int = 1
        self._channel_lock = threading.Lock()
        self._channel_free_at = 0.0
        #: Attached :class:`repro.devices.links.DeviceLink` (if any) — set
        #: by :meth:`attach_link`, used by the non-blocking :meth:`submit`.
        self.link: "DeviceLink | None" = None
        #: Optional fault hook: called as (op, key) before each update and
        #: may raise to simulate device errors.
        self.fault_injector: Callable[[str, str], None] | None = None
        #: Optional link-telemetry hook: called as
        #: ``(op, key, seconds, ok)`` after every write operation with the
        #: wall-clock of the whole op (including the simulated link
        #: round-trip).  The MetaComm health board attaches one per device
        #: (:meth:`repro.obs.health.HealthBoard.link_observer`); direct
        #: device updates and sync pushes are observed too, since they
        #: travel the same management link.
        self.op_observer: Callable[[str, str, float, bool], None] | None = None
        self.statistics = {"adds": 0, "modifies": 0, "deletes": 0, "reads": 0}

    # -- notifications -------------------------------------------------------

    def add_listener(self, listener: NotificationListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: NotificationListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, notification: DeviceNotification) -> None:
        sink = _link_sink()
        if sink is not None:
            # Inside a link flush: queue for the dispatcher's notifier
            # thread, which delivers in commit order.
            sink.append(notification)
            return
        for listener in list(self._listeners):
            listener(notification)

    # -- validation (weak typing) -------------------------------------------------

    def _coerce(self, record: Mapping[str, str], adding: bool) -> dict[str, str]:
        out: dict[str, str] = {}
        for name, value in record.items():
            spec = self.fields.get(name.lower())
            if spec is None:
                raise InvalidFieldError(f"{self.name}: no such field {name!r}")
            if value is None:
                continue
            text = str(value)
            # Weak typing: silent truncation, exactly like the real gear.
            text = text[: spec.max_length]
            if spec.validator is not None:
                problem = spec.validator(text)
                if problem:
                    raise InvalidFieldError(f"{self.name}: {spec.name}: {problem}")
            out[spec.name] = text
        if adding:
            for spec in self.fields.values():
                if spec.required and not spec.generated and spec.name not in out:
                    raise InvalidFieldError(
                        f"{self.name}: missing required field {spec.name!r}"
                    )
        return out

    def _check_available(self) -> None:
        if not self.available:
            raise DeviceUnavailableError(f"{self.name}: device unreachable")

    def _fault(self, op: str, key: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector(op, key)

    def _link(self) -> None:
        """Pay one management-link round-trip for a blocking write.

        Suppressed inside a link flush — the pipelined stream already paid
        one round-trip for the whole batch.  With :attr:`link_serial` the
        op reserves the craft channel for ``link_commands`` sequential
        round-trips (the slot is computed under the channel lock, the wait
        happens outside it)."""
        if _link_sink() is not None:
            return
        latency = self.link_latency
        if latency <= 0:
            return
        if self.link_serial:
            self._wait_channel(latency * max(1, self.link_commands))
        else:
            time.sleep(latency)

    def reserve_channel(self, duration: float) -> float:
        """Reserve the next free slot on the serial craft channel.

        Returns the monotonic time at which the reserved round-trip
        completes; does not block.  The link dispatcher uses this as the
        batch-completion deadline for a flushed command stream."""
        with self._channel_lock:
            start = max(time.monotonic(), self._channel_free_at)
            self._channel_free_at = start + duration
        return start + duration

    def _wait_channel(self, duration: float) -> None:
        wake = self.reserve_channel(duration)
        delay = wake - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    @contextmanager
    def _observed(self, op: str, key: str):
        """Time one write op for the ``op_observer`` link-telemetry hook.

        A no-op when no observer is attached; observer exceptions are
        swallowed — telemetry must never change device semantics.
        Suppressed inside a link flush: the dispatcher reports the full
        submit-to-completion latency itself via :meth:`observe_op`, and a
        second near-zero sample here would pollute the reservoir."""
        observer = self.op_observer
        if observer is None or _link_sink() is not None:
            yield
            return
        start = time.perf_counter()
        ok = True
        try:
            yield
        except Exception:
            ok = False
            raise
        finally:
            try:
                observer(op, str(key), time.perf_counter() - start, ok)
            except Exception:
                pass

    # -- hooks for subclasses ------------------------------------------------------

    def _generate_fields(self, record: dict[str, str]) -> None:
        """Fill device-generated fields at add time (override in subclasses)."""

    def _validate_record(self, record: dict[str, str]) -> None:
        """Cross-field validation hook (override in subclasses)."""

    # -- operations ------------------------------------------------------------

    def add(self, record: Mapping[str, str], agent: str = "local") -> dict[str, str]:
        """Add a record; returns the committed record (with generated fields)."""
        with self._observed("add", record.get(self.key_field, "")):
            return self._add(record, agent)

    def _add(self, record: Mapping[str, str], agent: str) -> dict[str, str]:
        self._check_available()
        self._link()
        committed = self._coerce(record, adding=True)
        for name in committed:
            if self.fields[name.lower()].generated:
                raise InvalidFieldError(
                    f"{self.name}: field {name!r} is assigned by the device"
                )
        with self._lock:
            key = committed.get(self.key_field)
            if not key:
                raise InvalidFieldError(
                    f"{self.name}: missing key field {self.key_field!r}"
                )
            self._fault("add", key)
            if key in self._records:
                raise DuplicateRecordError(f"{self.name}: {self.key_field}={key} exists")
            self._generate_fields(committed)
            self._validate_record(committed)
            self._records[key] = dict(committed)
            self.statistics["adds"] += 1
            notification = DeviceNotification(
                self.name, "add", key, None, dict(committed), agent
            )
        # Notifications are delivered after commit, outside the record
        # lock — a listener (the MetaComm filter) may call back into the
        # device from another thread.
        self._notify(notification)
        return dict(committed)

    def modify(
        self,
        key: str,
        changes: Mapping[str, str | None],
        agent: str = "local",
    ) -> dict[str, str]:
        """Modify fields of one record; a None value removes the field.
        The whole change commits atomically or not at all."""
        with self._observed("modify", key):
            return self._modify(key, changes, agent)

    def _modify(
        self,
        key: str,
        changes: Mapping[str, str | None],
        agent: str,
    ) -> dict[str, str]:
        self._check_available()
        self._link()
        key = str(key)
        with self._lock:
            self._fault("modify", key)
            current = self._records.get(key)
            if current is None:
                raise NoSuchRecordError(f"{self.name}: no {self.key_field}={key}")
            removed = [n for n, v in changes.items() if v is None]
            updates = self._coerce(
                {n: v for n, v in changes.items() if v is not None}, adding=False
            )
            for name in updates:
                if self.fields[name.lower()].generated:
                    raise InvalidFieldError(
                        f"{self.name}: field {name!r} is assigned by the device"
                    )
            updated = dict(current)
            for name in removed:
                spec = self.fields.get(name.lower())
                if spec is None:
                    raise InvalidFieldError(f"{self.name}: no such field {name!r}")
                if spec.name == self.key_field or spec.required:
                    raise InvalidFieldError(
                        f"{self.name}: cannot remove field {spec.name!r}"
                    )
                updated.pop(spec.name, None)
            updated.update(updates)
            new_key = updated.get(self.key_field)
            if not new_key:
                raise InvalidFieldError(f"{self.name}: key cannot be empty")
            if new_key != key and new_key in self._records:
                raise DuplicateRecordError(
                    f"{self.name}: {self.key_field}={new_key} exists"
                )
            self._validate_record(updated)
            del self._records[key]
            self._records[new_key] = updated
            self.statistics["modifies"] += 1
            notification = DeviceNotification(
                self.name, "modify", key, dict(current), dict(updated), agent
            )
        self._notify(notification)
        return dict(updated)

    def delete(self, key: str, agent: str = "local") -> dict[str, str]:
        with self._observed("delete", key):
            return self._delete(key, agent)

    def _delete(self, key: str, agent: str) -> dict[str, str]:
        self._check_available()
        self._link()
        key = str(key)
        with self._lock:
            self._fault("delete", key)
            current = self._records.pop(key, None)
            if current is None:
                raise NoSuchRecordError(f"{self.name}: no {self.key_field}={key}")
            self.statistics["deletes"] += 1
            notification = DeviceNotification(
                self.name, "delete", key, dict(current), None, agent
            )
        self._notify(notification)
        return dict(current)

    # -- non-blocking link API ---------------------------------------------------

    def attach_link(self, link: "DeviceLink") -> None:
        """Attach the event-driven device link used by :meth:`submit`."""
        self.link = link

    def submit(
        self, op: str, *args, agent: str = "local", **kwargs
    ) -> "Future[dict[str, str]]":
        """Queue one write on the device link; returns a Future.

        The legacy blocking calls (:meth:`add` …) remain the standalone
        DDU surface; this is the pipelined alternative for callers that
        can overlap round-trips.  Requires an attached link."""
        if self.link is None:
            raise DeviceError(f"{self.name}: no device link attached")
        if op not in ("add", "modify", "delete"):
            raise InvalidFieldError(f"{self.name}: cannot submit op {op!r}")
        method = getattr(self, op)
        if op == "add":
            key = str(args[0].get(self.key_field, "")) if args else ""
        else:
            key = str(args[0]) if args else ""
        return self.link.submit(
            lambda: method(*args, agent=agent, **kwargs), op=op, key=key
        )

    def observe_op(self, op: str, key: str, seconds: float, ok: bool) -> None:
        """Feed one completed link op into the ``op_observer`` hook.

        Called by the link dispatcher with submit-to-completion wall-clock
        so the HealthBoard reservoirs see the same signal they would from
        the blocking path."""
        observer = self.op_observer
        if observer is None:
            return
        try:
            observer(op, str(key), seconds, ok)
        except Exception:
            pass

    # -- reads -----------------------------------------------------------------

    def get(self, key: str) -> dict[str, str]:
        self._check_available()
        with self._lock:
            self.statistics["reads"] += 1
            record = self._records.get(str(key))
            if record is None:
                raise NoSuchRecordError(f"{self.name}: no {self.key_field}={key}")
            return dict(record)

    def contains(self, key: str) -> bool:
        with self._lock:
            return str(key) in self._records

    def dump(self) -> list[dict[str, str]]:
        """All records — the synchronization API of section 4.1."""
        self._check_available()
        with self._lock:
            return [dict(r) for r in self._records.values()]

    def size(self) -> int:
        with self._lock:
            return len(self._records)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._records)
