"""Event-driven device links: pipelined command streams with batching.

The fan-out stage used to burn one worker thread per device write, each
sleeping through a full management-link round-trip (``Device._link``).
This module replaces that with the link layer the ROADMAP calls the
"fast as hardware allows" refactor:

* each device gets a :class:`DeviceLink` — a FIFO of submitted write
  operations plus a bounded *in-flight window* of flushed batches;
* one :class:`LinkDispatcher` thread drives every link: it coalesces up
  to ``batch`` queued ops into one *pipelined OSSI command stream*, pays
  **one** round-trip for the whole batch (a channel-slot reservation on
  serial craft channels, see :meth:`Device.reserve_channel`), and
  executes the ops when the stream's completion deadline arrives;
* callers get :class:`concurrent.futures.Future` results from
  :meth:`DeviceLink.submit`, so one coordinator lane can keep many
  devices' round-trips in flight at once;
* a full window *and* full submit queue surfaces as :class:`LinkBusy`
  (or a bounded blocking submit), the bottom of the backpressure chain
  that ends in LTAP's ``ServerBusy`` result (docs/DEVICE_LINKS.md).

Ordering: per link the submit queue is FIFO, batches are formed and
executed strictly in queue order, and round-trip deadlines are
monotonic per device — so per-record (indeed per-device) operation
order is exactly submission order, the property the window=1/batch=1
equivalence test pins against the paper-serial path.

Commit notifications raised while a batch executes are *deferred*: the
dispatcher must never run a DDU listener inline (the listener fans back
into the links and would deadlock the event loop), so a dedicated
notifier thread delivers them FIFO after the ops commit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .base import Device, DeviceError, DeviceNotification, link_execution

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.events import EventJournal
    from ..obs.metrics import MetricsRegistry

__all__ = ["LinkBusy", "LinkConfig", "DeviceLink", "LinkDispatcher"]


class LinkBusy(DeviceError):
    """The link's submit queue is full and the caller asked not to wait."""


@dataclass(frozen=True)
class LinkConfig:
    """Tuning knobs for one device link.

    ``window``
        Maximum flushed batches (command streams) in flight at once.
    ``batch``
        Maximum ops coalesced into one command stream.
    ``queue_limit``
        Maximum ops waiting to be flushed; beyond it ``submit`` defers
        (bounded wait) or rejects with :class:`LinkBusy`.
    """

    window: int = 4
    batch: int = 8
    queue_limit: int = 64

    def __post_init__(self) -> None:
        if self.window < 1 or self.batch < 1 or self.queue_limit < 1:
            raise ValueError("window, batch and queue_limit must be >= 1")


@dataclass
class _LinkOp:
    fn: Callable[[], object]
    op: str
    key: str
    future: Future
    submitted: float


@dataclass
class _Batch:
    link: "DeviceLink"
    ops: list[_LinkOp]
    deadline: float
    flushed: float = field(default=0.0)


class DeviceLink:
    """Pipelined command stream for one device.

    All mutable state is guarded by the owning dispatcher's condition —
    the link is a passive record the dispatcher's event loop drives."""

    def __init__(self, device: Device, config: LinkConfig, dispatcher: "LinkDispatcher"):
        self.device = device
        self.name = device.name
        self.config = config
        self._dispatcher = dispatcher
        # Guarded by dispatcher._cond:
        self._pending: deque[_LinkOp] = deque()
        self._inflight: deque[_Batch] = deque()
        self._paused = False
        self._batch_hist: dict[int, int] = {}
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "flushes": 0,
            "deferred": 0,
            "rejected": 0,
            "peak_pending": 0,
        }

    # -- submit side (any thread) ------------------------------------------------

    def submit(
        self,
        fn: Callable[[], object],
        *,
        op: str = "apply",
        key: str = "",
        timeout: float | None = None,
    ) -> Future:
        """Queue one operation; returns a Future resolved at flush time.

        Blocks while the submit queue is at ``queue_limit`` (bounded by
        ``timeout`` if given, raising :class:`LinkBusy` on expiry; pass
        ``timeout=0`` for a non-blocking attempt)."""
        dispatcher = self._dispatcher
        entry = _LinkOp(fn, op, key, Future(), time.monotonic())
        deadline = None if timeout is None else entry.submitted + timeout
        waited = False
        with dispatcher._cond:
            while True:
                if dispatcher._stopped:
                    raise DeviceError(f"{self.name}: device link stopped")
                if len(self._pending) < self.config.queue_limit:
                    break
                remaining = 0.25
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._stats["rejected"] += 1
                        dispatcher._note_rejected(self.name)
                        raise LinkBusy(
                            f"{self.name}: link queue full "
                            f"({self.config.queue_limit} ops pending)"
                        )
                    remaining = min(remaining, 0.25)
                if not waited:
                    waited = True
                    self._stats["deferred"] += 1
                    dispatcher._note_deferred(self.name)
                dispatcher._cond.wait(remaining)
            self._pending.append(entry)
            self._stats["submitted"] += 1
            if len(self._pending) > self._stats["peak_pending"]:
                self._stats["peak_pending"] = len(self._pending)
            dispatcher._cond.notify_all()
        return entry.future

    # -- stall injection -----------------------------------------------------------

    def pause(self) -> None:
        """Stop flushing (simulates a stalled device link)."""
        with self._dispatcher._cond:
            self._paused = True

    def resume(self) -> None:
        with self._dispatcher._cond:
            self._paused = False
            self._dispatcher._cond.notify_all()

    # -- introspection -----------------------------------------------------------

    def saturated(self) -> bool:
        """True when both the in-flight window and the submit queue are full."""
        with self._dispatcher._cond:
            return (
                len(self._inflight) >= self.config.window
                and len(self._pending) >= self.config.queue_limit
            )

    def snapshot(self) -> dict:
        with self._dispatcher._cond:
            pending = len(self._pending)
            inflight = len(self._inflight)
            inflight_ops = sum(len(b.ops) for b in self._inflight)
            stats = dict(self._stats)
            hist = dict(sorted(self._batch_hist.items()))
            paused = self._paused
        return {
            "device": self.name,
            "window": self.config.window,
            "batch": self.config.batch,
            "queue_limit": self.config.queue_limit,
            "pending": pending,
            "inflight": inflight,
            "inflight_ops": inflight_ops,
            "paused": paused,
            "batch_sizes": hist,
            **stats,
        }


class LinkDispatcher:
    """Single event-loop thread driving every registered device link.

    The loop never sleeps through a round-trip: a flush *reserves* the
    device channel (or just stamps ``now + latency``) and records the
    completion time as the batch deadline; the loop then waits on its
    condition until the nearest deadline, so any number of links'
    round-trips overlap on one thread."""

    #: Idle wait between wake-ups when no deadline is nearer (seconds).
    POLL = 0.05

    def __init__(
        self,
        metrics: "MetricsRegistry | None" = None,
        journal: "EventJournal | None" = None,
    ):
        self._cond = threading.Condition()
        self._links: list[DeviceLink] = []
        self._by_name: dict[str, DeviceLink] = {}
        self._stopped = False
        self._started = False
        self._thread: threading.Thread | None = None
        # Deferred commit notifications, delivered FIFO by the notifier
        # thread (guarded by _notify_cond, never held with _cond).
        self._notify_cond = threading.Condition()
        self._notifications: deque[tuple[Device, DeviceNotification]] = deque()
        self._notify_stop = False
        self._notifier: threading.Thread | None = None
        self.journal = journal
        self._m_ops = self._m_flushes = self._m_batch = None
        self._m_inflight = self._m_deferred = self._m_rejected = None
        if metrics is not None:
            self._m_ops = metrics.counter(
                "metacomm_link_ops_total",
                "Operations completed over device links",
                labelnames=("device", "outcome"),
            )
            self._m_flushes = metrics.counter(
                "metacomm_link_flushes_total",
                "Command-stream flushes (one round-trip each) per device link",
                labelnames=("device",),
            )
            self._m_batch = metrics.histogram(
                "metacomm_link_batch_ops",
                "Operations coalesced per flushed command stream",
                labelnames=("device",),
                buckets=(1, 2, 4, 8, 16, 32, 64),
            )
            self._m_inflight = metrics.gauge(
                "metacomm_link_inflight_batches",
                "Command streams currently in flight per device link",
                labelnames=("device",),
            )
            self._m_deferred = metrics.counter(
                "metacomm_link_submit_deferred_total",
                "Submits that had to wait for link-queue space",
                labelnames=("device",),
            )
            self._m_rejected = metrics.counter(
                "metacomm_link_submit_rejected_total",
                "Submits rejected because the link queue stayed full",
                labelnames=("device",),
            )

    # -- registration ------------------------------------------------------------

    def register(self, device: Device, config: LinkConfig | None = None) -> DeviceLink:
        link = DeviceLink(device, config or LinkConfig(), self)
        with self._cond:
            if self._stopped:
                raise DeviceError("link dispatcher stopped")
            self._links.append(link)
            self._by_name[link.name] = link
        device.attach_link(link)
        return link

    def link(self, name: str) -> DeviceLink:
        with self._cond:
            return self._by_name[name]

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._started or self._stopped:
                return
            self._started = True
        self._thread = threading.Thread(
            target=self._run, name="metacomm-links", daemon=True
        )
        self._notifier = threading.Thread(
            target=self._run_notifier, name="metacomm-link-notify", daemon=True
        )
        self._thread.start()
        self._notifier.start()

    def stop(self) -> None:
        """Stop both threads; fails any unflushed futures so no waiter hangs."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._notify_cond:
            self._notify_stop = True
            self._notify_cond.notify_all()
        if self._notifier is not None:
            self._notifier.join()
            self._notifier = None
        orphans: list[_LinkOp] = []
        with self._cond:
            for link in self._links:
                for batch in link._inflight:
                    orphans.extend(batch.ops)
                link._inflight.clear()
                orphans.extend(link._pending)
                link._pending.clear()
        for op in orphans:
            op.future.set_exception(DeviceError("device link stopped"))

    # -- event loop --------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                now = time.monotonic()
                ready, timeout = self._collect_locked(now)
                if not ready:
                    self._cond.wait(timeout)
                    continue
            for batch in ready:
                self._execute(batch)

    def _collect_locked(self, now: float) -> tuple[list[_Batch], float]:
        """Pop due batches and form new ones; caller holds ``_cond``.

        Returns the batches to execute and, when none are due, how long
        to wait until the nearest deadline."""
        ready: list[_Batch] = []
        next_deadline: float | None = None
        freed = False
        for link in self._links:
            # Complete due command streams strictly FIFO per link.
            while link._inflight and link._inflight[0].deadline <= now:
                ready.append(link._inflight.popleft())
                freed = True
            # Coalesce queued ops into new streams while the window has room.
            while (
                link._pending
                and not link._paused
                and len(link._inflight) < link.config.window
            ):
                ops = [
                    link._pending.popleft()
                    for _ in range(min(link.config.batch, len(link._pending)))
                ]
                freed = True
                device = link.device
                latency = device.link_latency
                if latency <= 0:
                    deadline = now
                elif device.link_serial:
                    # One pipelined round-trip for the whole stream.
                    deadline = device.reserve_channel(latency)
                else:
                    deadline = now + latency
                batch = _Batch(link, ops, deadline, flushed=now)
                if deadline <= now:
                    ready.append(batch)
                else:
                    link._inflight.append(batch)
            if link._inflight:
                head = link._inflight[0].deadline
                if next_deadline is None or head < next_deadline:
                    next_deadline = head
            if self._m_inflight is not None:
                self._m_inflight.labels(device=link.name).set(len(link._inflight))
        if freed:
            # Queue space and window slots opened up — wake submitters.
            self._cond.notify_all()
        if next_deadline is None:
            return ready, self.POLL
        return ready, max(0.0, min(self.POLL, next_deadline - now))

    def _execute(self, batch: _Batch) -> None:
        """Run one flushed command stream's ops (dispatcher thread, no lock)."""
        link = batch.link
        device = link.device
        sink: list[DeviceNotification] = []
        results: list[tuple[_LinkOp, object, BaseException | None]] = []
        with link_execution(sink):
            for op in batch.ops:
                try:
                    results.append((op, op.fn(), None))
                except BaseException as exc:
                    results.append((op, None, exc))
        done = time.monotonic()
        if sink:
            with self._notify_cond:
                self._notifications.extend((device, n) for n in sink)
                self._notify_cond.notify_all()
        ok_count = fail_count = 0
        for op, result, exc in results:
            elapsed = done - op.submitted
            if exc is None:
                ok_count += 1
                device.observe_op(op.op, op.key, elapsed, True)
                op.future.set_result(result)
            else:
                fail_count += 1
                device.observe_op(op.op, op.key, elapsed, False)
                op.future.set_exception(exc)
        with self._cond:
            link._stats["completed"] += ok_count
            link._stats["failed"] += fail_count
            link._stats["flushes"] += 1
            size = len(batch.ops)
            link._batch_hist[size] = link._batch_hist.get(size, 0) + 1
        if self._m_ops is not None:
            if ok_count:
                self._m_ops.labels(device=link.name, outcome="ok").inc(ok_count)
            if fail_count:
                self._m_ops.labels(device=link.name, outcome="error").inc(fail_count)
            self._m_flushes.labels(device=link.name).inc()
            self._m_batch.labels(device=link.name).observe(size)
        if self.journal is not None:
            from ..obs.events import LINK_FLUSH

            self.journal.emit(
                LINK_FLUSH,
                device=link.name,
                ops=size,
                ok=ok_count,
                failed=fail_count,
            )

    # -- notifier thread ----------------------------------------------------------

    def _run_notifier(self) -> None:
        while True:
            with self._notify_cond:
                while not self._notifications:
                    if self._notify_stop:
                        return
                    self._notify_cond.wait(self.POLL)
                device, notification = self._notifications.popleft()
            # Delivered outside both conditions: a DDU listener may fan
            # back into the links (submit) or the LTAP gateway.
            device._notify(notification)

    # -- counters used by DeviceLink.submit ---------------------------------------

    def _note_deferred(self, name: str) -> None:
        if self._m_deferred is not None:
            self._m_deferred.labels(device=name).inc()

    def _note_rejected(self, name: str) -> None:
        if self._m_rejected is not None:
            self._m_rejected.labels(device=name).inc()

    # -- introspection -----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        with self._cond:
            links = list(self._links)
        return [link.snapshot() for link in links]
