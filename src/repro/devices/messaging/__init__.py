"""Voice messaging platform simulator."""

from .platform import SUBSCRIBER_FIELDS, MessagingPlatform

__all__ = ["MessagingPlatform", "SUBSCRIBER_FIELDS"]
