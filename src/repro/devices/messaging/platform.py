"""The voice messaging platform simulator.

Subscribers are keyed by telephone number.  On add, the platform assigns a
unique mailbox id — the "device-generated information" of paper section
5.5 that MetaComm must fold back into the directory after all other
devices are updated.
"""

from __future__ import annotations

import itertools
from ..base import Device, FieldSpec


def _numeric(value: str) -> str | None:
    return None if value.isdigit() else "must be numeric"


def _pin(value: str) -> str | None:
    if not value.isdigit() or not 4 <= len(value) <= 8:
        return "PIN must be 4-8 digits"
    return None


SUBSCRIBER_FIELDS = (
    FieldSpec("TelephoneNumber", max_length=20, required=True),
    FieldSpec("SubscriberName", max_length=30),
    FieldSpec("MailboxId", max_length=12, generated=True),
    FieldSpec("COS", max_length=2, validator=_numeric),
    FieldSpec("PIN", max_length=8, validator=_pin),
    FieldSpec("Language", max_length=8),
)


class MessagingPlatform(Device):
    """A voice-mail system with device-assigned mailbox identifiers."""

    def __init__(self, name: str = "messaging", mailbox_prefix: str = "MB"):
        super().__init__(
            name, key_field="TelephoneNumber", fields=SUBSCRIBER_FIELDS
        )
        self.mailbox_prefix = mailbox_prefix
        self._mailbox_seq = itertools.count(1)

    def _generate_fields(self, record: dict[str, str]) -> None:
        record["MailboxId"] = f"{self.mailbox_prefix}-{next(self._mailbox_seq):06d}"

    # -- subscriber-flavoured convenience ----------------------------------------

    def add_subscriber(
        self, telephone_number: str, agent: str = "local", **fields: str
    ) -> dict[str, str]:
        """Provision a subscriber; the returned record carries the
        generated MailboxId."""
        record = {"TelephoneNumber": str(telephone_number)}
        record.update(fields)
        return self.add(record, agent=agent)

    def change_subscriber(
        self, telephone_number: str, agent: str = "local", **fields: str | None
    ) -> dict[str, str]:
        return self.modify(str(telephone_number), fields, agent=agent)

    def remove_subscriber(
        self, telephone_number: str, agent: str = "local"
    ) -> dict[str, str]:
        return self.delete(str(telephone_number), agent=agent)

    def subscriber(self, telephone_number: str) -> dict[str, str]:
        return self.get(str(telephone_number))

    def mailbox_of(self, telephone_number: str) -> str:
        record = self.get(str(telephone_number))
        return record["MailboxId"]
