"""Definity PBX simulator: switch, station schema, OSSI terminal."""

from .definity import DefinityPbx, partition_expression
from .ossi import OssiTerminal, TerminalResponse
from .station import STATION_FIELD_NAMES, STATION_FIELDS

__all__ = [
    "DefinityPbx",
    "OssiTerminal",
    "STATION_FIELDS",
    "STATION_FIELD_NAMES",
    "TerminalResponse",
    "partition_expression",
]
