"""The Definity PBX simulator.

A station switch: records are stations keyed by extension.  Each PBX
manages one or more extension prefixes — the physical fact behind the
partitioning constraints of paper section 4.2 ("a particular PBX accepts
updates for phone numbers beginning with '+1 908-582-9'").  Stations whose
extension falls outside the PBX's ranges are rejected, exactly as a real
switch would refuse an extension not in its dial plan.
"""

from __future__ import annotations

from typing import Iterable

from ..base import Device, InvalidFieldError
from .station import STATION_FIELDS


class DefinityPbx(Device):
    """One Definity switch with a prefix-based dial plan."""

    def __init__(
        self,
        name: str = "definity",
        extension_prefixes: Iterable[str] = ("4",),
    ):
        super().__init__(name, key_field="Extension", fields=STATION_FIELDS)
        self.extension_prefixes = tuple(str(p) for p in extension_prefixes)
        if not self.extension_prefixes:
            raise ValueError("a PBX needs at least one extension prefix")

    # -- dial plan --------------------------------------------------------------

    def manages_extension(self, extension: str) -> bool:
        return str(extension).startswith(self.extension_prefixes)

    def _validate_record(self, record: dict[str, str]) -> None:
        extension = record.get("Extension", "")
        if not self.manages_extension(extension):
            raise InvalidFieldError(
                f"{self.name}: extension {extension} is not in this switch's "
                f"dial plan (prefixes {', '.join(self.extension_prefixes)})"
            )

    # -- station-flavoured convenience -----------------------------------------------

    def add_station(
        self, extension: str, agent: str = "local", **fields: str
    ) -> dict[str, str]:
        record = {"Extension": str(extension)}
        record.update(fields)
        return self.add(record, agent=agent)

    def change_station(
        self, extension: str, agent: str = "local", **fields: str | None
    ) -> dict[str, str]:
        return self.modify(str(extension), fields, agent=agent)

    def remove_station(self, extension: str, agent: str = "local") -> dict[str, str]:
        return self.delete(str(extension), agent=agent)

    def station(self, extension: str) -> dict[str, str]:
        return self.get(str(extension))

    def list_stations(self) -> list[dict[str, str]]:
        return self.dump()


def partition_expression(pbx: DefinityPbx, attribute: str = "Extension") -> str:
    """The lexpress partition predicate matching this PBX's dial plan."""
    clauses = [f'prefix({attribute}, "{p}")' for p in pbx.extension_prefixes]
    return " or ".join(clauses)
