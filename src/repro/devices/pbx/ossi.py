"""OSSI-style administration terminal for the Definity simulator.

The "existing, often proprietary, interfaces" of paper section 1: device
administrators keep using the terminal they know, and MetaComm picks the
changes up as direct device updates.  The command surface follows the
Definity SAT verb-object style::

    add station 4100 name "Doe, John" room 2B-110
    change station 4100 name "Doe, Jane"
    display station 4100
    list station
    remove station 4100

Responses are formatted text, errors are terse legacy-style codes — this
is deliberately *not* a modern API.
"""

from __future__ import annotations

import shlex
from concurrent.futures import Future
from dataclasses import dataclass

from ..base import (
    DeviceError,
    DuplicateRecordError,
    InvalidFieldError,
    NoSuchRecordError,
)
from .definity import DefinityPbx
from .station import STATION_FIELD_NAMES

_FIELD_BY_LOWER = {name.lower(): name for name in STATION_FIELD_NAMES}
# Terminal keyword → station field (the terminal speaks lowercase).
_KEYWORDS = dict(_FIELD_BY_LOWER)
_KEYWORDS.update({"cov": "CoveragePath", "covpath": "CoveragePath"})


@dataclass(frozen=True)
class TerminalResponse:
    ok: bool
    text: str

    def __str__(self) -> str:
        return self.text


class OssiTerminal:
    """One administration session against one switch."""

    def __init__(self, pbx: DefinityPbx, login: str = "craft"):
        self.pbx = pbx
        self.login = login
        self.history: list[str] = []

    # -- entry point ---------------------------------------------------------

    def execute(self, command: str) -> TerminalResponse:
        self.history.append(command)
        return self._execute(command)

    def submit(self, command: str) -> "Future[TerminalResponse]":
        """Queue one command on the switch's pipelined device link.

        The non-blocking sibling of :meth:`execute`: the command rides the
        next flushed OSSI command stream instead of paying its own
        round-trip, and the returned Future resolves to the same
        :class:`TerminalResponse` ``execute`` would have produced.
        Requires a :class:`repro.devices.links.DeviceLink` attached to the
        switch; raises :class:`DeviceError` otherwise."""
        self.history.append(command)
        link = self.pbx.link
        if link is None:
            raise DeviceError(f"{self.pbx.name}: no device link attached")
        words = command.split()
        key = words[2] if len(words) > 2 else ""
        return link.submit(
            lambda: self._execute(command), op="terminal", key=key
        )

    def _execute(self, command: str) -> TerminalResponse:
        try:
            words = shlex.split(command)
        except ValueError as exc:
            return TerminalResponse(False, f"?SYNTAX: {exc}")
        if not words:
            return TerminalResponse(False, "?SYNTAX: empty command")
        verb = words[0].lower()
        try:
            if verb == "add":
                return self._add(words[1:])
            if verb == "change":
                return self._change(words[1:])
            if verb in ("remove", "delete"):
                return self._remove(words[1:])
            if verb == "display":
                return self._display(words[1:])
            if verb == "list":
                return self._list(words[1:])
            return TerminalResponse(False, f"?IDENTIFIER: unknown verb {verb!r}")
        except DuplicateRecordError:
            return TerminalResponse(False, "?DUPLICATE: extension already administered")
        except NoSuchRecordError:
            return TerminalResponse(False, "?NO-RECORD: extension not administered")
        except InvalidFieldError as exc:
            return TerminalResponse(False, f"?FIELD: {exc}")
        except DeviceError as exc:
            return TerminalResponse(False, f"?DEVICE: {exc}")

    # -- verbs ------------------------------------------------------------------

    @staticmethod
    def _require_station(words: list[str]) -> list[str]:
        if not words or words[0].lower() != "station":
            raise InvalidFieldError("expected object 'station'")
        return words[1:]

    @staticmethod
    def _parse_fields(words: list[str]) -> dict[str, str | None]:
        if len(words) % 2:
            raise InvalidFieldError("field list must be keyword/value pairs")
        out: dict[str, str | None] = {}
        for i in range(0, len(words), 2):
            keyword = words[i].lower()
            fname = _KEYWORDS.get(keyword)
            if fname is None:
                raise InvalidFieldError(f"unknown field keyword {keyword!r}")
            value = words[i + 1]
            out[fname] = None if value.lower() == "none" else value
        return out

    def _add(self, words: list[str]) -> TerminalResponse:
        rest = self._require_station(words)
        if not rest:
            raise InvalidFieldError("expected an extension")
        extension, fields = rest[0], self._parse_fields(rest[1:])
        record = self.pbx.add_station(
            extension, agent=self.login,
            **{k: v for k, v in fields.items() if v is not None},
        )
        return TerminalResponse(True, self._format_station(record))

    def _change(self, words: list[str]) -> TerminalResponse:
        rest = self._require_station(words)
        if not rest:
            raise InvalidFieldError("expected an extension")
        extension, fields = rest[0], self._parse_fields(rest[1:])
        if not fields:
            raise InvalidFieldError("nothing to change")
        record = self.pbx.change_station(extension, agent=self.login, **fields)
        return TerminalResponse(True, self._format_station(record))

    def _remove(self, words: list[str]) -> TerminalResponse:
        rest = self._require_station(words)
        if not rest:
            raise InvalidFieldError("expected an extension")
        self.pbx.remove_station(rest[0], agent=self.login)
        return TerminalResponse(True, f"station {rest[0]} removed")

    def _display(self, words: list[str]) -> TerminalResponse:
        rest = self._require_station(words)
        if not rest:
            raise InvalidFieldError("expected an extension")
        return TerminalResponse(True, self._format_station(self.pbx.station(rest[0])))

    def _list(self, words: list[str]) -> TerminalResponse:
        if not words or words[0].lower() != "station":
            raise InvalidFieldError("expected object 'station'")
        stations = self.pbx.list_stations()
        lines = [f"STATIONS: {len(stations)}"]
        for record in sorted(stations, key=lambda r: r["Extension"]):
            name = record.get("Name", "")
            room = record.get("Room", "")
            lines.append(f"  {record['Extension']:<6} {name:<27} {room}")
        return TerminalResponse(True, "\n".join(lines))

    # -- formatting -------------------------------------------------------------

    @staticmethod
    def _format_station(record: dict[str, str]) -> str:
        lines = ["STATION"]
        for name in STATION_FIELD_NAMES:
            if name in record:
                lines.append(f"  {name + ':':<14}{record[name]}")
        return "\n".join(lines)
