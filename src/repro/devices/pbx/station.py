"""Station record definition for the Definity PBX simulator.

Field inventory modelled on the station form of a Definity G3 admin
terminal (the subset MetaComm integrates: identity, location and class of
service/restriction data)."""

from __future__ import annotations

from ..base import FieldSpec


def _numeric(value: str) -> str | None:
    return None if value.isdigit() else "must be numeric"


def _extension(value: str) -> str | None:
    if not value.isdigit():
        return "extension must be numeric"
    if not 3 <= len(value) <= 5:
        return "extension must be 3-5 digits"
    return None


def _port(value: str) -> str | None:
    # Cabinet-carrier-slot-circuit, e.g. 01A0304.
    if len(value) != 7:
        return "port must look like 01A0304"
    if not (value[:2].isdigit() and value[2].isalpha() and value[3:].isdigit()):
        return "port must look like 01A0304"
    return None


STATION_FIELDS = (
    FieldSpec("Extension", max_length=5, required=True, validator=_extension),
    FieldSpec("Name", max_length=27),  # the real form truncates at 27 chars
    FieldSpec("Room", max_length=10),
    FieldSpec("Building", max_length=10),
    FieldSpec("Port", max_length=7, validator=_port),
    FieldSpec("COR", max_length=2, validator=_numeric),
    FieldSpec("COS", max_length=2, validator=_numeric),
    FieldSpec("Type", max_length=10),
    FieldSpec("CoveragePath", max_length=3),
)

STATION_FIELD_NAMES = tuple(f.name for f in STATION_FIELDS)
