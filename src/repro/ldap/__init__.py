"""A from-scratch, in-memory LDAP directory service.

This package is the directory substrate of the MetaComm reproduction: DNs
and RDNs, schema-checked entries, RFC 2254 search filters, LDIF, atomic
single-entry update operations, and multi-master replication.  See
DESIGN.md section 2 for how it substitutes for the wire-protocol servers
the paper used.
"""

from .backend import Backend, ChangeRecord, ChangeType, Csn, Transaction
from .client import LdapConnection
from .dn import DN, Ava, Rdn
from .entry import Attributes, Entry
from .filter import Filter, matches, parse_filter
from .ldif import (
    LdifChange,
    apply_changes,
    entry_to_ldif,
    parse_change_ldif,
    parse_ldif,
    write_change_ldif,
    write_ldif,
)
from .net import LdapTcpServer, RemoteLdapHandler
from .protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapRequest,
    LdapResponse,
    LdapResult,
    ModOp,
    Modification,
    ModifyRdnRequest,
    ModifyRequest,
    Scope,
    SearchRequest,
    Session,
    UnbindRequest,
)
from .replication import ReplicationEngine
from .result import (
    BusyError,
    EntryAlreadyExistsError,
    InvalidDnError,
    LdapError,
    NoSuchObjectError,
    ResultCode,
    SchemaViolationError,
    UnwillingToPerformError,
)
from .schema import AttributeType, ClassKind, ObjectClass, Schema, define_attributes
from .server import LdapServer

__all__ = [
    "AddRequest", "AttributeType", "Attributes", "Ava", "Backend",
    "BindRequest", "BusyError", "ChangeRecord", "ChangeType", "ClassKind",
    "CompareRequest", "Csn", "DN", "DeleteRequest", "Entry",
    "EntryAlreadyExistsError", "Filter", "InvalidDnError", "LdapConnection",
    "LdapError", "LdapRequest", "LdapTcpServer", "LdifChange", "LdapResponse", "LdapResult", "LdapServer",
    "ModOp", "Modification", "ModifyRdnRequest", "ModifyRequest",
    "NoSuchObjectError", "ObjectClass", "Rdn", "RemoteLdapHandler", "ReplicationEngine",
    "ResultCode", "Schema", "SchemaViolationError", "Scope", "SearchRequest",
    "Session", "Transaction", "UnbindRequest", "UnwillingToPerformError",
    "apply_changes", "define_attributes", "entry_to_ldif", "matches",
    "parse_change_ldif", "parse_filter", "parse_ldif", "write_change_ldif",
    "write_ldif",
]
