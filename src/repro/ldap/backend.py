"""The directory information tree (DIT) store.

A thread-safe, in-memory tree of entries keyed by normalized DN.  Every
update operation is atomic with respect to concurrent callers — and *only*
single-entry operations exist, which is precisely the transactional
weakness MetaComm's Update Manager has to design around (paper sections 2
and 5.1).

The backend keeps a changelog of committed updates, each stamped with a
change sequence number (CSN).  The changelog feeds both replication
agreements and post-commit listeners.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .dn import DN, Rdn
from .entry import Attributes, Entry
from .filter import Filter, parse_filter
from .protocol import ModOp, Modification, Scope
from .result import (
    EntryAlreadyExistsError,
    LdapError,
    NoSuchObjectError,
    NotAllowedOnNonLeafError,
    ResultCode,
)
from .schema import Schema


class ChangeType(enum.Enum):
    ADD = "add"
    DELETE = "delete"
    MODIFY = "modify"
    MODIFY_RDN = "modifyrdn"


@dataclass(frozen=True)
class Csn:
    """Change sequence number: totally ordered within a server, and across
    servers by (sequence, server_id) — the scheme directory replication
    uses to achieve its relaxed write-write convergence."""

    seq: int
    server_id: str

    def __lt__(self, other: "Csn") -> bool:
        return (self.seq, self.server_id) < (other.seq, other.server_id)


@dataclass(frozen=True)
class ChangeRecord:
    """One committed update, with before/after images for listeners."""

    csn: Csn
    change_type: ChangeType
    dn: DN
    before: Entry | None = None
    after: Entry | None = None
    modifications: tuple[Modification, ...] = ()
    new_rdn: Rdn | None = None
    #: CSN of the originating write when this record was produced by
    #: applying a replicated change; equals :attr:`csn` for local writes.
    origin: Csn | None = None

    @property
    def origin_csn(self) -> Csn:
        return self.origin or self.csn


ChangeListener = Callable[[ChangeRecord], None]


class Transaction:
    """A multi-entry atomic batch at a single server.

    The paper's section 5.3 proposes exactly this compromise: "transactions
    that allow several entries at a single site to be modified atomically
    would be a good compromise — solving our atomicity problems while
    retaining scalability although at the cost of asymmetry."  This
    extension implements it: operations buffered on the transaction apply
    all-or-nothing under the backend lock; listeners and the changelog see
    either every record or none.

    Use as a context manager::

        with backend.transaction() as txn:
            txn.modify(parent_dn, [...])
            txn.modify(child_dn, [...])
        # both applied, or neither
    """

    def __init__(self, backend: "Backend"):
        self.backend = backend
        self._ops: list[tuple[str, tuple]] = []
        self.committed = False

    # -- buffered operations ----------------------------------------------

    def add(self, entry: Entry) -> None:
        self._ops.append(("add", (entry.copy(),)))

    def delete(self, dn: DN) -> None:
        self._ops.append(("delete", (dn,)))

    def modify(self, dn: DN, modifications: Iterable[Modification]) -> None:
        self._ops.append(("modify", (dn, tuple(modifications))))

    def modify_rdn(self, dn: DN, new_rdn: Rdn, delete_old_rdn: bool = True) -> None:
        self._ops.append(("modify_rdn", (dn, new_rdn, delete_old_rdn)))

    def __len__(self) -> int:
        return len(self._ops)

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> list[ChangeRecord]:
        if self.committed:
            raise RuntimeError("transaction already committed")
        records = self.backend._apply_transaction(self._ops)
        self.committed = True
        return records

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self.committed:
            self.commit()


class Backend:
    """In-memory DIT with atomic single-entry operations and a changelog."""

    def __init__(
        self,
        suffixes: Iterable[DN | str],
        schema: Schema | None = None,
        server_id: str = "srv1",
    ):
        self.suffixes = [DN.parse(s) if isinstance(s, str) else s for s in suffixes]
        if not self.suffixes:
            raise ValueError("a backend needs at least one suffix")
        self.schema = schema
        self.server_id = server_id
        self._entries: dict[tuple, Entry] = {}
        self._children: dict[tuple, set[tuple]] = {}
        self._lock = threading.RLock()
        self._seq = 0
        self.changelog: list[ChangeRecord] = []
        self._listeners: list[ChangeListener] = []
        self._txn_buffer: list[ChangeRecord] | None = None
        # Equality indexes: attr (lower) -> normalized value -> set of DN keys.
        self._indexes: dict[str, dict[str, set[tuple]]] = {}

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self._listeners.remove(listener)

    def _commit(self, record: ChangeRecord) -> None:
        if self._txn_buffer is not None:
            self._txn_buffer.append(record)
            return
        self.changelog.append(record)
        for listener in list(self._listeners):
            listener(record)

    # -- site transactions (section 5.3 extension) ------------------------------

    def transaction(self) -> Transaction:
        """Open a multi-entry atomic batch (see :class:`Transaction`)."""
        return Transaction(self)

    def _apply_transaction(self, ops: list[tuple[str, tuple]]) -> list[ChangeRecord]:
        with self._lock:
            snapshot_entries = dict(self._entries)
            snapshot_children = {k: set(v) for k, v in self._children.items()}
            snapshot_indexes = {
                a: {v: set(keys) for v, keys in t.items()}
                for a, t in self._indexes.items()
            }
            snapshot_seq = self._seq
            self._txn_buffer: list[ChangeRecord] | None = []
            try:
                for op, args in ops:
                    getattr(self, op)(*args)
            except Exception:
                self._entries = snapshot_entries
                self._children = snapshot_children
                self._indexes = snapshot_indexes
                self._seq = snapshot_seq
                raise
            finally:
                records, self._txn_buffer = self._txn_buffer or [], None
            for record in records:
                self.changelog.append(record)
                for listener in list(self._listeners):
                    listener(record)
            return records

    def _next_csn(self) -> Csn:
        self._seq += 1
        return Csn(self._seq, self.server_id)

    # -- attribute indexes ----------------------------------------------------

    def create_index(self, attribute: str) -> None:
        """Maintain an equality index on *attribute*.

        Equality searches (including inside AND filters) then resolve via
        the index instead of scanning the tree — the entry-location hot
        path of the Update Manager."""
        from .entry import _norm_value

        key = attribute.lower()
        with self._lock:
            if key in self._indexes:
                return
            table: dict[str, set[tuple]] = {}
            for dn_key, entry in self._entries.items():
                for value in entry.get(attribute):
                    table.setdefault(_norm_value(value), set()).add(dn_key)
            self._indexes[key] = table

    def indexed_attributes(self) -> list[str]:
        with self._lock:
            return sorted(self._indexes)

    def _index_entry(self, dn_key: tuple, entry: Entry, remove: bool = False) -> None:
        """Caller holds ``_lock``."""
        from .entry import _norm_value

        for attribute, table in self._indexes.items():
            for value in entry.attributes.get(attribute):
                normalized = _norm_value(value)
                if remove:
                    bucket = table.get(normalized)
                    if bucket is not None:
                        bucket.discard(dn_key)
                        if not bucket:
                            del table[normalized]
                else:
                    table.setdefault(normalized, set()).add(dn_key)

    def _store(self, entry: Entry) -> None:
        """Insert or replace an entry, keeping indexes current.

        Caller holds ``_lock``."""
        dn_key = entry.dn.normalized()
        old = self._entries.get(dn_key)
        if old is not None and self._indexes:
            self._index_entry(dn_key, old, remove=True)
        self._entries[dn_key] = entry
        if self._indexes:
            self._index_entry(dn_key, entry)

    def _unstore(self, dn_key: tuple) -> Entry | None:
        """Caller holds ``_lock``."""
        old = self._entries.pop(dn_key, None)
        if old is not None and self._indexes:
            self._index_entry(dn_key, old, remove=True)
        return old

    def _index_candidates(self, compiled: Filter) -> set[tuple] | None:
        """DN keys matching an indexed Equality inside *compiled*, or None
        when the filter cannot use an index.

        Caller holds ``_lock``."""
        from .entry import _norm_value
        from .filter import And, Equality

        probes: list[Equality] = []
        if isinstance(compiled, Equality):
            probes = [compiled]
        elif isinstance(compiled, And):
            probes = [p for p in compiled.parts if isinstance(p, Equality)]
        best: set[tuple] | None = None
        for probe in probes:
            table = self._indexes.get(probe.attribute.lower())
            if table is None:
                continue
            bucket = table.get(_norm_value(probe.value), set())
            # Most selective indexed probe wins (an objectClass=person
            # bucket may hold the whole directory; a key attribute holds
            # one entry).
            if best is None or len(bucket) < len(best):
                best = set(bucket)
        return best

    # -- structure helpers --------------------------------------------------

    def _is_suffix(self, dn: DN) -> bool:
        return any(dn == suffix for suffix in self.suffixes)

    def _within_namespace(self, dn: DN) -> bool:
        return any(dn.is_under(suffix) for suffix in self.suffixes)

    def _require(self, dn: DN) -> Entry:
        """Caller holds ``_lock``."""
        entry = self._entries.get(dn.normalized())
        if entry is None:
            matched = self._deepest_match(dn)
            raise NoSuchObjectError(f"no such entry: {dn}", matched_dn=str(matched))
        return entry

    def _deepest_match(self, dn: DN) -> DN:
        """Caller holds ``_lock``."""
        current = dn
        while not current.is_root():
            current = current.parent()
            if current.normalized() in self._entries:
                return current
        return DN.root()

    def size(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, dn: DN) -> bool:
        with self._lock:
            return dn.normalized() in self._entries

    def get(self, dn: DN) -> Entry:
        """Return a copy of the entry at *dn* (raises when absent)."""
        with self._lock:
            return self._require(dn).copy()

    # -- update operations ---------------------------------------------------

    def add(self, entry: Entry, origin: Csn | None = None) -> ChangeRecord:
        entry = entry.copy()
        if not entry.rdn_consistent():
            # Real servers insert missing RDN attributes; we do the same.
            for attr, value in entry.dn.rdn.items():
                if not entry.attributes.has_value(attr, value):
                    values = entry.attributes.get(attr)
                    values.append(value)
                    entry.attributes.put(attr, values)
        if self.schema is not None:
            self.schema.check_entry(entry)
        with self._lock:
            key = entry.dn.normalized()
            if key in self._entries:
                raise EntryAlreadyExistsError(f"entry exists: {entry.dn}")
            if not self._within_namespace(entry.dn):
                raise LdapError(
                    ResultCode.UNWILLING_TO_PERFORM,
                    f"{entry.dn} is outside the server's suffixes",
                )
            if not self._is_suffix(entry.dn):
                parent_key = entry.dn.parent().normalized()
                if parent_key not in self._entries:
                    raise NoSuchObjectError(
                        f"parent of {entry.dn} does not exist",
                        matched_dn=str(self._deepest_match(entry.dn)),
                    )
                self._children.setdefault(parent_key, set()).add(key)
            self._store(entry)
            record = ChangeRecord(
                self._next_csn(), ChangeType.ADD, entry.dn, None, entry.copy(),
                origin=origin,
            )
            self._commit(record)
            return record

    def delete(self, dn: DN, origin: Csn | None = None) -> ChangeRecord:
        with self._lock:
            entry = self._require(dn)
            key = dn.normalized()
            if self._children.get(key):
                raise NotAllowedOnNonLeafError(f"{dn} has children")
            self._unstore(key)
            self._children.pop(key, None)
            if not self._is_suffix(dn):
                parent_key = dn.parent().normalized()
                siblings = self._children.get(parent_key)
                if siblings is not None:
                    siblings.discard(key)
                    if not siblings:
                        del self._children[parent_key]
            record = ChangeRecord(
                self._next_csn(), ChangeType.DELETE, dn, entry.copy(), None,
                origin=origin,
            )
            self._commit(record)
            return record

    def modify(
        self,
        dn: DN,
        modifications: Iterable[Modification],
        origin: Csn | None = None,
    ) -> ChangeRecord:
        modifications = tuple(modifications)
        with self._lock:
            entry = self._require(dn)
            updated = entry.copy()
            self._apply_modifications(updated, modifications)
            if self.schema is not None:
                self.schema.check_entry(updated)
            if not updated.rdn_consistent():
                raise LdapError(
                    ResultCode.NOT_ALLOWED_ON_RDN,
                    f"modification would remove an RDN value of {dn}",
                )
            self._store(updated)
            record = ChangeRecord(
                self._next_csn(),
                ChangeType.MODIFY,
                dn,
                entry.copy(),
                updated.copy(),
                modifications,
                origin=origin,
            )
            self._commit(record)
            return record

    @staticmethod
    def _apply_modifications(
        entry: Entry, modifications: Iterable[Modification]
    ) -> None:
        for mod in modifications:
            if mod.op is ModOp.ADD:
                entry.attributes.add_values(mod.attribute, list(mod.values))
            elif mod.op is ModOp.DELETE:
                entry.attributes.delete_values(
                    mod.attribute, list(mod.values) if mod.values else None
                )
            elif mod.op is ModOp.REPLACE:
                entry.attributes.put(mod.attribute, list(mod.values))
            else:  # pragma: no cover - enum is closed
                raise LdapError(ResultCode.PROTOCOL_ERROR, f"bad mod op {mod.op}")

    def modify_rdn(
        self,
        dn: DN,
        new_rdn: Rdn,
        delete_old_rdn: bool = True,
        origin: Csn | None = None,
    ) -> ChangeRecord:
        """Rename an entry in place (LDAP ModifyRDN).

        Descendants are re-keyed under the new DN, as real servers do for a
        rename without a newSuperior.
        """
        with self._lock:
            entry = self._require(dn)
            if self._is_suffix(dn):
                raise LdapError(
                    ResultCode.UNWILLING_TO_PERFORM, "cannot rename a suffix entry"
                )
            new_dn = dn.parent().child(new_rdn)
            new_key = new_dn.normalized()
            old_key = dn.normalized()
            if new_key != old_key and new_key in self._entries:
                raise EntryAlreadyExistsError(f"entry exists: {new_dn}")

            updated = entry.copy()
            if delete_old_rdn:
                for attr, value in dn.rdn.items():
                    if any(
                        a.lower() == attr.lower() and v == value
                        for a, v in new_rdn.items()
                    ):
                        continue
                    try:
                        updated.attributes.delete_values(attr, [value])
                    except LdapError:
                        pass
            for attr, value in new_rdn.items():
                if not updated.attributes.has_value(attr, value):
                    values = updated.attributes.get(attr)
                    values.append(value)
                    updated.attributes.put(attr, values)
            renamed = Entry(new_dn, updated.attributes)
            if self.schema is not None:
                self.schema.check_entry(renamed)

            # Re-key the whole subtree below the renamed entry.
            moves: list[tuple[tuple, tuple, Entry]] = []
            for desc_key, desc in list(self._entries.items()):
                if desc.dn.is_descendant_of(dn):
                    depth = len(desc.dn.rdns) - len(dn.rdns)
                    rebased = DN(desc.dn.rdns[:depth] + new_dn.rdns)
                    moves.append((desc_key, rebased.normalized(), Entry(rebased, desc.attributes)))

            parent_key = dn.parent().normalized()
            self._unstore(old_key)
            children = self._children.pop(old_key, set())
            self._store(renamed)
            siblings = self._children.setdefault(parent_key, set())
            siblings.discard(old_key)
            siblings.add(new_key)

            remap = {old_key: new_key}
            for desc_key, new_desc_key, moved in moves:
                self._unstore(desc_key)
                self._store(moved)
                remap[desc_key] = new_desc_key
                child_set = self._children.pop(desc_key, None)
                if child_set is not None:
                    self._children[new_desc_key] = child_set
            # Rewrite child-set membership to the re-keyed names.
            for key, child_set in list(self._children.items()):
                rewritten = {remap.get(c, c) for c in child_set}
                self._children[key] = rewritten
            if children:
                self._children[new_key] = {remap.get(c, c) for c in children}

            record = ChangeRecord(
                self._next_csn(),
                ChangeType.MODIFY_RDN,
                dn,
                entry.copy(),
                renamed.copy(),
                (),
                new_rdn,
                origin=origin,
            )
            self._commit(record)
            return record

    # -- read operations ------------------------------------------------------

    def search(
        self,
        base: DN,
        scope: Scope = Scope.SUB,
        filter: Filter | str = "(objectClass=*)",
        attributes: Iterable[str] = (),
        size_limit: int = 0,
    ) -> list[Entry]:
        compiled = parse_filter(filter)
        selected = tuple(attributes)
        with self._lock:
            base_entry = self._require(base)
            candidates: Iterator[Entry]
            indexed = (
                self._index_candidates(compiled) if self._indexes else None
            )
            if indexed is not None and scope is Scope.SUB:
                candidates = (
                    self._entries[k]
                    for k in sorted(indexed)
                    if k in self._entries and self._entries[k].dn.is_under(base)
                )
            elif scope is Scope.BASE:
                candidates = iter([base_entry])
            elif scope is Scope.ONE:
                child_keys = self._children.get(base.normalized(), set())
                candidates = (self._entries[k] for k in sorted(child_keys))
            else:
                candidates = (
                    e
                    for k, e in sorted(self._entries.items())
                    if e.dn.is_under(base)
                )
            results: list[Entry] = []
            for entry in candidates:
                if not compiled.matches(entry):
                    continue
                results.append(self._project(entry, selected))
                if size_limit and len(results) > size_limit:
                    raise LdapError(
                        ResultCode.SIZE_LIMIT_EXCEEDED,
                        f"more than {size_limit} entries match",
                    )
            return results

    @staticmethod
    def _project(entry: Entry, attributes: tuple[str, ...]) -> Entry:
        if not attributes or "*" in attributes:
            return entry.copy()
        wanted = {a.lower() for a in attributes}
        projected = Attributes()
        for name, values in entry.attributes.items():
            if name.lower() in wanted:
                projected.put(name, values)
        return Entry(entry.dn, projected)

    def compare(self, dn: DN, attribute: str, value: str) -> bool:
        with self._lock:
            entry = self._require(dn)
            return entry.attributes.has_value(attribute, value)

    def all_entries(self) -> list[Entry]:
        with self._lock:
            return [e.copy() for _, e in sorted(self._entries.items())]

    def changes_since(self, csn: Csn | None) -> list[ChangeRecord]:
        with self._lock:
            if csn is None:
                return list(self.changelog)
            return [r for r in self.changelog if csn < r.csn]
