"""LDAP client connection.

A thin, ergonomic wrapper that builds protocol messages and raises
:class:`~repro.ldap.result.LdapError` on failure responses.  It connects to
anything that implements the handler interface — the server itself or the
LTAP gateway ("any tool that can perform LDAP updates", paper section 1).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .dn import DN, Rdn
from .entry import Entry
from .filter import Filter
from .protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapHandler,
    LdapResponse,
    Modification,
    ModifyRdnRequest,
    ModifyRequest,
    Scope,
    SearchRequest,
    Session,
    UnbindRequest,
)
from .result import LdapError, ResultCode


class LdapConnection:
    """One client connection (session) to an LDAP handler."""

    def __init__(self, handler: LdapHandler):
        self.handler = handler
        self.session = Session()

    # -- plumbing -----------------------------------------------------------

    def _call(self, request) -> LdapResponse:
        response = self.handler.process(request, self.session)
        if not response.result.ok:
            raise LdapError(
                response.result.code,
                response.result.message,
                response.result.matched_dn,
            )
        return response

    @staticmethod
    def _dn(dn: DN | str) -> DN:
        return DN.parse(dn) if isinstance(dn, str) else dn

    # -- operations -----------------------------------------------------------

    def bind(self, dn: DN | str = "", password: str = "") -> None:
        self._call(BindRequest(self._dn(dn), password))

    def unbind(self) -> None:
        self._call(UnbindRequest())

    def add(self, dn: DN | str, attributes: Mapping[str, Iterable[str] | str]) -> None:
        self._call(AddRequest(Entry(self._dn(dn), attributes)))

    def add_entry(self, entry: Entry) -> None:
        self._call(AddRequest(entry))

    def delete(self, dn: DN | str) -> None:
        self._call(DeleteRequest(self._dn(dn)))

    def modify(self, dn: DN | str, modifications: Sequence[Modification]) -> None:
        self._call(ModifyRequest(self._dn(dn), tuple(modifications)))

    def replace(self, dn: DN | str, attributes: Mapping[str, Iterable[str] | str]) -> None:
        """Convenience: replace each attribute with the given values."""
        mods = []
        for name, values in attributes.items():
            if isinstance(values, str):
                values = [values]
            mods.append(Modification.replace(name, *values))
        self.modify(dn, mods)

    def modify_rdn(
        self, dn: DN | str, new_rdn: Rdn | str, delete_old_rdn: bool = True
    ) -> None:
        if isinstance(new_rdn, str):
            new_rdn = Rdn.parse(new_rdn)
        self._call(ModifyRdnRequest(self._dn(dn), new_rdn, delete_old_rdn))

    def search(
        self,
        base: DN | str,
        scope: Scope = Scope.SUB,
        filter: Filter | str = "(objectClass=*)",
        attributes: Iterable[str] = (),
        size_limit: int = 0,
    ) -> list[Entry]:
        response = self._call(
            SearchRequest(
                self._dn(base), scope, filter, tuple(attributes), size_limit
            )
        )
        return response.entries

    def get(self, dn: DN | str) -> Entry:
        """Read a single entry (base-scope search)."""
        entries = self.search(dn, Scope.BASE)
        if not entries:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, f"no such entry: {dn}")
        return entries[0]

    def exists(self, dn: DN | str) -> bool:
        try:
            self.get(dn)
            return True
        except LdapError as exc:
            if exc.code is ResultCode.NO_SUCH_OBJECT:
                return False
            raise

    def compare(self, dn: DN | str, attribute: str, value: str) -> bool:
        response = self.handler.process(
            CompareRequest(self._dn(dn), attribute, value), self.session
        )
        if response.result.code is ResultCode.COMPARE_TRUE:
            return True
        if response.result.code is ResultCode.COMPARE_FALSE:
            return False
        raise LdapError(response.result.code, response.result.message)
