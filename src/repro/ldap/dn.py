"""Distinguished Names.

Implements the subset of RFC 2253 used by MetaComm: DNs are sequences of
RDNs from leaf to root (``cn=John Doe, o=Marketing, o=Lucent``), an RDN is
one or more ``attribute=value`` pairs joined by ``+``, and special
characters can be escaped with a backslash.

Matching is case-insensitive for both attribute names and values (the
caseIgnoreMatch rule that applies to directory strings), and insensitive to
insignificant whitespace around separators.  Normalized forms are used as
dictionary keys throughout the backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .result import InvalidDnError

_ESCAPED = {",", "+", '"', "\\", "<", ">", ";", "=", "#"}


def escape_value(value: str) -> str:
    """Escape an attribute value for inclusion in a DN string."""
    out = []
    for i, ch in enumerate(value):
        if ch in _ESCAPED:
            out.append("\\" + ch)
        elif ch == " " and (i == 0 or i == len(value) - 1):
            out.append("\\ ")
        else:
            out.append(ch)
    return "".join(out)


def _split_unescaped(text: str, sep: str) -> list[str]:
    """Split *text* at unescaped occurrences of *sep*."""
    parts: list[str] = []
    current: list[str] = []
    escaped = False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == sep:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if escaped:
        raise InvalidDnError(f"dangling escape in {text!r}")
    parts.append("".join(current))
    return parts


def _unescape(text: str) -> str:
    out = []
    escaped = False
    for ch in text:
        if escaped:
            out.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        else:
            out.append(ch)
    return "".join(out)


@dataclass(frozen=True)
class Ava:
    """A single attribute/value assertion, e.g. ``cn=John Doe``."""

    attribute: str
    value: str

    def normalized(self) -> tuple[str, str]:
        return (self.attribute.lower(), " ".join(self.value.lower().split()))

    def __str__(self) -> str:
        return f"{self.attribute}={escape_value(self.value)}"


class Rdn:
    """A Relative Distinguished Name: one or more AVAs joined by ``+``.

    The RDN of an entry must be unique among the children of its parent;
    uniqueness is judged on the normalized form.
    """

    __slots__ = ("avas", "_norm")

    def __init__(self, avas: Iterable[Ava]):
        avas = tuple(avas)
        if not avas:
            raise InvalidDnError("empty RDN")
        self.avas: tuple[Ava, ...] = avas
        self._norm = tuple(sorted(a.normalized() for a in avas))

    @classmethod
    def parse(cls, text: str) -> "Rdn":
        text = text.strip()
        if not text:
            raise InvalidDnError("empty RDN component")
        avas = []
        for part in _split_unescaped(text, "+"):
            halves = _split_unescaped(part, "=")
            if len(halves) != 2:
                raise InvalidDnError(f"malformed RDN component {part!r}")
            attr = _unescape(halves[0]).strip()
            value = _unescape(halves[1]).strip()
            if not attr or not value:
                raise InvalidDnError(f"empty attribute or value in {part!r}")
            avas.append(Ava(attr, value))
        return cls(avas)

    @classmethod
    def single(cls, attribute: str, value: str) -> "Rdn":
        return cls([Ava(attribute, value)])

    @property
    def attribute(self) -> str:
        """Attribute name of the first AVA (the common single-AVA case)."""
        return self.avas[0].attribute

    @property
    def value(self) -> str:
        """Value of the first AVA (the common single-AVA case)."""
        return self.avas[0].value

    def items(self) -> Iterator[tuple[str, str]]:
        for ava in self.avas:
            yield ava.attribute, ava.value

    def normalized(self) -> tuple:
        return self._norm

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rdn) and self._norm == other._norm

    def __hash__(self) -> int:
        return hash(self._norm)

    def __str__(self) -> str:
        return "+".join(str(a) for a in self.avas)

    def __repr__(self) -> str:
        return f"Rdn({str(self)!r})"


class DN:
    """A Distinguished Name: a path of RDNs from leaf to root.

    ``DN.parse("cn=John Doe, o=Marketing, o=Lucent")`` names the entry
    whose RDN is ``cn=John Doe`` under ``o=Marketing, o=Lucent``.  The
    empty DN (``DN.root()``) denotes the conceptual root above all
    suffixes.
    """

    __slots__ = ("rdns", "_norm")

    def __init__(self, rdns: Sequence[Rdn] = ()):
        self.rdns: tuple[Rdn, ...] = tuple(rdns)
        self._norm = tuple(r.normalized() for r in self.rdns)

    @classmethod
    def parse(cls, text: str) -> "DN":
        text = text.strip()
        if not text:
            return cls(())
        return cls([Rdn.parse(part) for part in _split_unescaped(text, ",")])

    @classmethod
    def root(cls) -> "DN":
        return cls(())

    @property
    def rdn(self) -> Rdn:
        if not self.rdns:
            raise InvalidDnError("root DN has no RDN")
        return self.rdns[0]

    def parent(self) -> "DN":
        if not self.rdns:
            raise InvalidDnError("root DN has no parent")
        return DN(self.rdns[1:])

    def child(self, rdn: Rdn | str) -> "DN":
        if isinstance(rdn, str):
            rdn = Rdn.parse(rdn)
        return DN((rdn,) + self.rdns)

    def is_root(self) -> bool:
        return not self.rdns

    def is_descendant_of(self, ancestor: "DN") -> bool:
        """True when *self* lies strictly below *ancestor*."""
        alen = len(ancestor.rdns)
        if len(self.rdns) <= alen:
            return False
        return self._norm[len(self._norm) - alen:] == ancestor._norm

    def is_under(self, base: "DN") -> bool:
        """True when *self* equals *base* or lies below it."""
        return self == base or self.is_descendant_of(base)

    def depth_below(self, base: "DN") -> int:
        if not self.is_under(base):
            raise ValueError(f"{self} is not under {base}")
        return len(self.rdns) - len(base.rdns)

    def normalized(self) -> tuple:
        return self._norm

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DN) and self._norm == other._norm

    def __hash__(self) -> int:
        return hash(self._norm)

    def __len__(self) -> int:
        return len(self.rdns)

    def __str__(self) -> str:
        return ",".join(str(r) for r in self.rdns)

    def __repr__(self) -> str:
        return f"DN({str(self)!r})"
