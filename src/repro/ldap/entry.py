"""Directory entries and attribute collections.

LDAP attributes are weakly typed: every value is a string, attribute names
are case-insensitive, and an attribute holds a *set* of values (the paper's
section 5.3 complains that LDAP sets only hold atomic values — we model
exactly that).  :class:`Attributes` preserves the case of the first writer
for round-tripping to LDIF while comparing case-insensitively.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .dn import DN
from .result import LdapError, ResultCode


def _norm_value(value: str) -> str:
    """caseIgnoreMatch normalization: fold case, squash internal space."""
    return " ".join(value.lower().split())


class Attributes:
    """A case-insensitive mapping from attribute name to a list of values.

    Values keep insertion order (deterministic LDIF output) but compare as
    sets under caseIgnore matching, which is what real directory servers do
    for directoryString syntax.
    """

    __slots__ = ("_data", "_names")

    def __init__(self, initial: Mapping[str, Iterable[str] | str] | None = None):
        self._data: dict[str, list[str]] = {}
        self._names: dict[str, str] = {}  # lower-case -> original spelling
        if initial:
            for name, values in initial.items():
                self.put(name, values)

    # -- mutation ---------------------------------------------------------

    def put(self, name: str, values: Iterable[str] | str) -> None:
        """Replace all values of *name*."""
        if isinstance(values, str):
            values = [values]
        values = [str(v) for v in values]
        key = name.lower()
        if not values:
            self._data.pop(key, None)
            self._names.pop(key, None)
            return
        self._data[key] = list(values)
        self._names.setdefault(key, name)

    def add_values(self, name: str, values: Iterable[str] | str) -> None:
        """Add values, rejecting duplicates like a real server would."""
        if isinstance(values, str):
            values = [values]
        key = name.lower()
        current = self._data.setdefault(key, [])
        self._names.setdefault(key, name)
        existing = {_norm_value(v) for v in current}
        for value in values:
            value = str(value)
            if _norm_value(value) in existing:
                raise LdapError(
                    ResultCode.ATTRIBUTE_OR_VALUE_EXISTS,
                    f"attribute {name} already has value {value!r}",
                )
            current.append(value)
            existing.add(_norm_value(value))
        if not current:
            del self._data[key]
            self._names.pop(key, None)

    def delete_values(self, name: str, values: Iterable[str] | str | None) -> None:
        """Delete specific values, or the whole attribute when *values* is None."""
        key = name.lower()
        if key not in self._data:
            raise LdapError(
                ResultCode.UNDEFINED_ATTRIBUTE_TYPE, f"no such attribute: {name}"
            )
        if values is None:
            del self._data[key]
            self._names.pop(key, None)
            return
        if isinstance(values, str):
            values = [values]
        current = self._data[key]
        for value in values:
            target = _norm_value(str(value))
            for i, have in enumerate(current):
                if _norm_value(have) == target:
                    del current[i]
                    break
            else:
                raise LdapError(
                    ResultCode.UNDEFINED_ATTRIBUTE_TYPE,
                    f"attribute {name} has no value {value!r}",
                )
        if not current:
            del self._data[key]
            self._names.pop(key, None)

    def remove(self, name: str) -> None:
        self._data.pop(name.lower(), None)
        self._names.pop(name.lower(), None)

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> list[str]:
        return list(self._data.get(name.lower(), []))

    def first(self, name: str, default: str | None = None) -> str | None:
        values = self._data.get(name.lower())
        return values[0] if values else default

    def has(self, name: str) -> bool:
        return name.lower() in self._data

    def has_value(self, name: str, value: str) -> bool:
        target = _norm_value(value)
        return any(
            _norm_value(v) == target for v in self._data.get(name.lower(), [])
        )

    def names(self) -> list[str]:
        return [self._names[k] for k in self._data]

    def items(self) -> Iterator[tuple[str, list[str]]]:
        for key, values in self._data.items():
            yield self._names[key], list(values)

    def to_dict(self) -> dict[str, list[str]]:
        return {self._names[k]: list(v) for k, v in self._data.items()}

    def copy(self) -> "Attributes":
        clone = Attributes()
        clone._data = {k: list(v) for k, v in self._data.items()}
        clone._names = dict(self._names)
        return clone

    def normalized(self) -> dict[str, frozenset[str]]:
        """Comparison form: lower-case names to sets of normalized values."""
        return {
            key: frozenset(_norm_value(v) for v in values)
            for key, values in self._data.items()
        }

    def __contains__(self, name: str) -> bool:
        return self.has(name)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attributes) and self.normalized() == other.normalized()

    def __repr__(self) -> str:
        return f"Attributes({self.to_dict()!r})"


class Entry:
    """A directory entry: a DN plus its attributes.

    Entries are value objects from the caller's point of view; the backend
    stores copies so that callers can never mutate server state behind the
    server's back.
    """

    __slots__ = ("dn", "attributes")

    def __init__(self, dn: DN | str, attributes: Mapping | Attributes | None = None):
        if isinstance(dn, str):
            dn = DN.parse(dn)
        self.dn = dn
        if isinstance(attributes, Attributes):
            self.attributes = attributes.copy()
        else:
            self.attributes = Attributes(attributes or {})

    @property
    def object_classes(self) -> list[str]:
        return self.attributes.get("objectClass")

    def get(self, name: str) -> list[str]:
        return self.attributes.get(name)

    def first(self, name: str, default: str | None = None) -> str | None:
        return self.attributes.first(name, default)

    def has(self, name: str) -> bool:
        return self.attributes.has(name)

    def copy(self) -> "Entry":
        return Entry(self.dn, self.attributes.copy())

    def rdn_consistent(self) -> bool:
        """True when every AVA of the RDN appears among the attributes."""
        if self.dn.is_root():
            return True
        return all(
            self.attributes.has_value(attr, value)
            for attr, value in self.dn.rdn.items()
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Entry)
            and self.dn == other.dn
            and self.attributes == other.attributes
        )

    def __repr__(self) -> str:
        return f"Entry({str(self.dn)!r}, {self.attributes.to_dict()!r})"
