"""LDAP search filters (RFC 2254 string representation).

Supports the full grammar used in practice::

    (&(objectClass=person)(|(cn=John*)(sn=Doe))(!(ou=void)))
    (telephoneNumber=*)            presence
    (cn=*oh*do*)                   substrings
    (extension>=4000)(extension<=4999)   ordering (numeric when possible)
    (cn~=jon doe)                  approximate (we use a loose normalization)

Matching follows caseIgnore semantics, consistent with
:mod:`repro.ldap.entry`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from .entry import Entry, _norm_value
from .result import LdapError, ResultCode


class FilterSyntaxError(LdapError):
    def __init__(self, message: str):
        super().__init__(ResultCode.PROTOCOL_ERROR, f"bad search filter: {message}")


class Filter:
    """Base class for compiled filters."""

    def matches(self, entry: Entry) -> bool:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class And(Filter):
    parts: tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return all(p.matches(entry) for p in self.parts)

    def __str__(self) -> str:
        return "(&" + "".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Filter):
    parts: tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return any(p.matches(entry) for p in self.parts)

    def __str__(self) -> str:
        return "(|" + "".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Filter):
    part: Filter

    def matches(self, entry: Entry) -> bool:
        return not self.part.matches(entry)

    def __str__(self) -> str:
        return f"(!{self.part})"


@dataclass(frozen=True)
class Present(Filter):
    attribute: str

    def matches(self, entry: Entry) -> bool:
        return entry.has(self.attribute)

    def __str__(self) -> str:
        return f"({self.attribute}=*)"


@dataclass(frozen=True)
class Equality(Filter):
    attribute: str
    value: str

    def matches(self, entry: Entry) -> bool:
        return entry.attributes.has_value(self.attribute, self.value)

    def __str__(self) -> str:
        return f"({self.attribute}={_escape(self.value)})"


@dataclass(frozen=True)
class Substrings(Filter):
    attribute: str
    initial: str | None
    any_parts: tuple[str, ...]
    final: str | None

    def _pattern(self) -> re.Pattern:
        prefix = re.escape(_norm_value(self.initial)) if self.initial else ""
        suffix = re.escape(_norm_value(self.final)) if self.final else ""
        if self.any_parts:
            body = ".*".join(re.escape(_norm_value(p)) for p in self.any_parts)
            middle = ".*" + body + ".*"
        else:
            middle = ".*"
        return re.compile("^" + prefix + middle + suffix + "$")

    def matches(self, entry: Entry) -> bool:
        pattern = self._pattern()
        return any(
            pattern.match(_norm_value(v)) for v in entry.get(self.attribute)
        )

    def __str__(self) -> str:
        parts = [self.initial or ""] + list(self.any_parts) + [self.final or ""]
        return f"({self.attribute}=" + "*".join(_escape(p) for p in parts) + ")"


def _order_key(value: str):
    """Order numerically when both operands look numeric, else textually."""
    try:
        return (0, float(value), "")
    except ValueError:
        return (1, 0.0, _norm_value(value))


@dataclass(frozen=True)
class GreaterOrEqual(Filter):
    attribute: str
    value: str

    def matches(self, entry: Entry) -> bool:
        bound = _order_key(self.value)
        return any(_order_key(v) >= bound for v in entry.get(self.attribute))

    def __str__(self) -> str:
        return f"({self.attribute}>={_escape(self.value)})"


@dataclass(frozen=True)
class LessOrEqual(Filter):
    attribute: str
    value: str

    def matches(self, entry: Entry) -> bool:
        bound = _order_key(self.value)
        return any(_order_key(v) <= bound for v in entry.get(self.attribute))

    def __str__(self) -> str:
        return f"({self.attribute}<={_escape(self.value)})"


@dataclass(frozen=True)
class Approx(Filter):
    """Approximate match: compare with all whitespace and hyphens removed."""

    attribute: str
    value: str

    @staticmethod
    def _squash(value: str) -> str:
        return re.sub(r"[\s\-]+", "", value.lower())

    def matches(self, entry: Entry) -> bool:
        target = self._squash(self.value)
        return any(self._squash(v) == target for v in entry.get(self.attribute))

    def __str__(self) -> str:
        return f"({self.attribute}~={_escape(self.value)})"


_ESCAPE_RE = re.compile(r"\\([0-9a-fA-F]{2})")


def _unescape(text: str) -> str:
    return _ESCAPE_RE.sub(lambda m: chr(int(m.group(1), 16)), text)


def _escape(text: str) -> str:
    out = []
    for ch in text:
        if ch in "*()\\\0":
            out.append("\\%02x" % ord(ch))
        else:
            out.append(ch)
    return "".join(out)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> FilterSyntaxError:
        return FilterSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of filter")
        return self.text[self.pos]

    def expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def parse(self) -> Filter:
        node = self.parse_filter()
        if self.pos != len(self.text):
            raise self.error("trailing characters after filter")
        return node

    def parse_filter(self) -> Filter:
        self.expect("(")
        ch = self.peek()
        if ch == "&":
            self.pos += 1
            node: Filter = And(tuple(self.parse_list()))
        elif ch == "|":
            self.pos += 1
            node = Or(tuple(self.parse_list()))
        elif ch == "!":
            self.pos += 1
            node = Not(self.parse_filter())
        else:
            node = self.parse_item()
        self.expect(")")
        return node

    def parse_list(self) -> list[Filter]:
        parts = []
        while self.peek() == "(":
            parts.append(self.parse_filter())
        if not parts:
            raise self.error("empty filter list")
        return parts

    def parse_item(self) -> Filter:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "=<>~()":
            self.pos += 1
        attribute = self.text[start:self.pos].strip()
        if not attribute:
            raise self.error("missing attribute name")
        op = self.peek()
        if op in "<>~":
            self.pos += 1
            self.expect("=")
            value = self._read_value()
            if op == ">":
                return GreaterOrEqual(attribute, _unescape(value))
            if op == "<":
                return LessOrEqual(attribute, _unescape(value))
            return Approx(attribute, _unescape(value))
        self.expect("=")
        value = self._read_value()
        if value == "*":
            return Present(attribute)
        if "*" in value:
            raw_parts = value.split("*")
            initial = _unescape(raw_parts[0]) or None
            final = _unescape(raw_parts[-1]) or None
            middle = tuple(_unescape(p) for p in raw_parts[1:-1] if p)
            return Substrings(attribute, initial, middle, final)
        return Equality(attribute, _unescape(value))

    def _read_value(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] != ")":
            if self.text[self.pos] == "(":
                raise self.error("unescaped '(' in value")
            self.pos += 1
        return self.text[start:self.pos]


def parse_filter(text: str | Filter) -> Filter:
    """Parse an RFC 2254 filter string into a :class:`Filter` tree."""
    if isinstance(text, Filter):
        return text
    text = text.strip()
    if not text:
        raise FilterSyntaxError("empty filter")
    if not text.startswith("("):
        # Tolerate the common shorthand "cn=foo" without parens.
        text = f"({text})"
    return _Parser(text).parse()


def matches(filter_text: str | Filter, entry: Entry) -> bool:
    """One-shot convenience wrapper around :func:`parse_filter`."""
    return parse_filter(filter_text).matches(entry)
