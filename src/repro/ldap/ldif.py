"""LDIF (LDAP Data Interchange Format) reading and writing.

Implements the content-record subset of RFC 2849: one record per entry,
``dn:`` first, base64 for values that need it, line folding at 76 columns,
``#`` comments and blank-line separators.  Used for initial population,
backups and the synchronization examples.
"""

from __future__ import annotations

import base64
import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .protocol import Modification

from .dn import DN
from .entry import Entry

_SAFE_INIT = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "!\"#$%&'()*+,-./;<=>?@[\\]^_`{|}~"
)
_WRAP = 76


def _needs_base64(value: str) -> bool:
    if value == "":
        return False
    if value[0] in (" ", ":", "<"):
        return True
    if value != value.strip():
        return True
    return any(ord(ch) < 32 or ord(ch) > 126 for ch in value)


def _fold(line: str) -> Iterator[str]:
    if len(line) <= _WRAP:
        yield line
        return
    yield line[:_WRAP]
    rest = line[_WRAP:]
    step = _WRAP - 1
    for i in range(0, len(rest), step):
        yield " " + rest[i:i + step]


def _emit(name: str, value: str) -> Iterator[str]:
    if _needs_base64(value):
        encoded = base64.b64encode(value.encode("utf-8")).decode("ascii")
        yield from _fold(f"{name}:: {encoded}")
    else:
        yield from _fold(f"{name}: {value}")


def entry_to_ldif(entry: Entry) -> str:
    """Serialize one entry as an LDIF record (without trailing blank line)."""
    lines: list[str] = []
    lines.extend(_emit("dn", str(entry.dn)))
    # objectClass first, by convention.
    for value in entry.get("objectClass"):
        lines.extend(_emit("objectClass", value))
    for name, values in entry.attributes.items():
        if name.lower() == "objectclass":
            continue
        for value in values:
            lines.extend(_emit(name, value))
    return "\n".join(lines)


def write_ldif(entries: Iterable[Entry], stream: TextIO | None = None) -> str:
    """Write entries to *stream* (or return a string) as an LDIF document."""
    own = stream is None
    out = stream or io.StringIO()
    out.write("version: 1\n")
    for entry in entries:
        out.write("\n")
        out.write(entry_to_ldif(entry))
        out.write("\n")
    if own:
        return out.getvalue()  # type: ignore[union-attr]
    return ""


class LdifSyntaxError(ValueError):
    pass


# ---------------------------------------------------------------------------
# Change records (the RFC 2849 update format: changetype add/modify/...)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LdifChange:
    """One LDIF change record.

    ``changetype`` is one of ``add``, ``delete``, ``modify``, ``modrdn``.
    For adds, ``attributes`` holds the new entry's attributes; for
    modifies, ``modifications`` holds the parsed Modification list; for
    modrdn, ``new_rdn``/``delete_old_rdn`` are set.
    """

    dn: DN
    changetype: str
    attributes: dict[str, list[str]] | None = None
    modifications: tuple["Modification", ...] = ()
    new_rdn: str | None = None
    delete_old_rdn: bool = True


def write_change_ldif(changes: Iterable[LdifChange]) -> str:
    """Serialize change records as an LDIF update document."""
    blocks: list[str] = ["version: 1"]
    for change in changes:
        lines: list[str] = []
        lines.extend(_emit("dn", str(change.dn)))
        lines.append(f"changetype: {change.changetype}")
        if change.changetype == "add":
            for name, values in (change.attributes or {}).items():
                for value in values:
                    lines.extend(_emit(name, value))
        elif change.changetype == "modify":
            for mod in change.modifications:
                lines.append(f"{mod.op.value}: {mod.attribute}")
                for value in mod.values:
                    lines.extend(_emit(mod.attribute, value))
                lines.append("-")
        elif change.changetype == "modrdn":
            lines.extend(_emit("newrdn", change.new_rdn or ""))
            lines.append(f"deleteoldrdn: {1 if change.delete_old_rdn else 0}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def parse_change_ldif(text: str | TextIO) -> list[LdifChange]:
    """Parse an LDIF update document into change records."""
    from .protocol import ModOp, Modification

    if isinstance(text, str):
        lines: Iterable[str] = text.splitlines()
    else:
        lines = text
    changes: list[LdifChange] = []
    block: list[tuple[str, str]] = []

    def decode(line: str) -> tuple[str, str]:
        name, _, rest = line.partition(":")
        name = name.strip()
        if rest.startswith(":"):
            value = base64.b64decode(rest[1:].strip()).decode("utf-8")
        else:
            value = rest.strip()
        return name, value

    def flush() -> None:
        nonlocal block
        if not block:
            return
        fields = block
        block = []
        if fields[0][0].lower() != "dn":
            raise LdifSyntaxError("change record must start with dn")
        dn = DN.parse(fields[0][1])
        if len(fields) < 2 or fields[1][0].lower() != "changetype":
            raise LdifSyntaxError(f"{dn}: missing changetype")
        changetype = fields[1][1].lower()
        body = fields[2:]
        if changetype == "add":
            attributes: dict[str, list[str]] = {}
            for name, value in body:
                attributes.setdefault(name, []).append(value)
            changes.append(LdifChange(dn, "add", attributes=attributes))
        elif changetype == "delete":
            changes.append(LdifChange(dn, "delete"))
        elif changetype == "modify":
            mods: list[Modification] = []
            i = 0
            while i < len(body):
                op_name, attribute = body[i]
                try:
                    op = ModOp(op_name.lower())
                except ValueError:
                    raise LdifSyntaxError(
                        f"{dn}: bad modify op {op_name!r}"
                    ) from None
                i += 1
                values: list[str] = []
                while i < len(body) and body[i][0] != "-":
                    if body[i][0].lower() != attribute.lower():
                        raise LdifSyntaxError(
                            f"{dn}: value for {body[i][0]!r} inside "
                            f"{attribute!r} change"
                        )
                    values.append(body[i][1])
                    i += 1
                if i < len(body) and body[i][0] == "-":
                    i += 1
                mods.append(Modification(op, attribute, tuple(values)))
            changes.append(LdifChange(dn, "modify", modifications=tuple(mods)))
        elif changetype == "modrdn":
            new_rdn = None
            delete_old = True
            for name, value in body:
                if name.lower() == "newrdn":
                    new_rdn = value
                elif name.lower() == "deleteoldrdn":
                    delete_old = value.strip() not in ("0", "false")
            if new_rdn is None:
                raise LdifSyntaxError(f"{dn}: modrdn without newrdn")
            changes.append(
                LdifChange(dn, "modrdn", new_rdn=new_rdn, delete_old_rdn=delete_old)
            )
        else:
            raise LdifSyntaxError(f"{dn}: unknown changetype {changetype!r}")

    for line in _unfold(lines):
        stripped = line.strip()
        if not stripped:
            flush()
            continue
        if stripped.lower().startswith("version:"):
            continue
        if stripped == "-":
            block.append(("-", ""))
            continue
        if ":" not in stripped:
            raise LdifSyntaxError(f"malformed LDIF line: {line!r}")
        name, value = decode(stripped)
        if name.lower() == "dn" and block:
            flush()
        block.append((name, value))
    flush()
    return changes


def apply_changes(connection, changes: Iterable[LdifChange]) -> int:
    """Replay change records through an LDAP connection; returns count."""
    applied = 0
    for change in changes:
        if change.changetype == "add":
            connection.add(change.dn, change.attributes or {})
        elif change.changetype == "delete":
            connection.delete(change.dn)
        elif change.changetype == "modify":
            connection.modify(change.dn, list(change.modifications))
        elif change.changetype == "modrdn":
            connection.modify_rdn(
                change.dn, change.new_rdn, change.delete_old_rdn
            )
        applied += 1
    return applied


def _unfold(lines: Iterable[str]) -> Iterator[str]:
    """Join continuation lines; strip comments; yield logical lines."""
    pending: str | None = None
    for raw in lines:
        line = raw.rstrip("\n")
        if line.startswith("#"):
            continue
        if line.startswith(" "):
            if pending is None:
                raise LdifSyntaxError(f"continuation with no preceding line: {raw!r}")
            pending += line[1:]
            continue
        if pending is not None:
            yield pending
        pending = line
    if pending is not None:
        yield pending


def parse_ldif(text: str | TextIO) -> list[Entry]:
    """Parse an LDIF document into a list of entries (document order)."""
    if isinstance(text, str):
        lines: Iterable[str] = text.splitlines()
    else:
        lines = text
    entries: list[Entry] = []
    dn: DN | None = None
    attrs: list[tuple[str, str]] = []

    def flush() -> None:
        nonlocal dn, attrs
        if dn is None:
            if attrs:
                raise LdifSyntaxError("attributes before dn line")
            return
        entry = Entry(dn)
        for name, value in attrs:
            values = entry.attributes.get(name)
            values.append(value)
            entry.attributes.put(name, values)
        entries.append(entry)
        dn, attrs = None, []

    for line in _unfold(lines):
        if not line.strip():
            flush()
            continue
        if line.lower().startswith("version:"):
            continue
        if ":" not in line:
            raise LdifSyntaxError(f"malformed LDIF line: {line!r}")
        name, _, rest = line.partition(":")
        name = name.strip()
        if rest.startswith(":"):
            value = base64.b64decode(rest[1:].strip()).decode("utf-8")
        elif rest.startswith("<"):
            raise LdifSyntaxError("URL-valued LDIF attributes are not supported")
        else:
            value = rest.strip()
        if name.lower() == "dn":
            if dn is not None:
                flush()
            dn = DN.parse(value)
        else:
            if dn is None:
                raise LdifSyntaxError(f"attribute line before dn: {line!r}")
            attrs.append((name, value))
    flush()
    return entries
