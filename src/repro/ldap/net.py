"""A network transport for the LDAP service.

Real LDAP speaks BER over TCP; BER encoding is orthogonal to every claim
in the paper, so this transport keeps the wire simple — one JSON object
per line — while providing the property that matters: a *process
boundary* between clients and the server (or the LTAP gateway, which is
what "any LDAP tool can contact LTAP" looks like when the tool is on
another machine).

Server side::

    with LdapTcpServer(gateway) as listener:     # or LdapTcpServer(server)
        print(listener.address)                  # (host, port)
        ...

Client side::

    remote = RemoteLdapHandler(*listener.address)
    conn = LdapConnection(remote)                # the usual client API
    conn.add("cn=X,o=Lucent", {...})

Sessions are tracked server-side by a per-connection id, so binds and
LTAP session state behave exactly as in-process.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any

from .dn import DN, Rdn
from .entry import Entry
from .protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapHandler,
    LdapRequest,
    LdapResponse,
    LdapResult,
    ModOp,
    Modification,
    ModifyRdnRequest,
    ModifyRequest,
    Scope,
    SearchRequest,
    Session,
    UnbindRequest,
)
from .result import LdapError, ResultCode

# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


def encode_request(request: LdapRequest) -> dict[str, Any]:
    if isinstance(request, BindRequest):
        return {"op": "bind", "dn": str(request.dn), "password": request.password}
    if isinstance(request, UnbindRequest):
        return {"op": "unbind"}
    if isinstance(request, AddRequest):
        return {
            "op": "add",
            "dn": str(request.entry.dn),
            "attributes": request.entry.attributes.to_dict(),
        }
    if isinstance(request, DeleteRequest):
        return {"op": "delete", "dn": str(request.dn)}
    if isinstance(request, ModifyRequest):
        return {
            "op": "modify",
            "dn": str(request.dn),
            "modifications": [
                [m.op.value, m.attribute, list(m.values)]
                for m in request.modifications
            ],
        }
    if isinstance(request, ModifyRdnRequest):
        return {
            "op": "modrdn",
            "dn": str(request.dn),
            "new_rdn": str(request.new_rdn),
            "delete_old_rdn": request.delete_old_rdn,
        }
    if isinstance(request, SearchRequest):
        return {
            "op": "search",
            "base": str(request.base),
            "scope": request.scope.value,
            "filter": str(request.filter),
            "attributes": list(request.attributes),
            "size_limit": request.size_limit,
        }
    if isinstance(request, CompareRequest):
        return {
            "op": "compare",
            "dn": str(request.dn),
            "attribute": request.attribute,
            "value": request.value,
        }
    raise LdapError(
        ResultCode.PROTOCOL_ERROR, f"cannot encode {type(request).__name__}"
    )


def decode_request(payload: dict[str, Any]) -> LdapRequest:
    op = payload.get("op")
    if op == "bind":
        return BindRequest(DN.parse(payload["dn"]), payload["password"])
    if op == "unbind":
        return UnbindRequest()
    if op == "add":
        return AddRequest(Entry(payload["dn"], payload["attributes"]))
    if op == "delete":
        return DeleteRequest(DN.parse(payload["dn"]))
    if op == "modify":
        mods = tuple(
            Modification(ModOp(o), attribute, tuple(values))
            for o, attribute, values in payload["modifications"]
        )
        return ModifyRequest(DN.parse(payload["dn"]), mods)
    if op == "modrdn":
        return ModifyRdnRequest(
            DN.parse(payload["dn"]),
            Rdn.parse(payload["new_rdn"]),
            payload.get("delete_old_rdn", True),
        )
    if op == "search":
        return SearchRequest(
            DN.parse(payload["base"]),
            Scope(payload.get("scope", "sub")),
            payload.get("filter", "(objectClass=*)"),
            tuple(payload.get("attributes", ())),
            payload.get("size_limit", 0),
        )
    if op == "compare":
        return CompareRequest(
            DN.parse(payload["dn"]), payload["attribute"], payload["value"]
        )
    raise LdapError(ResultCode.PROTOCOL_ERROR, f"unknown wire op {op!r}")


def encode_response(response: LdapResponse) -> dict[str, Any]:
    return {
        "code": int(response.result.code),
        "matched_dn": response.result.matched_dn,
        "message": response.result.message,
        "entries": [
            {"dn": str(e.dn), "attributes": e.attributes.to_dict()}
            for e in response.entries
        ],
    }


def decode_response(payload: dict[str, Any]) -> LdapResponse:
    result = LdapResult(
        ResultCode(payload["code"]),
        payload.get("matched_dn", ""),
        payload.get("message", ""),
    )
    entries = [
        Entry(item["dn"], item["attributes"])
        for item in payload.get("entries", ())
    ]
    return LdapResponse(result, entries)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class _ConnectionHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        session = Session()  # one LDAP session per TCP connection
        handler: LdapHandler = self.server.ldap_handler  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            try:
                payload = json.loads(line)
                request = decode_request(payload)
                response = handler.process(request, session)
            except LdapError as exc:
                response = LdapResponse(
                    LdapResult(exc.code, exc.matched_dn, exc.message)
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                response = LdapResponse(
                    LdapResult(ResultCode.PROTOCOL_ERROR, "", str(exc))
                )
            out = json.dumps(encode_response(response)) + "\n"
            try:
                self.wfile.write(out.encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return


class LdapTcpServer:
    """Serves any :class:`LdapHandler` over newline-delimited JSON/TCP."""

    def __init__(self, handler: LdapHandler, host: str = "127.0.0.1", port: int = 0):
        self._server = socketserver.ThreadingTCPServer(
            (host, port), _ConnectionHandler, bind_and_activate=True
        )
        self._server.daemon_threads = True
        self._server.ldap_handler = handler  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="ldap-tcp", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "LdapTcpServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class RemoteLdapHandler:
    """Client-side stub: implements the handler interface over a socket,
    so :class:`~repro.ldap.client.LdapConnection` works unchanged."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    def process(self, request: LdapRequest, session: Session | None = None) -> LdapResponse:
        # The server tracks the session per TCP connection; the local
        # session object is unused except by client-side bookkeeping.
        payload = json.dumps(encode_request(request)) + "\n"
        with self._lock:
            self._file.write(payload.encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise LdapError(ResultCode.UNAVAILABLE, "server closed the connection")
        return decode_response(json.loads(line))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RemoteLdapHandler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
