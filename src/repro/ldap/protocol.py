"""LDAP protocol messages.

The wire format of real LDAP is BER over TCP; MetaComm's claims are about
*semantics* (atomic single-entry updates, no transactions, trigger
interception), so the transport here is message objects handed to a
``process(request, session)`` method.  Anything that implements
:class:`LdapHandler` can stand in for an LDAP server — notably the LTAP
gateway, which "pretends to be an LDAP server" (paper section 4.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Protocol

from .dn import DN, Rdn
from .entry import Entry
from .filter import Filter
from .result import ResultCode

_message_ids = itertools.count(1)


class ModOp(enum.Enum):
    ADD = "add"
    DELETE = "delete"
    REPLACE = "replace"


@dataclass(frozen=True)
class Modification:
    """One component of a Modify operation."""

    op: ModOp
    attribute: str
    values: tuple[str, ...] = ()

    @classmethod
    def add(cls, attribute: str, *values: str) -> "Modification":
        return cls(ModOp.ADD, attribute, tuple(values))

    @classmethod
    def delete(cls, attribute: str, *values: str) -> "Modification":
        return cls(ModOp.DELETE, attribute, tuple(values))

    @classmethod
    def replace(cls, attribute: str, *values: str) -> "Modification":
        return cls(ModOp.REPLACE, attribute, tuple(values))


class Scope(enum.Enum):
    BASE = "base"
    ONE = "one"
    SUB = "sub"


@dataclass
class LdapRequest:
    """Base class for all request PDUs."""

    def __post_init__(self) -> None:
        self.message_id = next(_message_ids)


@dataclass
class BindRequest(LdapRequest):
    dn: DN
    password: str


@dataclass
class UnbindRequest(LdapRequest):
    pass


@dataclass
class AddRequest(LdapRequest):
    entry: Entry


@dataclass
class DeleteRequest(LdapRequest):
    dn: DN


@dataclass
class ModifyRequest(LdapRequest):
    dn: DN
    modifications: tuple[Modification, ...]


@dataclass
class ModifyRdnRequest(LdapRequest):
    dn: DN
    new_rdn: Rdn
    delete_old_rdn: bool = True


@dataclass
class SearchRequest(LdapRequest):
    base: DN
    scope: Scope = Scope.SUB
    filter: Filter | str = "(objectClass=*)"
    attributes: tuple[str, ...] = ()
    size_limit: int = 0


@dataclass
class CompareRequest(LdapRequest):
    dn: DN
    attribute: str
    value: str


@dataclass
class LdapResult:
    """The resultCode / matchedDN / errorMessage triple of LDAP responses."""

    code: ResultCode = ResultCode.SUCCESS
    matched_dn: str = ""
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.code in (
            ResultCode.SUCCESS,
            ResultCode.COMPARE_TRUE,
            ResultCode.COMPARE_FALSE,
        )


@dataclass
class LdapResponse:
    result: LdapResult
    entries: list[Entry] = field(default_factory=list)


class LdapHandler(Protocol):
    """Anything that accepts LDAP requests: a server or a gateway."""

    def process(self, request: LdapRequest, session: "Session | None" = None) -> LdapResponse:
        ...


class Session:
    """Per-connection state: bind identity plus arbitrary gateway state.

    LTAP stores persistent-connection/synchronization markers here
    (paper section 5.1 describes why persistent connections were added).
    """

    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.session_id = next(self._ids)
        self.bound_dn: DN | None = None
        self.state: dict[str, object] = {}

    @property
    def authenticated(self) -> bool:
        return self.bound_dn is not None
