"""Multi-master LDAP replication.

The paper (section 2) notes that "LDAP servers make extensive use of
replication to make directory information highly available" and that
directories provide a *relaxed write-write consistency*: every copy of an
object eventually holds the same attribute values.  This module implements
that model:

* each server's backend changelog is shipped to its peers;
* loop suppression uses origin CSNs (a change is applied at most once per
  server, no matter how many paths it travels);
* write-write conflicts are resolved last-writer-wins *per attribute*
  using the origin CSN order, which is total (sequence, server id);
* structural conflicts degrade gracefully: a replicated add over an
  existing entry becomes an attribute-level merge, a modify/delete of a
  missing entry is skipped.

The engine is pull-based: :meth:`ReplicationEngine.propagate` drains all
pending changes until the topology reaches a fixpoint, which makes tests
and benchmarks deterministic (no background threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend import ChangeRecord, ChangeType, Csn
from .entry import Entry
from .protocol import ModOp, Modification
from .result import LdapError, ResultCode
from .server import LdapServer


@dataclass
class ReplicationAgreement:
    """A one-way supplier→consumer shipping lane."""

    supplier: LdapServer
    consumer: LdapServer
    cursor: int = 0  # index into the supplier changelog


class ReplicationEngine:
    """Coordinates a set of agreements into an (eventually) convergent mesh."""

    def __init__(self) -> None:
        self.agreements: list[ReplicationAgreement] = []
        # server_id -> set of origin CSNs that server has already applied.
        self._applied: dict[str, set[Csn]] = {}
        # server_id -> (dn_norm, attr_lower) -> origin CSN of last write.
        self._attr_csn: dict[str, dict[tuple, Csn]] = {}
        self._servers: dict[str, LdapServer] = {}
        self.statistics = {"shipped": 0, "skipped": 0, "merged": 0}

    # -- topology -----------------------------------------------------------

    def connect(self, supplier: LdapServer, consumer: LdapServer) -> None:
        """Add a one-way agreement.  Call twice for a multi-master pair."""
        self._register(supplier)
        self._register(consumer)
        self.agreements.append(ReplicationAgreement(supplier, consumer))

    def connect_mesh(self, servers: list[LdapServer]) -> None:
        """Fully connect *servers* as multi-masters."""
        for supplier in servers:
            for consumer in servers:
                if supplier is not consumer:
                    self.connect(supplier, consumer)

    def _register(self, server: LdapServer) -> None:
        if server.server_id in self._servers:
            if self._servers[server.server_id] is not server:
                raise ValueError(f"duplicate server_id {server.server_id!r}")
            return
        self._servers[server.server_id] = server
        self._applied[server.server_id] = set()
        self._attr_csn[server.server_id] = {}
        server.backend.add_listener(
            lambda record, sid=server.server_id: self._observe(sid, record)
        )
        # Account for history that predates registration.
        for record in server.backend.changelog:
            self._observe(server.server_id, record)

    def _observe(self, server_id: str, record: ChangeRecord) -> None:
        """Track local writes so conflict resolution can order them."""
        self._applied[server_id].add(record.origin_csn)
        table = self._attr_csn[server_id]
        origin = record.origin_csn
        if record.change_type is ChangeType.MODIFY:
            for mod in record.modifications:
                table[(record.dn.normalized(), mod.attribute.lower())] = origin
        elif record.after is not None:
            for name in record.after.attributes.names():
                table[(record.after.dn.normalized(), name.lower())] = origin

    # -- propagation ----------------------------------------------------------

    def propagate(self, max_rounds: int = 100) -> int:
        """Ship pending changes until nothing moves.  Returns changes shipped."""
        total = 0
        for _ in range(max_rounds):
            moved = 0
            for agreement in self.agreements:
                moved += self._drain(agreement)
            total += moved
            if not moved:
                return total
        raise RuntimeError("replication did not reach a fixpoint")

    def _drain(self, agreement: ReplicationAgreement) -> int:
        changelog = agreement.supplier.backend.changelog
        shipped = 0
        while agreement.cursor < len(changelog):
            record = changelog[agreement.cursor]
            agreement.cursor += 1
            if self._apply(agreement.consumer, record):
                shipped += 1
        return shipped

    def _apply(self, consumer: LdapServer, record: ChangeRecord) -> bool:
        origin = record.origin_csn
        applied = self._applied[consumer.server_id]
        if origin in applied:
            self.statistics["skipped"] += 1
            return False
        applied.add(origin)
        backend = consumer.backend
        try:
            if record.change_type is ChangeType.ADD:
                assert record.after is not None
                try:
                    backend.add(record.after, origin=origin)
                except LdapError as exc:
                    if exc.code is not ResultCode.ENTRY_ALREADY_EXISTS:
                        raise
                    self._merge_add(consumer, record.after, origin)
            elif record.change_type is ChangeType.DELETE:
                backend.delete(record.dn, origin=origin)
            elif record.change_type is ChangeType.MODIFY:
                mods = self._filter_stale(consumer, record)
                if not mods:
                    self.statistics["skipped"] += 1
                    return False
                backend.modify(record.dn, mods, origin=origin)
            elif record.change_type is ChangeType.MODIFY_RDN:
                assert record.new_rdn is not None
                backend.modify_rdn(record.dn, record.new_rdn, origin=origin)
            self.statistics["shipped"] += 1
            return True
        except LdapError as exc:
            # Structural conflicts (entry vanished, parent missing, ...) are
            # tolerated: the next full synchronization repairs them, exactly
            # as MetaComm's resynchronization path does for devices.
            if exc.code in (
                ResultCode.NO_SUCH_OBJECT,
                ResultCode.NOT_ALLOWED_ON_NON_LEAF,
                ResultCode.ATTRIBUTE_OR_VALUE_EXISTS,
                ResultCode.UNDEFINED_ATTRIBUTE_TYPE,
                ResultCode.ENTRY_ALREADY_EXISTS,
            ):
                self.statistics["skipped"] += 1
                return False
            raise

    def _filter_stale(
        self, consumer: LdapServer, record: ChangeRecord
    ) -> list[Modification]:
        """Drop REPLACE mods that lost to a newer write at the consumer."""
        table = self._attr_csn[consumer.server_id]
        origin = record.origin_csn
        kept: list[Modification] = []
        for mod in record.modifications:
            if mod.op is ModOp.REPLACE:
                last = table.get((record.dn.normalized(), mod.attribute.lower()))
                if last is not None and origin < last:
                    self.statistics["merged"] += 1
                    continue
            kept.append(mod)
        return kept

    def _merge_add(self, consumer: LdapServer, incoming: Entry, origin: Csn) -> None:
        """Attribute-level merge when both masters added the same entry."""
        table = self._attr_csn[consumer.server_id]
        mods: list[Modification] = []
        for name, values in incoming.attributes.items():
            last = table.get((incoming.dn.normalized(), name.lower()))
            if last is not None and origin < last:
                continue
            mods.append(Modification.replace(name, *values))
        if mods:
            consumer.backend.modify(incoming.dn, mods, origin=origin)
            self.statistics["merged"] += 1

    # -- verification -----------------------------------------------------------

    def converged(self) -> bool:
        """True when every server holds identical entry sets."""
        snapshots = []
        for server in self._servers.values():
            snapshot = {
                str(e.dn).lower(): e.attributes.normalized()
                for e in server.backend.all_entries()
            }
            snapshots.append(snapshot)
        return all(s == snapshots[0] for s in snapshots[1:])
