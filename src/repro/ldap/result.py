"""LDAP result codes and protocol errors.

The codes mirror the numeric assignments of RFC 2251 section 4.1.10 so that
users familiar with real LDAP servers see familiar diagnostics.  Only the
codes that the MetaComm stack can actually produce are defined; adding more
is a one-line change.
"""

from __future__ import annotations

import enum


class ResultCode(enum.IntEnum):
    """Numeric LDAP result codes (RFC 2251 compatible subset)."""

    SUCCESS = 0
    OPERATIONS_ERROR = 1
    PROTOCOL_ERROR = 2
    TIME_LIMIT_EXCEEDED = 3
    SIZE_LIMIT_EXCEEDED = 4
    COMPARE_FALSE = 5
    COMPARE_TRUE = 6
    UNDEFINED_ATTRIBUTE_TYPE = 17
    CONSTRAINT_VIOLATION = 19
    ATTRIBUTE_OR_VALUE_EXISTS = 20
    INVALID_ATTRIBUTE_SYNTAX = 21
    NO_SUCH_OBJECT = 32
    INVALID_DN_SYNTAX = 34
    INVALID_CREDENTIALS = 49
    INSUFFICIENT_ACCESS_RIGHTS = 50
    BUSY = 51
    UNAVAILABLE = 52
    UNWILLING_TO_PERFORM = 53
    NAMING_VIOLATION = 64
    OBJECT_CLASS_VIOLATION = 65
    NOT_ALLOWED_ON_NON_LEAF = 66
    NOT_ALLOWED_ON_RDN = 67
    ENTRY_ALREADY_EXISTS = 68
    OBJECT_CLASS_MODS_PROHIBITED = 69
    OTHER = 80


class LdapError(Exception):
    """An LDAP operation failed.

    Carries the :class:`ResultCode` plus a human-readable diagnostic
    message, exactly like the ``resultCode``/``errorMessage`` pair of an
    LDAP response PDU.
    """

    def __init__(self, code: ResultCode, message: str = "", matched_dn: str = ""):
        super().__init__(f"{code.name}({int(code)}): {message}")
        self.code = code
        self.message = message
        self.matched_dn = matched_dn


class NoSuchObjectError(LdapError):
    def __init__(self, message: str = "", matched_dn: str = ""):
        super().__init__(ResultCode.NO_SUCH_OBJECT, message, matched_dn)


class EntryAlreadyExistsError(LdapError):
    def __init__(self, message: str = ""):
        super().__init__(ResultCode.ENTRY_ALREADY_EXISTS, message)


class InvalidDnError(LdapError):
    def __init__(self, message: str = ""):
        super().__init__(ResultCode.INVALID_DN_SYNTAX, message)


class SchemaViolationError(LdapError):
    def __init__(self, message: str = ""):
        super().__init__(ResultCode.OBJECT_CLASS_VIOLATION, message)


class NotAllowedOnNonLeafError(LdapError):
    def __init__(self, message: str = ""):
        super().__init__(ResultCode.NOT_ALLOWED_ON_NON_LEAF, message)


class UnwillingToPerformError(LdapError):
    def __init__(self, message: str = ""):
        super().__init__(ResultCode.UNWILLING_TO_PERFORM, message)


class BusyError(LdapError):
    """The server (or the LTAP gateway) is refusing writes, e.g. during
    quiesce or while an entry is locked by trigger processing."""

    def __init__(self, message: str = ""):
        super().__init__(ResultCode.BUSY, message)


class ServerBusyError(BusyError):
    """Admission control turned the write away: the Update Manager's
    device links and coordinator lanes are saturated, and the system
    prefers a typed busy answer over unbounded queueing.  Clients should
    back off and retry; the rejected write never reached the directory."""
