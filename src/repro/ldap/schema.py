"""LDAP schema: attribute types and object classes.

Models the X.500/LDAP schema machinery that shaped MetaComm's integrated
schema design (paper section 5.2):

* object classes are STRUCTURAL, AUXILIARY or ABSTRACT;
* auxiliary classes may not declare mandatory (MUST) attributes — this is
  the real-LDAP limitation the paper calls out, and we enforce it at class
  definition time;
* an entry must carry exactly one structural class chain plus any number of
  auxiliary classes, all MUSTs present, and every attribute allowed by some
  class;
* attribute types may be single-valued.

Typing is intentionally weak (everything is a directory string); syntax
checking is limited to single-value enforcement plus optional value
validators, mirroring the "very weak typing" of section 5.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from .entry import Entry
from .result import LdapError, ResultCode, SchemaViolationError


class ClassKind(enum.Enum):
    STRUCTURAL = "structural"
    AUXILIARY = "auxiliary"
    ABSTRACT = "abstract"


@dataclass(frozen=True)
class AttributeType:
    """Definition of one attribute type.

    ``validator`` (when given) receives each value and returns an error
    string or ``None`` — the hook used to model "intra-entry constraints"
    the paper wishes LDAP had (section 5.3 suggests them as an improvement).
    """

    name: str
    aliases: tuple[str, ...] = ()
    single_value: bool = False
    description: str = ""
    validator: Callable[[str], str | None] | None = None

    def all_names(self) -> tuple[str, ...]:
        return (self.name,) + self.aliases


@dataclass(frozen=True)
class ObjectClass:
    """Definition of one object class."""

    name: str
    kind: ClassKind = ClassKind.STRUCTURAL
    sup: str | None = None
    must: tuple[str, ...] = ()
    may: tuple[str, ...] = ()
    description: str = ""


class Schema:
    """A registry of attribute types and object classes with entry checking."""

    def __init__(self, strict: bool = True):
        self._attributes: dict[str, AttributeType] = {}
        self._classes: dict[str, ObjectClass] = {}
        #: Intra-entry constraints (section 5.3: "Improving typing with
        #: intra-entry constraints would not harm scalability or
        #: flexibility and would do much to maintain data quality").
        self._constraints: dict[str, Callable[[Entry], str | None]] = {}
        #: When False, unknown attributes/classes are tolerated — the mode
        #: an off-the-shelf browser effectively sees (paper section 5.2).
        self.strict = strict

    # -- definition -------------------------------------------------------

    def define_attribute(self, attribute: AttributeType) -> AttributeType:
        for name in attribute.all_names():
            key = name.lower()
            if key in self._attributes:
                raise ValueError(f"attribute type {name!r} already defined")
            self._attributes[key] = attribute
        return attribute

    def define_class(self, object_class: ObjectClass) -> ObjectClass:
        key = object_class.name.lower()
        if key in self._classes:
            raise ValueError(f"object class {object_class.name!r} already defined")
        if object_class.kind is ClassKind.AUXILIARY and object_class.must:
            # The limitation MetaComm section 5.2 had to design around.
            raise ValueError(
                f"auxiliary class {object_class.name!r} may not declare "
                f"mandatory attributes: {', '.join(object_class.must)}"
            )
        if object_class.sup is not None and object_class.sup.lower() not in self._classes:
            raise ValueError(
                f"superclass {object_class.sup!r} of {object_class.name!r} not defined"
            )
        for attr in object_class.must + object_class.may:
            if attr.lower() not in self._attributes:
                raise ValueError(
                    f"class {object_class.name!r} references undefined "
                    f"attribute {attr!r}"
                )
        self._classes[key] = object_class
        return object_class

    def define_entry_constraint(
        self, name: str, constraint: Callable[[Entry], str | None]
    ) -> None:
        """Register a cross-attribute constraint evaluated on every entry.

        The callable returns an error string for violating entries or
        ``None``.  This is the section-5.3 extension: constraints that see
        the whole entry (e.g. "a definityUser with an extension must have a
        matching telephoneNumber") without requiring transactions."""
        if name in self._constraints:
            raise ValueError(f"entry constraint {name!r} already defined")
        self._constraints[name] = constraint

    def remove_entry_constraint(self, name: str) -> None:
        del self._constraints[name]

    # -- lookup -----------------------------------------------------------

    def attribute(self, name: str) -> AttributeType | None:
        return self._attributes.get(name.lower())

    def object_class(self, name: str) -> ObjectClass | None:
        return self._classes.get(name.lower())

    def attribute_names(self) -> list[str]:
        return sorted({a.name for a in self._attributes.values()})

    def class_names(self) -> list[str]:
        return sorted(c.name for c in self._classes.values())

    def superclass_chain(self, name: str) -> list[ObjectClass]:
        """The class and its transitive superclasses, nearest first."""
        chain: list[ObjectClass] = []
        seen: set[str] = set()
        current: str | None = name
        while current is not None:
            key = current.lower()
            if key in seen:
                raise LdapError(
                    ResultCode.OTHER, f"object class cycle at {current!r}"
                )
            seen.add(key)
            cls = self._classes.get(key)
            if cls is None:
                break
            chain.append(cls)
            current = cls.sup
        return chain

    # -- entry validation ---------------------------------------------------

    def check_entry(self, entry: Entry) -> None:
        """Raise :class:`SchemaViolationError` when *entry* is malformed."""
        classes = entry.object_classes
        if not classes:
            raise SchemaViolationError(f"{entry.dn}: entry has no objectClass")

        resolved: list[ObjectClass] = []
        for name in classes:
            cls = self.object_class(name)
            if cls is None:
                if self.strict:
                    raise SchemaViolationError(
                        f"{entry.dn}: unknown object class {name!r}"
                    )
                continue
            for member in self.superclass_chain(name):
                if member not in resolved:
                    resolved.append(member)

        structural = [c for c in resolved if c.kind is ClassKind.STRUCTURAL]
        if self.strict and not structural:
            raise SchemaViolationError(
                f"{entry.dn}: entry has no structural object class"
            )

        must: set[str] = set()
        allowed: set[str] = {"objectclass"}
        for cls in resolved:
            must.update(a.lower() for a in cls.must)
            allowed.update(a.lower() for a in cls.must)
            allowed.update(a.lower() for a in cls.may)

        present = {name.lower() for name in entry.attributes.names()}
        missing = must - present
        if missing:
            raise SchemaViolationError(
                f"{entry.dn}: missing mandatory attributes: {', '.join(sorted(missing))}"
            )

        if self.strict:
            extra = present - allowed
            if extra:
                raise SchemaViolationError(
                    f"{entry.dn}: attributes not allowed by object classes: "
                    f"{', '.join(sorted(extra))}"
                )

        for name, values in entry.attributes.items():
            attr_type = self.attribute(name)
            if attr_type is None:
                if self.strict and name.lower() != "objectclass":
                    raise LdapError(
                        ResultCode.UNDEFINED_ATTRIBUTE_TYPE,
                        f"{entry.dn}: undefined attribute type {name!r}",
                    )
                continue
            if attr_type.single_value and len(values) > 1:
                raise LdapError(
                    ResultCode.CONSTRAINT_VIOLATION,
                    f"{entry.dn}: attribute {name} is single-valued",
                )
            if attr_type.validator is not None:
                for value in values:
                    problem = attr_type.validator(value)
                    if problem:
                        raise LdapError(
                            ResultCode.INVALID_ATTRIBUTE_SYNTAX,
                            f"{entry.dn}: {name}={value!r}: {problem}",
                        )

        for name, constraint in self._constraints.items():
            problem = constraint(entry)
            if problem:
                raise LdapError(
                    ResultCode.CONSTRAINT_VIOLATION,
                    f"{entry.dn}: constraint {name!r}: {problem}",
                )


def define_attributes(schema: Schema, names: Iterable[str], **kwargs) -> None:
    """Convenience: define a batch of plain directory-string attributes."""
    for name in names:
        schema.define_attribute(AttributeType(name=name, **kwargs))
