"""The LDAP server: protocol dispatch over a :class:`Backend`.

This is the materialized-view store of MetaComm.  It implements
:class:`~repro.ldap.protocol.LdapHandler`, the same interface the LTAP
gateway exposes, so clients cannot tell whether they are talking to the
server directly or through the gateway.
"""

from __future__ import annotations

from typing import Iterable

from .backend import Backend, ChangeListener
from .dn import DN
from .entry import Entry
from .protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapRequest,
    LdapResponse,
    LdapResult,
    ModifyRdnRequest,
    ModifyRequest,
    SearchRequest,
    Session,
    UnbindRequest,
)
from .result import LdapError, ResultCode
from .schema import Schema
from ..obs.metrics import MetricsRegistry
from ..obs.views import StatsView


class LdapServer:
    """An in-process LDAP server.

    Parameters
    ----------
    suffixes:
        Naming contexts served (e.g. ``["o=Lucent"]``).
    schema:
        Optional schema; when given, add/modify operations are checked.
    root_dn / root_password:
        A directory-manager identity that can always bind.
    require_bind_for_writes:
        When True, unauthenticated sessions get
        ``insufficientAccessRights`` on update operations — the "very
        simple security mechanism" of the paper's section 7.
    """

    def __init__(
        self,
        suffixes: Iterable[DN | str],
        schema: Schema | None = None,
        server_id: str = "srv1",
        root_dn: str = "cn=Directory Manager",
        root_password: str = "secret",
        require_bind_for_writes: bool = False,
        registry: MetricsRegistry | None = None,
    ):
        self.backend = Backend(suffixes, schema=schema, server_id=server_id)
        self.server_id = server_id
        self.root_dn = DN.parse(root_dn)
        self.root_password = root_password
        self.require_bind_for_writes = require_bind_for_writes
        registry = registry if registry is not None else MetricsRegistry()
        self._ops = registry.counter(
            "metacomm_ldap_ops_total",
            "LDAP operations processed by the server, by operation type",
            labelnames=("op",),
        )
        self.statistics = StatsView(
            {
                "reads": lambda: (
                    self._ops.value_for(op="search")
                    + self._ops.value_for(op="compare")
                ),
                "writes": lambda: (
                    self._ops.value_for(op="add")
                    + self._ops.value_for(op="delete")
                    + self._ops.value_for(op="modify")
                    + self._ops.value_for(op="modifyrdn")
                ),
                "binds": lambda: self._ops.value_for(op="bind"),
            }
        )

    # -- listener plumbing (used by LTAP and replication) --------------------

    def add_listener(self, listener: ChangeListener) -> None:
        self.backend.add_listener(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self.backend.remove_listener(listener)

    # -- handler interface ----------------------------------------------------

    def process(
        self, request: LdapRequest, session: Session | None = None
    ) -> LdapResponse:
        session = session or Session()
        try:
            return self._dispatch(request, session)
        except LdapError as exc:
            return LdapResponse(
                LdapResult(exc.code, exc.matched_dn, exc.message)
            )

    def _dispatch(self, request: LdapRequest, session: Session) -> LdapResponse:
        if isinstance(request, BindRequest):
            return self._bind(request, session)
        if isinstance(request, UnbindRequest):
            session.bound_dn = None
            return LdapResponse(LdapResult())
        if isinstance(request, SearchRequest):
            self._ops.labels(op="search").inc()
            entries = self.backend.search(
                request.base,
                request.scope,
                request.filter,
                request.attributes,
                request.size_limit,
            )
            return LdapResponse(LdapResult(), entries)
        if isinstance(request, CompareRequest):
            self._ops.labels(op="compare").inc()
            matched = self.backend.compare(
                request.dn, request.attribute, request.value
            )
            code = ResultCode.COMPARE_TRUE if matched else ResultCode.COMPARE_FALSE
            return LdapResponse(LdapResult(code))

        # Everything below is a write.
        self._check_write_access(session)
        if isinstance(request, AddRequest):
            self._ops.labels(op="add").inc()
            self.backend.add(request.entry)
            return LdapResponse(LdapResult())
        if isinstance(request, DeleteRequest):
            self._ops.labels(op="delete").inc()
            self.backend.delete(request.dn)
            return LdapResponse(LdapResult())
        if isinstance(request, ModifyRequest):
            self._ops.labels(op="modify").inc()
            self.backend.modify(request.dn, request.modifications)
            return LdapResponse(LdapResult())
        if isinstance(request, ModifyRdnRequest):
            self._ops.labels(op="modifyrdn").inc()
            self.backend.modify_rdn(
                request.dn, request.new_rdn, request.delete_old_rdn
            )
            return LdapResponse(LdapResult())
        raise LdapError(
            ResultCode.PROTOCOL_ERROR, f"unknown request {type(request).__name__}"
        )

    def _check_write_access(self, session: Session) -> None:
        if self.require_bind_for_writes and not session.authenticated:
            raise LdapError(
                ResultCode.INSUFFICIENT_ACCESS_RIGHTS,
                "anonymous sessions may not update the directory",
            )

    def _bind(self, request: BindRequest, session: Session) -> LdapResponse:
        self._ops.labels(op="bind").inc()
        if request.dn.is_root() and not request.password:
            session.bound_dn = None  # anonymous bind
            return LdapResponse(LdapResult())
        if request.dn == self.root_dn:
            if request.password != self.root_password:
                raise LdapError(ResultCode.INVALID_CREDENTIALS, "bad root password")
            session.bound_dn = request.dn
            return LdapResponse(LdapResult())
        try:
            entry = self.backend.get(request.dn)
        except LdapError:
            raise LdapError(ResultCode.INVALID_CREDENTIALS, "no such user")
        if not entry.attributes.has_value("userPassword", request.password):
            raise LdapError(ResultCode.INVALID_CREDENTIALS, "bad password")
        session.bound_dn = request.dn
        return LdapResponse(LdapResult())

    # -- convenience ----------------------------------------------------------

    def get(self, dn: DN | str) -> Entry:
        if isinstance(dn, str):
            dn = DN.parse(dn)
        return self.backend.get(dn)

    def size(self) -> int:
        return self.backend.size()
