"""lexpress — schema translation and integration.

"lexpress is a tool for schema translation and integration whose
declarative mapping language supports string operations and table
translations of attributes, alternate attribute mappings, multi-valued
attribute processing, and pattern matching."  (Paper section 4.2;
reimplemented from the paper's description — the original is Bell Labs
internal, reference [23].)

Pipeline: source text → :func:`~repro.lexpress.parser.parse` (AST) →
:func:`~repro.lexpress.compiler.compile_expr` (byte code) →
:func:`~repro.lexpress.interpreter.execute`.  The user-facing entry
points are :func:`compile_description` / :func:`compile_mapping`, the
:class:`ClosureEngine` for cross-repository propagation, and
:class:`MappingSetBuilder` for generating both directions of a pair.
"""

from .ast import Span
from .bytecode import CodeObject, Instruction, Op
from .closure import (
    ClosureEngine,
    ClosureResult,
    Conflict,
    CycleReport,
    analyze_cycles,
    check_cycles,
    dependency_graph,
)
from .codegen import (
    MODES,
    CompiledClosure,
    CompiledRuleCache,
    compile_closure,
    rule_cache,
    run_rule,
)
from .compiler import compile_expr, optimize_expr
from .descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
    normalize_attrs,
)
from .errors import (
    CyclicDependencyError,
    FixpointError,
    LexpressCompileError,
    LexpressDivergenceError,
    LexpressError,
    LexpressRuntimeError,
    LexpressSyntaxError,
)
from .functions import known_functions
from .interpreter import execute, lower_attrs, truthy
from .lexer import Token, TokenType, tokenize
from .library import MappingSetBuilder
from .mapping import (
    CompiledMapping,
    CompiledRule,
    MappingInstance,
    compile_description,
    compile_mapping,
)
from .parser import parse
from .partition import AlwaysTrue, PartitionConstraint, route

__all__ = [
    "AlwaysTrue", "ClosureEngine", "ClosureResult", "CodeObject",
    "CompiledClosure", "CompiledMapping", "CompiledRule",
    "CompiledRuleCache", "Conflict", "CycleReport",
    "CyclicDependencyError", "FixpointError", "Instruction",
    "LexpressCompileError", "LexpressDivergenceError", "LexpressError",
    "LexpressRuntimeError", "LexpressSyntaxError", "MODES",
    "MappingInstance", "MappingSetBuilder", "Op",
    "PartitionConstraint", "Span", "TargetAction", "TargetUpdate", "Token",
    "TokenType", "UpdateDescriptor", "UpdateOp", "analyze_cycles",
    "check_cycles", "compile_closure", "compile_description",
    "compile_expr", "compile_mapping", "dependency_graph", "execute",
    "known_functions", "lower_attrs", "normalize_attrs", "optimize_expr",
    "parse", "route", "rule_cache", "run_rule", "tokenize", "truthy",
]
