"""Abstract syntax tree for the lexpress mapping language."""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: str | bool | None


@dataclass(frozen=True)
class AttrRef(Expr):
    """Reference to a source attribute (first value, or None when absent)."""

    name: str


@dataclass(frozen=True)
class GroupRef(Expr):
    """``$n`` — capture group of the nearest enclosing match arm."""

    index: int


@dataclass(frozen=True)
class ValueRef(Expr):
    """``value`` — the element variable of the nearest enclosing ``each``."""


@dataclass(frozen=True)
class Call(Expr):
    function: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Compare(Expr):
    op: str  # "==" or "!="
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # "and" or "or"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr


@dataclass(frozen=True)
class MatchArm:
    """One ``pattern => expr`` arm.  ``pattern`` is a regex source string;
    None marks the wildcard arm (``_``)."""

    pattern: str | None
    body: Expr
    literal: bool = False  # pattern came from a string (exact match)


@dataclass(frozen=True)
class Match(Expr):
    subject: Expr
    arms: tuple[MatchArm, ...]


@dataclass(frozen=True)
class TableEntry:
    key: str
    body: Expr


@dataclass(frozen=True)
class Table(Expr):
    subject: Expr
    entries: tuple[TableEntry, ...]
    default: Expr | None


@dataclass(frozen=True)
class Each(Expr):
    """``each Attr => expr`` — apply *expr* to every value of a
    multi-valued source attribute, producing a multi-valued result."""

    attribute: str
    body: Expr


@dataclass(frozen=True)
class MapRule:
    """``map target = expr;``"""

    target: str
    expr: Expr


@dataclass(frozen=True)
class MappingDecl:
    name: str
    source: str
    target: str
    key_source: str | None
    key_target: str | None
    originator: str | None
    rules: tuple[MapRule, ...]
    partition: Expr | None


@dataclass(frozen=True)
class Description:
    """A whole lexpress description file: one or more mapping declarations."""

    mappings: tuple[MappingDecl, ...]
