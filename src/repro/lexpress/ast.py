"""Abstract syntax tree for the lexpress mapping language.

Every node optionally carries a :class:`Span` — the source position of the
token that opened it.  Spans flow from the lexer (token line/column)
through the parser into the AST, from there into compiled byte code
(:attr:`~repro.lexpress.bytecode.CodeObject.spans`), and finally into
static-analysis diagnostics (:mod:`repro.analysis`), so a finding about a
rule deep inside a mapping can point at the exact source line.  Spans are
excluded from equality so structurally identical expressions still compare
equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """A position in lexpress source text (1-based, like the lexer)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: Shorthand for the optional, equality-neutral span field every node has.
def _span_field():
    return field(default=None, compare=False, repr=False)


class Expr:
    """Base class for expressions."""

    span: Span | None = None


@dataclass(frozen=True)
class Literal(Expr):
    value: str | bool | None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class AttrRef(Expr):
    """Reference to a source attribute (first value, or None when absent)."""

    name: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class GroupRef(Expr):
    """``$n`` — capture group of the nearest enclosing match arm."""

    index: int
    span: Span | None = _span_field()


@dataclass(frozen=True)
class ValueRef(Expr):
    """``value`` — the element variable of the nearest enclosing ``each``."""

    span: Span | None = _span_field()


@dataclass(frozen=True)
class Call(Expr):
    function: str
    args: tuple[Expr, ...]
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Compare(Expr):
    op: str  # "==" or "!="
    left: Expr
    right: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # "and" or "or"
    left: Expr
    right: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class MatchArm:
    """One ``pattern => expr`` arm.  ``pattern`` is a regex source string;
    None marks the wildcard arm (``_``)."""

    pattern: str | None
    body: Expr
    literal: bool = False  # pattern came from a string (exact match)
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Match(Expr):
    subject: Expr
    arms: tuple[MatchArm, ...]
    span: Span | None = _span_field()


@dataclass(frozen=True)
class TableEntry:
    key: str
    body: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Table(Expr):
    subject: Expr
    entries: tuple[TableEntry, ...]
    default: Expr | None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Each(Expr):
    """``each Attr => expr`` — apply *expr* to every value of a
    multi-valued source attribute, producing a multi-valued result."""

    attribute: str
    body: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class MapRule:
    """``map target = expr;``"""

    target: str
    expr: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class MappingDecl:
    name: str
    source: str
    target: str
    key_source: str | None
    key_target: str | None
    originator: str | None
    rules: tuple[MapRule, ...]
    partition: Expr | None
    span: Span | None = _span_field()
    #: Span of the ``partition when`` statement, when present.
    partition_span: Span | None = _span_field()


@dataclass(frozen=True)
class Description:
    """A whole lexpress description file: one or more mapping declarations."""

    mappings: tuple[MappingDecl, ...]
