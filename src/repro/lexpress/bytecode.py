"""Machine-independent byte code for lexpress.

The paper (section 4.2): "The components of lexpress are a declarative
language for specifying the relationship between two schemas, a compiler
that generates machine-independent byte code from the declarative
language, and an interpreter for executing the byte codes."

The machine is a small stack VM.  Runtime values are ``None`` (null),
``str``, ``bool`` or ``list[str]`` (multi-valued results).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

from .ast import Span


class Op(enum.Enum):
    PUSH = "push"            # arg: const index
    LOAD_ATTR = "load_attr"  # arg: const index of attribute name -> first value
    LOAD_ALL = "load_all"    # arg: const index of attribute name -> list of values
    LOAD_GROUP = "load_group"  # arg: capture-group number
    LOAD_VALUE = "load_value"  # the `each` element variable
    CALL = "call"            # arg: (const index of function name, argc)
    MATCH_RE = "match_re"    # arg: const index of compiled regex; pops subject,
    #                          pushes bool, stores groups on success
    MATCH_LIT = "match_lit"  # arg: const index of literal; pops subject, pushes bool
    EACH_APPLY = "each_apply"  # arg: const index of body CodeObject; pops list,
    #                            pushes list of mapped values
    TABLE_CONST = "table_const"  # arg: const index of (dict, default); pops the
    #                              subject, pushes the interned table's value
    #                              (MATCH_LIT group semantics on a hit)
    DUP = "dup"
    POP = "pop"
    IS_NULL = "is_null"
    EQ = "eq"
    NEQ = "neq"
    NOT = "not"
    JUMP = "jump"                    # arg: absolute target
    JUMP_IF_FALSE = "jump_if_false"  # pops condition
    JUMP_IF_TRUE = "jump_if_true"    # pops condition
    RETURN = "return"


@dataclass(frozen=True)
class Instruction:
    op: Op
    arg: Any = None

    def __str__(self) -> str:
        return f"{self.op.name} {self.arg}" if self.arg is not None else self.op.name


@dataclass
class CodeObject:
    """A compiled expression: instructions plus a constant pool.

    ``deps`` is the set of (lower-cased) source attribute names the
    expression reads — the raw material for dependency propagation and
    transitive-closure analysis.  ``spans`` runs parallel to
    ``instructions``: the source position of the expression each
    instruction was emitted for (None when unknown), which is how static
    analysis maps a byte-code finding back to a source line.
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    consts: list[Any] = field(default_factory=list)
    deps: frozenset[str] = frozenset()
    spans: list[Span | None] = field(default_factory=list)
    #: Span of the whole expression (the rule's right-hand side).
    span: Span | None = None
    #: Set by the compiler while emitting; recorded per instruction.
    current_span: Span | None = None
    #: Lazily computed caches (fingerprint, lowered attribute-name consts);
    #: invalidated whenever the instruction stream or pool changes.
    _fingerprint: str | None = field(default=None, repr=False, compare=False)
    _attr_keys: list | None = field(default=None, repr=False, compare=False)

    def const(self, value: Any) -> int:
        """Intern *value* in the constant pool, returning its index."""
        for i, existing in enumerate(self.consts):
            if type(existing) is type(value) and existing == value:
                return i
        self.consts.append(value)
        self._fingerprint = None
        self._attr_keys = None
        return len(self.consts) - 1

    def emit(self, op: Op, arg: Any = None) -> int:
        """Append an instruction; returns its index (for jump patching)."""
        self.instructions.append(Instruction(op, arg))
        self.spans.append(self.current_span)
        self._fingerprint = None
        return len(self.instructions) - 1

    def patch(self, index: int, arg: Any) -> None:
        self.instructions[index] = Instruction(self.instructions[index].op, arg)
        self._fingerprint = None

    def attr_keys(self) -> list:
        """Constant pool with string entries pre-lowered.

        LOAD_ATTR / LOAD_ALL resolve attribute names case-insensitively;
        lowering the name on every executed instruction was measurable on
        the E7 hot path, so the lowered spellings are computed once per
        code object and indexed exactly like ``consts``."""
        keys = self._attr_keys
        if keys is None or len(keys) != len(self.consts):
            keys = [
                c.lower() if isinstance(c, str) else None for c in self.consts
            ]
            self._attr_keys = keys
        return keys

    def fingerprint(self) -> str:
        """Stable content hash of the instruction stream and constant pool.

        The compiled-rule cache (:mod:`repro.lexpress.codegen`) keys its
        entries by ``(mapping, attribute, fingerprint)``: recompiling a
        description — or mutating a code object in place — changes the
        fingerprint and invalidates the cached closure."""
        cached = self._fingerprint
        if cached is not None:
            return cached
        digest = hashlib.sha1()
        for ins in self.instructions:
            digest.update(str(ins).encode())
            digest.update(b";")
        for const in self.consts:
            digest.update(_const_key(const).encode())
            digest.update(b";")
        cached = digest.hexdigest()
        self._fingerprint = cached
        return cached

    def span_at(self, index: int) -> Span | None:
        """Source span of instruction *index* (falls back to the code span)."""
        if 0 <= index < len(self.spans) and self.spans[index] is not None:
            return self.spans[index]
        return self.span

    def disassemble(self) -> str:
        lines = [f"code {self.name!r} (deps: {', '.join(sorted(self.deps)) or '-'})"]
        if self.consts:
            lines.append("  consts:")
            for i, const in enumerate(self.consts):
                lines.append(f"    [{i:2d}] {_render_const(const)}")
        for i, ins in enumerate(self.instructions):
            span = self.spans[i] if i < len(self.spans) else None
            where = f"  ; {span}" if span is not None else ""
            lines.append(f"  {i:4d}  {ins}{where}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)


def _render_const(const: Any) -> str:
    """One constant-pool entry for :meth:`CodeObject.disassemble`."""
    if isinstance(const, CodeObject):
        body = const.disassemble().replace("\n", "\n    ")
        return f"<code {const.name!r}>\n    {body}"
    if hasattr(const, "pattern"):  # compiled regex
        return f"/{const.pattern}/"
    if isinstance(const, tuple) and len(const) == 2 and isinstance(const[0], dict):
        entries = ", ".join(f"{k!r}: {v!r}" for k, v in const[0].items())
        return f"<table {{{entries}}} default={const[1]!r}>"
    return repr(const)


def _const_key(const: Any) -> str:
    """Canonical string form of one constant, for :meth:`fingerprint`."""
    if isinstance(const, CodeObject):
        return f"code:{const.fingerprint()}"
    if hasattr(const, "pattern"):  # compiled regex
        return f"re:{const.pattern}"
    if isinstance(const, tuple) and len(const) == 2 and isinstance(const[0], dict):
        entries = ",".join(f"{k!r}:{v!r}" for k, v in sorted(const[0].items()))
        return f"table:{{{entries}}}:{const[1]!r}"
    return f"{type(const).__name__}:{const!r}"
