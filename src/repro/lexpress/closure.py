"""Transitive closure of attribute mappings.

Section 4.2: "Since setting one attribute may affect a set of related
attributes, lexpress calculates the transitive closure of the attribute
mappings. ... The transitive closure can also propagate changes to other
devices in the meta-directory."  And the conflict rule: "the first mapping
in the transitive closure to be satisfied sets all other unset attributes
in the transitive closure.  The algorithm does not change the values of
explicitly set attributes."

The engine therefore freezes every attribute the first time it is set
during a propagation (client-explicit attributes are frozen from the
start) and pushes newly set attributes onto a worklist until it drains.

Cycle handling — the enhancement the paper says was in progress — is
implemented both ways:

* **compile time**: :func:`analyze_cycles` builds the cross-schema
  attribute dependency graph (networkx), finds cycles, and probes each
  composed transformation for idempotence; :func:`check_cycles` raises
  :class:`~repro.lexpress.errors.CyclicDependencyError` for cycles that
  can never reach a fixpoint.
* **execution time**: after a propagation, the engine re-evaluates every
  rule against the final images; a rule that would overwrite a frozen
  *non-explicit* attribute with a different value means this particular
  update cannot reach a fixpoint, reported via
  :class:`~repro.lexpress.errors.FixpointError` (strict mode) or the
  result's ``conflicts`` list.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from .descriptor import normalize_attrs
from .errors import CyclicDependencyError, FixpointError
from .interpreter import execute
from .mapping import CompiledMapping, CompiledRule, _as_values


def _rule_values(
    mapping: CompiledMapping | None,
    rule: CompiledRule,
    attrs: Mapping[str, Sequence[str]],
    *,
    canonical: bool = False,
) -> list[str] | None:
    """Evaluate one rule to normalized attribute values.

    The single entry point for every rule evaluation in this module:
    with a mapping, the evaluation honors its ``lexpress_mode`` (serving
    compiled closures from the process cache); without one (compile-time
    probes), it runs the plain interpreter."""
    if mapping is None:
        return _as_values(execute(rule.code, attrs, canonical=canonical))
    return mapping.evaluate(rule, attrs, canonical=canonical)


@dataclass
class Conflict:
    """A rule that disagrees with the frozen value of a target attribute."""

    mapping: str
    schema: str
    attribute: str
    frozen: list[str] | None
    competing: list[str] | None
    explicit: bool

    def __str__(self) -> str:
        kind = "explicit" if self.explicit else "UNSTABLE"
        return (
            f"[{kind}] {self.mapping}: {self.schema}.{self.attribute} "
            f"frozen={self.frozen} competing={self.competing}"
        )


@dataclass
class ClosureResult:
    """Outcome of one propagation."""

    #: schema (lower) -> full attribute image after propagation
    images: dict[str, dict[str, list[str]]]
    #: schema (lower) -> attribute names (lower) set during propagation
    changed: dict[str, set[str]]
    #: disagreements discovered by the post-pass (explicit ones are benign)
    conflicts: list[Conflict] = field(default_factory=list)
    #: worklist steps taken
    iterations: int = 0

    def image(self, schema: str) -> dict[str, list[str]]:
        return self.images.get(schema.lower(), {})

    def unstable_conflicts(self) -> list[Conflict]:
        return [c for c in self.conflicts if not c.explicit]


class ClosureEngine:
    """Propagates attribute changes across every registered mapping."""

    def __init__(
        self,
        mappings: Iterable[CompiledMapping],
        max_iterations: int = 1000,
        strict: bool = False,
    ):
        self.mappings = list(mappings)
        self.max_iterations = max_iterations
        self.strict = strict
        self._by_source: dict[str, list[CompiledMapping]] = {}
        for mapping in self.mappings:
            self._by_source.setdefault(mapping.source.lower(), []).append(mapping)

    def propagate(
        self,
        schema: str,
        attrs: Mapping[str, Sequence[str] | str],
        changed: Iterable[str] | None = None,
        explicit: Iterable[str] = (),
        base_images: Mapping[str, Mapping[str, Sequence[str]]] | None = None,
    ) -> ClosureResult:
        """Propagate an update entering at *schema* to every schema.

        ``attrs`` is the post-update record; ``changed`` names the
        attributes the update touched (default: all of them); ``explicit``
        names the attributes the client set directly; ``base_images``
        seeds the current records of other schemas, letting rules read
        unchanged context attributes.
        """
        schema = schema.lower()
        # Work entirely on lower-keyed images: rule evaluation is then
        # canonical (no per-call re-keying) and attribute lookups are
        # O(1) dict probes instead of scans.  ``spellings`` remembers the
        # display form of each attribute for the result images.
        low_images: dict[str, dict[str, list[str]]] = {}
        spellings: dict[str, dict[str, str]] = {}

        def _store(schema_low: str, name: str, values: list[str]) -> None:
            low_images.setdefault(schema_low, {})[name.lower()] = values
            spellings.setdefault(schema_low, {})[name.lower()] = name

        if base_images:
            for name, image in base_images.items():
                target_low = name.lower()
                for attr, values in (normalize_attrs(dict(image)) or {}).items():
                    _store(target_low, attr, values)
        start = dict(normalize_attrs(dict(attrs)) or {})
        low_images.setdefault(schema, {})
        for attr, values in start.items():
            _store(schema, attr, values)

        changed_set = (
            frozenset(a.lower() for a in changed)
            if changed is not None
            else frozenset(a.lower() for a in start)
        )
        explicit_set = frozenset(a.lower() for a in explicit)

        frozen: dict[str, set[str]] = {schema: set(changed_set) | set(explicit_set)}
        touched: dict[str, set[str]] = {schema: set(changed_set)}
        explicit_by_schema: dict[str, set[str]] = {schema: set(explicit_set)}

        pending: deque[tuple[str, frozenset[str]]] = deque([(schema, changed_set)])
        iterations = 0
        while pending:
            iterations += 1
            if iterations > self.max_iterations:
                raise FixpointError(
                    f"closure did not drain after {self.max_iterations} steps"
                )
            source, dirty = pending.popleft()
            source_image = low_images.get(source, {})
            for mapping in self._by_source.get(source, []):
                target = mapping.target.lower()
                target_image = low_images.setdefault(target, {})
                target_frozen = frozen.setdefault(target, set())
                newly_dirty: set[str] = set()
                for rule in mapping.rules_for(dirty):
                    attr = rule.target.lower()
                    if attr in target_frozen:
                        continue  # first-win / explicit protection
                    values = _rule_values(
                        mapping, rule, source_image, canonical=True
                    )
                    if values is None:
                        continue
                    current = target_image.get(attr)
                    target_frozen.add(attr)
                    if current == values:
                        continue
                    # Keep the spelling of the rule's target attribute.
                    target_image[attr] = values
                    spellings.setdefault(target, {})[attr] = rule.target
                    touched.setdefault(target, set()).add(attr)
                    newly_dirty.add(attr)
                if newly_dirty:
                    pending.append((target, frozenset(newly_dirty)))

        images = {
            schema_low: {
                spellings[schema_low][attr]: values
                for attr, values in image.items()
            }
            for schema_low, image in low_images.items()
        }
        result = ClosureResult(images, touched, iterations=iterations)
        self._post_check(result, low_images, frozen, explicit_by_schema)
        return result

    def _post_check(
        self,
        result: ClosureResult,
        low_images: dict[str, dict[str, list[str]]],
        frozen: dict[str, set[str]],
        explicit_by_schema: dict[str, set[str]],
    ) -> None:
        """Re-evaluate all rules; report disagreements with frozen values."""
        for mapping in self.mappings:
            source = mapping.source.lower()
            target = mapping.target.lower()
            source_image = low_images.get(source)
            if source_image is None:
                continue
            target_image = low_images.get(target, {})
            target_frozen = frozen.get(target, set())
            for rule in mapping.rules:
                attr = rule.target.lower()
                if attr not in target_frozen:
                    continue
                if not (rule.deps & source_image.keys()):
                    continue
                values = _rule_values(
                    mapping, rule, source_image, canonical=True
                )
                if values is None:
                    continue
                current = target_image.get(attr)
                if current != values:
                    conflict = Conflict(
                        mapping=mapping.name,
                        schema=target,
                        attribute=attr,
                        frozen=current,
                        competing=values,
                        explicit=attr in explicit_by_schema.get(target, set()),
                    )
                    result.conflicts.append(conflict)
        if self.strict and result.unstable_conflicts():
            raise FixpointError(
                "update cannot reach a fixpoint: "
                + "; ".join(str(c) for c in result.unstable_conflicts())
            )


# -- compile-time cycle analysis -------------------------------------------------


@dataclass(frozen=True)
class CycleReport:
    """One dependency cycle in the cross-schema attribute graph."""

    #: the cycle as (schema, attribute) nodes
    nodes: tuple[tuple[str, str], ...]
    #: True when probing shows the composed transformation is idempotent
    stable: bool
    #: probe value trace: start, after one lap, after two laps
    trace: tuple[str | None, ...] = ()

    def __str__(self) -> str:
        path = " -> ".join(f"{s}.{a}" for s, a in self.nodes)
        return f"{'stable' if self.stable else 'UNSTABLE'} cycle: {path}"


_PROBE_VALUES = ("4100", "Doe, John", "+1 908 582 9100", "x")


def dependency_graph(mappings: Iterable[CompiledMapping]) -> "nx.DiGraph":
    """Cross-schema attribute dependency graph.

    Nodes are ``(schema, attribute)`` (lower-case); an edge dep → target
    exists for every rule reading *dep* and writing *target*, annotated
    with the rule."""
    graph = nx.DiGraph()
    for mapping in mappings:
        source = mapping.source.lower()
        target = mapping.target.lower()
        for rule in mapping.rules:
            for dep in rule.deps:
                graph.add_edge(
                    (source, dep),
                    (target, rule.target.lower()),
                    rule=rule,
                    mapping=mapping.name,
                )
    return graph


def _apply_rule(rule: CompiledRule, dep: str, value: str) -> str | None:
    # Compile-time probing: no mapping mode in play, plain interpretation
    # (``dep`` comes from rule.deps and is already lower-cased).
    values = _rule_values(None, rule, {dep: [value]}, canonical=True)
    return values[0] if values else None


def analyze_cycles(mappings: Iterable[CompiledMapping]) -> list[CycleReport]:
    """Find dependency cycles and probe each for fixpoint stability."""
    mappings = list(mappings)
    graph = dependency_graph(mappings)
    reports: list[CycleReport] = []
    for cycle in nx.simple_cycles(graph):
        stable = True
        trace: tuple[str | None, ...] = ()
        for probe in _PROBE_VALUES:
            value: str | None = probe
            laps: list[str | None] = [probe]
            for lap in range(2):
                for i, node in enumerate(cycle):
                    succ = cycle[(i + 1) % len(cycle)]
                    edge = graph.get_edge_data(node, succ)
                    if edge is None or value is None:
                        value = None
                        break
                    value = _apply_rule(edge["rule"], node[1], value)
                laps.append(value)
            if laps[1] is not None and laps[1] != laps[2]:
                stable = False
                trace = tuple(laps)
                break
            if not trace:
                trace = tuple(laps)
        reports.append(CycleReport(tuple(cycle), stable, trace))
    return reports


def check_cycles(mappings: Iterable[CompiledMapping], strict: bool = True) -> list[CycleReport]:
    """Compile-time gate: raise on cycles that can never reach a fixpoint."""
    reports = analyze_cycles(mappings)
    unstable = [r for r in reports if not r.stable]
    if strict and unstable:
        raise CyclicDependencyError(
            "mappings contain non-convergent cycles: "
            + "; ".join(str(r) for r in unstable)
        )
    return reports
