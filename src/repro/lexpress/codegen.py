"""Closure code generation: lexpress byte code → plain Python functions.

The interpreter (:mod:`repro.lexpress.interpreter`) pays per-instruction
dispatch on every rule evaluation; at millions of updates that loop is
the hottest code in the system.  This module lowers a verified
:class:`~repro.lexpress.bytecode.CodeObject` into one synthesized Python
function (``exec``-compiled), so CPython's own eval loop runs the rule
with no dispatch of ours on top:

* the instruction stream is split into basic blocks (leaders: entry,
  jump targets, fall-throughs of jumps and returns);
* inside a block the VM stack is *symbolic* — every operand is a local
  temp variable or an inlined literal, so straight-line runs of byte code
  become straight-line Python with no list traffic at all;
* only values that survive across block boundaries touch a real ``stack``
  list, and a single-block body (the common case after the compiler's
  constant folding and table interning) compiles to pure straight-line
  code with no loop, no dispatch and no stack;
* attribute names are inlined pre-lowered, regexes, interned tables and
  ``each`` bodies are bound once as function globals.

Safety: closures are only produced for code that passes the lexcheck
byte-code verifier (:func:`repro.analysis.verifier.verify_code`) with no
errors — the same gate that makes programmatically built code safe to
interpret makes it safe to lower.  Rejected or uncompilable code falls
back to the interpreter silently.  ``lexpress_mode="verify"`` runs both
engines and raises :class:`~repro.lexpress.errors.LexpressDivergenceError`
(with the rule's source span) on any disagreement.

The process-wide :class:`CompiledRuleCache` (see :func:`rule_cache`)
keys closures by ``(mapping, attribute)`` and validates entries against
:meth:`CodeObject.fingerprint`, so recompiling a description naturally
invalidates stale closures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..obs.metrics import global_registry
from .bytecode import CodeObject, Op
from .errors import (
    LexpressDivergenceError,
    LexpressRuntimeError,
)
from .functions import lookup
from .interpreter import _equal, execute, lower_attrs, truthy

Value = Any  # None | str | bool | list[str]

#: The three values of ``MetaCommConfig.lexpress_mode``.
MODES = ("interpret", "compiled", "verify")

_registry = global_registry()
_HITS = _registry.counter(
    "metacomm_lexpress_cache_hits_total",
    "Compiled-rule cache lookups served by an existing closure",
)
_MISSES = _registry.counter(
    "metacomm_lexpress_cache_misses_total",
    "Compiled-rule cache lookups that triggered a (re)compile",
)
_COMPILES = _registry.counter(
    "metacomm_lexpress_compiles_total",
    "Byte-code objects lowered to Python closures",
)
_COMPILE_SECONDS = _registry.counter(
    "metacomm_lexpress_compile_seconds_total",
    "Wall-clock seconds spent lowering byte code to closures",
)
_FALLBACKS = _registry.counter(
    "metacomm_lexpress_fallbacks_total",
    "Code objects the verifier gate (or codegen) rejected; served "
    "by the interpreter instead",
)
_DIVERGENCES = _registry.counter(
    "metacomm_lexpress_divergences_total",
    "verify-mode evaluations where the closure disagreed with the "
    "interpreter",
)


# ---------------------------------------------------------------------------
# Closure runtime
# ---------------------------------------------------------------------------


class _CFrame:
    """Per-evaluation state a closure threads through its helpers."""

    __slots__ = ("groups", "value")

    def __init__(self):
        self.groups: Sequence[str | None] = ()
        self.value: Value = None


class _Miss:
    """Sentinel distinguishing a table miss from a stored None."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<miss>"


_MISS = _Miss()


def _each_apply(
    body: Callable[[Mapping[str, Sequence[str]], _CFrame], Value],
    values: Value,
    attrs: Mapping[str, Sequence[str]],
) -> list[str]:
    """Runtime mirror of the interpreter's EACH_APPLY normalization."""
    if values is None:
        values = []
    elif not isinstance(values, list):
        values = [values]
    out: list[str] = []
    frame = _CFrame()
    for element in values:
        frame.groups = ()
        frame.value = str(element)
        result = body(attrs, frame)
        if result is None:
            continue
        if isinstance(result, list):
            out.extend(str(r) for r in result)
        elif isinstance(result, bool):
            out.append("true" if result else "false")
        else:
            out.append(str(result))
    return out


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


_JUMPS = (Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE)


@dataclass(frozen=True)
class CompiledClosure:
    """A byte-code object lowered to one Python function.

    ``fn(attrs, frame)`` expects *canonical* (lower-keyed) attrs and a
    :class:`_CFrame`; it returns the same value domain as
    :func:`~repro.lexpress.interpreter.execute`.  ``source`` is the
    synthesized Python text, kept for inspection and tests."""

    name: str
    fn: Callable[[Mapping[str, Sequence[str]], _CFrame], Value]
    source: str
    fingerprint: str


class _ClosureEmitter:
    """Lowers one CodeObject; see the module docstring for the scheme."""

    def __init__(self, code: CodeObject):
        self.code = code
        self.globals: dict[str, Any] = {
            "_F": lookup,
            "_tr": truthy,
            "_eq": _equal,
            "_each": _each_apply,
            "_RTErr": LexpressRuntimeError,
            "_MISS": _MISS,
        }
        self.counter = 0
        self.lines: list[str] = []
        self.indent = 1
        self.sym: list[str] = []
        #: Temps provably bool: their truthiness tests skip _tr().
        self.bools: set[str] = set()

    # -- small helpers ------------------------------------------------------

    def _temp(self) -> str:
        self.counter += 1
        return f"_t{self.counter}"

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _pop(self) -> str:
        self._need(1)
        return self.sym.pop()

    def _need(self, depth: int) -> None:
        """Materialize runtime-stack values the block inherited."""
        while len(self.sym) < depth:
            temp = self._temp()
            self._line(f"{temp} = stack.pop()")
            self.sym.insert(0, temp)

    def _flush(self) -> None:
        for entry in self.sym:
            self._line(f"stack.append({entry})")
        self.sym.clear()

    def _truth(self, expr: str) -> str:
        if expr in self.bools or expr in ("True", "False"):
            return expr
        return f"_tr({expr})"

    def _bind(self, prefix: str, index: int, value: Any) -> str:
        name = f"{prefix}{index}"
        self.globals[name] = value
        return name

    # -- driver -------------------------------------------------------------

    def emit(self) -> tuple[str, dict[str, Any]]:
        instructions = self.code.instructions
        if not instructions:
            raise LexpressRuntimeError(
                f"cannot lower empty code object {self.code.name!r}"
            )
        leaders = {0}
        for pc, ins in enumerate(instructions):
            if ins.op in _JUMPS:
                leaders.add(ins.arg)
                leaders.add(pc + 1)
            elif ins.op is Op.RETURN:
                leaders.add(pc + 1)
        leaders.discard(len(instructions))
        blocks = sorted(leaders)

        self.lines.append("def _closure(attrs, frame):")
        if blocks == [0]:
            self._emit_block(0, len(instructions), single=True)
        else:
            self._line("stack = []")
            self._line("_b = 0")
            self._line("while True:")
            self.indent += 1
            for i, start in enumerate(blocks):
                end = blocks[i + 1] if i + 1 < len(blocks) else len(instructions)
                keyword = "if" if i == 0 else "elif"
                self._line(f"{keyword} _b == {start}:")
                self.indent += 1
                self._emit_block(start, end, single=False)
                self.indent -= 1
            self.indent -= 1
        return "\n".join(self.lines), self.globals

    def _emit_block(self, start: int, end: int, single: bool) -> None:
        self.sym.clear()
        self.bools.clear()
        instructions = self.code.instructions
        consts = self.code.consts
        attr_keys = self.code.attr_keys()
        pc = start
        while pc < end:
            ins = instructions[pc]
            op = ins.op
            pc += 1
            if op is Op.PUSH:
                const = consts[ins.arg]
                if const is None or isinstance(const, (str, bool)):
                    self.sym.append(repr(const))
                    if isinstance(const, bool):
                        self.bools.add(repr(const))
                else:  # programmatic code can push anything
                    self.sym.append(self._bind("_K", ins.arg, const))
            elif op is Op.LOAD_ATTR:
                temp = self._temp()
                self._line(f"{temp} = attrs.get({attr_keys[ins.arg]!r})")
                self._line(f"{temp} = str({temp}[0]) if {temp} else None")
                self.sym.append(temp)
            elif op is Op.LOAD_ALL:
                temp = self._temp()
                self._line(
                    f"{temp} = [str(_v) for _v in "
                    f"attrs.get({attr_keys[ins.arg]!r}, ())]"
                )
                self.sym.append(temp)
            elif op is Op.LOAD_GROUP:
                temp = self._temp()
                index = ins.arg
                self._line(
                    f"{temp} = frame.groups[{index}] "
                    f"if {index} < len(frame.groups) else None"
                )
                self.sym.append(temp)
            elif op is Op.LOAD_VALUE:
                temp = self._temp()
                self._line(f"{temp} = frame.value")
                self.sym.append(temp)
            elif op is Op.CALL:
                name_idx, argc = ins.arg
                fn_name = consts[name_idx]
                self._need(argc)
                args = self.sym[len(self.sym) - argc:] if argc else []
                del self.sym[len(self.sym) - argc:]
                temp = self._temp()
                self._line("try:")
                self._line(f"    {temp} = _F({fn_name!r})({', '.join(args)})")
                self._line("except TypeError as _e:")
                self._line(
                    f"    raise _RTErr(f{fn_name + ': {_e}'!r}) from None"
                )
                self.sym.append(temp)
            elif op is Op.MATCH_RE:
                subject = self._pop()
                regex = self._bind("_R", ins.arg, consts[ins.arg])
                temp, match = self._temp(), self._temp()
                self._line(f"if {subject} is None:")
                self._line(f"    {temp} = False")
                self._line("else:")
                self._line(f"    {match} = {regex}.search(str({subject}))")
                self._line(f"    if {match} is None:")
                self._line(f"        {temp} = False")
                self._line("    else:")
                self._line(
                    f"        frame.groups = "
                    f"[{match}.group(0), *{match}.groups()]"
                )
                self._line(f"        {temp} = True")
                self.sym.append(temp)
                self.bools.add(temp)
            elif op is Op.MATCH_LIT:
                subject = self._pop()
                text, temp = self._temp(), self._temp()
                self._line(
                    f"{text} = None if {subject} is None else str({subject})"
                )
                self._line(f"{temp} = {text} == {consts[ins.arg]!r}")
                self._line(f"if {temp}:")
                self._line(f"    frame.groups = [{text}]")
                self.sym.append(temp)
                self.bools.add(temp)
            elif op is Op.TABLE_CONST:
                subject = self._pop()
                table, default = consts[ins.arg]
                table_g = self._bind("_T", ins.arg, table)
                default_g = self._bind("_D", ins.arg, default)
                text, temp = self._temp(), self._temp()
                self._line(f"if {subject} is None:")
                self._line(f"    {temp} = {default_g}")
                self._line("else:")
                self._line(f"    {text} = str({subject})")
                self._line(f"    {temp} = {table_g}.get({text}, _MISS)")
                self._line(f"    if {temp} is _MISS:")
                self._line(f"        {temp} = {default_g}")
                self._line("    else:")
                self._line(f"        frame.groups = [{text}]")
                self.sym.append(temp)
            elif op is Op.EACH_APPLY:
                subject = self._pop()
                body = compile_closure(consts[ins.arg])
                body_g = self._bind("_B", ins.arg, body.fn)
                temp = self._temp()
                self._line(f"{temp} = _each({body_g}, {subject}, attrs)")
                self.sym.append(temp)
            elif op is Op.DUP:
                self._need(1)
                self.sym.append(self.sym[-1])
            elif op is Op.POP:
                self._pop()
            elif op is Op.IS_NULL:
                operand = self._pop()
                temp = self._temp()
                self._line(f"{temp} = {operand} is None")
                self.sym.append(temp)
                self.bools.add(temp)
            elif op in (Op.EQ, Op.NEQ):
                self._need(2)
                right, left = self.sym.pop(), self.sym.pop()
                temp = self._temp()
                negate = "not " if op is Op.NEQ else ""
                self._line(f"{temp} = {negate}_eq({left}, {right})")
                self.sym.append(temp)
                self.bools.add(temp)
            elif op is Op.NOT:
                operand = self._pop()
                temp = self._temp()
                self._line(f"{temp} = not {self._truth(operand)}")
                self.sym.append(temp)
                self.bools.add(temp)
            elif op is Op.JUMP:
                self._flush()
                self._line(f"_b = {ins.arg}")
                self._line("continue")
                return
            elif op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
                condition = self._pop()
                self._flush()
                negate = "not " if op is Op.JUMP_IF_FALSE else ""
                self._line(f"if {negate}{self._truth(condition)}:")
                self._line(f"    _b = {ins.arg}")
                self._line("    continue")
                self._line(f"_b = {pc}")
                self._line("continue")
                return
            elif op is Op.RETURN:
                if self.sym:
                    self._line(f"return {self.sym.pop()}")
                elif single:
                    self._line("return None")
                else:
                    self._line("return stack.pop() if stack else None")
                return
            else:  # pragma: no cover - verifier gate rejects unknown ops
                raise LexpressRuntimeError(f"cannot lower opcode {op}")
        # Fell through to the next leader.
        self._flush()
        self._line(f"_b = {end}")
        self._line("continue")


def compile_closure(code: CodeObject, name: str | None = None) -> CompiledClosure:
    """Lower one (verified) code object to a Python closure.

    Raises :class:`LexpressRuntimeError` for code that cannot be lowered
    (empty sentinels, unknown opcodes).  Callers wanting the safety gate
    should go through :class:`CompiledRuleCache`, which verifies first and
    falls back to the interpreter on rejection."""
    emitter = _ClosureEmitter(code)
    source, namespace = emitter.emit()
    label = name or code.name or "<lexpress>"
    compiled = compile(source, f"<lexpress-codegen:{label}>", "exec")
    exec(compiled, namespace)
    return CompiledClosure(
        name=label,
        fn=namespace["_closure"],
        source=source,
        fingerprint=code.fingerprint(),
    )


def verified_compile(
    code: CodeObject, mapping: str = "", attribute: str | None = None
) -> CompiledClosure | None:
    """Run the lexcheck verifier gate, then lower; None when rejected.

    Only ``Severity.ERROR`` diagnostics block lowering — warnings (dead
    arms, degenerate calls) are lint findings, not soundness holes."""
    # Deferred import: repro.analysis imports repro.lexpress at top level.
    from ..analysis.diagnostics import Severity
    from ..analysis.verifier import verify_code

    diagnostics = verify_code(code, mapping, attribute)
    if any(d.severity is Severity.ERROR for d in diagnostics):
        return None
    try:
        return compile_closure(code, name=f"{mapping}.{attribute or code.name}")
    except LexpressRuntimeError:
        return None


# ---------------------------------------------------------------------------
# The process-wide compiled-rule cache
# ---------------------------------------------------------------------------


class CompiledRuleCache:
    """Thread-safe cache of lowered rules, keyed by (mapping, attribute).

    Entries carry the source code object's fingerprint; a lookup with a
    different fingerprint (a recompiled description, a patched code
    object) recompiles and replaces the entry, so invalidation is
    automatic.  ``None`` closures record verifier rejections — those keys
    are served by the interpreter without re-verifying every call."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[
            tuple[str, str], tuple[str, CompiledClosure | None]
        ] = {}
        self._listeners: tuple[Callable[[dict], None], ...] = ()
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.rejected = 0
        self.compile_seconds = 0.0

    def get_or_compile(
        self, mapping: str, attribute: str, code: CodeObject
    ) -> CompiledClosure | None:
        key = (mapping, attribute)
        fingerprint = code.fingerprint()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == fingerprint:
                self.hits += 1
                _HITS.inc()
                return entry[1]
            self.misses += 1
        _MISSES.inc()

        started = time.perf_counter()
        closure = verified_compile(code, mapping, attribute)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._entries[key] = (fingerprint, closure)
            self.compile_seconds += elapsed
            if closure is None:
                self.rejected += 1
            else:
                self.compiles += 1
            listeners = self._listeners
        _COMPILE_SECONDS.inc(elapsed)
        if closure is None:
            _FALLBACKS.inc()
        else:
            _COMPILES.inc()
        event = {
            "mapping": mapping,
            "attribute": attribute,
            "status": "compiled" if closure is not None else "rejected",
            "seconds": elapsed,
            "fingerprint": fingerprint[:12],
        }
        for listener in listeners:
            try:
                listener(event)
            except Exception:  # pragma: no cover - listeners are best-effort
                pass
        return closure

    # -- observability -------------------------------------------------------

    def subscribe(self, listener: Callable[[dict], None]) -> None:
        """Call *listener* with an event dict after every (re)compile."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners = self._listeners + (listener,)

    def unsubscribe(self, listener: Callable[[dict], None]) -> None:
        with self._lock:
            self._listeners = tuple(
                entry for entry in self._listeners if entry is not listener
            )

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "rejected": self.rejected,
                "compile_seconds": self.compile_seconds,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.compiles = self.rejected = 0
            self.compile_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_CACHE = CompiledRuleCache()


def rule_cache() -> CompiledRuleCache:
    """The process-wide compiled-rule cache."""
    return _CACHE


# ---------------------------------------------------------------------------
# Mode dispatch
# ---------------------------------------------------------------------------

_TLS = threading.local()


def _frame() -> _CFrame:
    frame = getattr(_TLS, "frame", None)
    if frame is None:
        frame = _TLS.frame = _CFrame()
    return frame


def run_rule(
    code: CodeObject,
    attrs: Mapping[str, Sequence[str]],
    value: Value = None,
    *,
    mapping: str = "",
    attribute: str = "",
    mode: str | None = None,
    canonical: bool = False,
) -> Value:
    """Evaluate one rule under *mode* (None or "interpret" = interpreter).

    The drop-in replacement for :func:`execute` on the mapping/closure
    hot paths: "compiled" serves the evaluation from the process cache
    (falling back to the interpreter when the verifier rejected the
    code), "verify" runs both engines and raises
    :class:`LexpressDivergenceError` on disagreement."""
    if mode is None or mode == "interpret":
        return execute(code, attrs, value, canonical=canonical)

    closure = _CACHE.get_or_compile(mapping, attribute, code)
    if closure is None:
        return execute(code, attrs, value, canonical=canonical)

    if not canonical:
        attrs = lower_attrs(attrs)
    if mode == "compiled":
        frame = _frame()
        frame.groups = ()
        frame.value = value
        return closure.fn(attrs, frame)

    if mode == "verify":
        interpreted = execute(code, attrs, value, canonical=True)
        frame = _frame()
        frame.groups = ()
        frame.value = value
        compiled_value = closure.fn(attrs, frame)
        if interpreted != compiled_value or type(interpreted) is not type(
            compiled_value
        ):
            _DIVERGENCES.inc()
            raise LexpressDivergenceError(
                mapping,
                attribute,
                interpreted,
                compiled_value,
                span=code.span,
            )
        return interpreted

    raise ValueError(
        f"unknown lexpress_mode {mode!r} (expected one of {', '.join(MODES)})"
    )
