"""Compiler: lexpress AST → stack-machine byte code.

Besides code generation, the compiler performs dependency analysis: every
:class:`~repro.lexpress.bytecode.CodeObject` records the set of source
attributes it reads.  Those sets drive (a) incremental translation — a
modify descriptor only re-evaluates rules whose dependencies changed — and
(b) the cross-repository transitive-closure engine.
"""

from __future__ import annotations

import re

from .ast import (
    AttrRef,
    BoolOp,
    Call,
    Compare,
    Each,
    Expr,
    GroupRef,
    Literal,
    Match,
    MatchArm,
    NotOp,
    Table,
    TableEntry,
    ValueRef,
)
from .bytecode import CodeObject, Op
from .errors import LexpressCompileError
from .functions import known_functions, lookup
from .interpreter import _equal, truthy


# Functions whose arguments should see *all* values of a multi-valued
# attribute, not just the first: attribute references in these positions
# compile to LOAD_ALL.  "all" marks every position (alt must be able to
# fall back across multi-valued attributes).
_LIST_ARG_FUNCTIONS: dict[str, set[int] | str] = {
    "count": {0},
    "join": {0},
    "first": {0},
    "last": {0},
    "present": {0},
    "empty": {0},
    "alt": "all",
    "ifnull": {0},
}

# ---------------------------------------------------------------------------
# Constant-folding / dead-branch pre-pass
# ---------------------------------------------------------------------------

#: Builtins safe to evaluate at compile time.  ``register()`` is a public
#: extension point, so user functions are never folded — they may be impure
#: or not yet registered when the description is compiled.
_PURE_FUNCTIONS = frozenset({
    "concat", "upper", "lower", "trim", "substr", "replace", "pad",
    "digits", "prefix", "suffix", "contains", "matches", "present",
    "empty", "alt", "ifnull", "split", "join", "first", "last", "count",
})


def _has_groupref(expr: Expr) -> bool:
    """Does *expr* read a capture group of the enclosing frame?

    The walk stops at ``each`` nodes: their bodies run in a sub-frame with
    fresh groups, so a ``$n`` inside one never observes the outer match."""
    if isinstance(expr, GroupRef):
        return True
    if isinstance(expr, Each):
        return False
    if isinstance(expr, Call):
        return any(_has_groupref(a) for a in expr.args)
    if isinstance(expr, (Compare, BoolOp)):
        return _has_groupref(expr.left) or _has_groupref(expr.right)
    if isinstance(expr, NotOp):
        return _has_groupref(expr.operand)
    if isinstance(expr, Match):
        return _has_groupref(expr.subject) or any(
            _has_groupref(arm.body) for arm in expr.arms
        )
    if isinstance(expr, Table):
        return (
            _has_groupref(expr.subject)
            or any(_has_groupref(e.body) for e in expr.entries)
            or (expr.default is not None and _has_groupref(expr.default))
        )
    return False


def _bool_kinded(expr: Expr) -> bool:
    """Is *expr* provably BOOL under lexcheck's value-kind lattice?

    A bool subject can only ever ``str()`` to ``"True"``/``"False"``, so
    literal match arms and table entries with any other key are dead."""
    if isinstance(expr, (Compare, NotOp, BoolOp)):
        return True
    if isinstance(expr, Literal):
        return isinstance(expr.value, bool)
    if isinstance(expr, Call):
        try:  # deferred: repro.analysis imports repro.lexpress at top level
            from ..analysis.verifier import BOOL, _RESULT_KINDS
        except ImportError:  # pragma: no cover - analysis always ships
            return False
        return _RESULT_KINDS.get(expr.function) == BOOL
    return False


def _as_literal(value) -> Literal | None:
    """Wrap a runtime value in a Literal node, or None if it can't be."""
    if value is None or isinstance(value, (str, bool)):
        return Literal(value)
    return None


class _Folder:
    """One constant-folding walk over an expression tree.

    ``group_free`` is true when the *whole* top-level expression contains
    no :class:`GroupRef` (outside ``each`` bodies): only then may a match
    or table arm whose pattern provably hits be replaced by its body,
    because the hit also assigns ``frame.groups`` and something downstream
    could read them.  Reductions that never touch groups — null subjects,
    dropping arms that provably miss, folding pure calls — are applied
    unconditionally."""

    def __init__(self, group_free: bool):
        self.group_free = group_free

    def fold(self, expr: Expr) -> Expr:
        if isinstance(expr, Call):
            return self._fold_call(expr)
        if isinstance(expr, Compare):
            left, right = self.fold(expr.left), self.fold(expr.right)
            if isinstance(left, Literal) and isinstance(right, Literal):
                result = _equal(left.value, right.value)
                return Literal(
                    result if expr.op == "==" else not result, span=expr.span
                )
            return Compare(expr.op, left, right, span=expr.span)
        if isinstance(expr, NotOp):
            operand = self.fold(expr.operand)
            if isinstance(operand, Literal):
                return Literal(not truthy(operand.value), span=expr.span)
            return NotOp(operand, span=expr.span)
        if isinstance(expr, BoolOp):
            return self._fold_bool(expr)
        if isinstance(expr, Match):
            return self._fold_match(expr)
        if isinstance(expr, Table):
            return self._fold_table(expr)
        if isinstance(expr, Each):
            body = _Folder(not _has_groupref(expr.body)).fold(expr.body)
            return Each(expr.attribute, body, span=expr.span)
        return expr

    def _fold_call(self, expr: Call) -> Expr:
        args = tuple(self.fold(a) for a in expr.args)
        if expr.function in _PURE_FUNCTIONS and all(
            isinstance(a, Literal) for a in args
        ):
            try:
                fn = lookup(expr.function)
                value = fn(*[a.value for a in args])
            except Exception:
                # Leave the call in place so the runtime error (or a
                # lexcheck diagnostic) surfaces where the author wrote it.
                value = _Folder  # sentinel: not a runtime value
            folded = _as_literal(value)
            if folded is not None:
                return Literal(folded.value, span=expr.span)
        return Call(expr.function, args, span=expr.span)

    def _fold_bool(self, expr: BoolOp) -> Expr:
        left, right = self.fold(expr.left), self.fold(expr.right)
        if isinstance(left, Literal):
            # Short-circuit decided at compile time.  The surviving right
            # side still needs bool coercion, which NOT NOT provides while
            # preserving its evaluation (errors, group writes).
            decided = truthy(left.value)
            if expr.op == "and":
                return self._truthy(right, expr) if decided else Literal(
                    False, span=expr.span
                )
            return Literal(True, span=expr.span) if decided else self._truthy(
                right, expr
            )
        # A literal *right* side cannot simplify anything: the left side is
        # always evaluated first and its effects must be kept.
        return BoolOp(expr.op, left, right, span=expr.span)

    @staticmethod
    def _truthy(expr: Expr, parent: BoolOp) -> Expr:
        if isinstance(expr, Literal):
            return Literal(truthy(expr.value), span=parent.span)
        if isinstance(expr, (Compare, NotOp, BoolOp)):
            return expr  # already pushes a bool
        return NotOp(NotOp(expr, span=parent.span), span=parent.span)

    def _fold_match(self, expr: Match) -> Expr:
        subject = self.fold(expr.subject)
        # Arms beyond the first wildcard are unreachable and never even
        # regex-compiled by the emitter; mirror that boundary exactly.
        arms = []
        for arm in expr.arms:
            arms.append(MatchArm(
                arm.pattern, self.fold(arm.body), arm.literal, span=arm.span
            ))
            if arm.pattern is None:
                break

        if isinstance(subject, Literal):
            reduced = self._reduce_arms(subject.value, arms, expr)
            if reduced is not None:
                return reduced
        elif _bool_kinded(subject):
            arms = [
                arm for arm in arms
                if not (arm.literal and arm.pattern not in ("True", "False"))
            ]
        return Match(subject, tuple(arms), span=expr.span)

    def _reduce_arms(
        self, value, arms: list[MatchArm], expr: Match
    ) -> Expr | None:
        """Resolve a literal-subject match at compile time (or None)."""
        # A bad regex is a *compile* error even on arms a literal subject
        # would never reach; only reduce once every reachable arm compiles.
        compiled = {}
        for arm in arms:
            if arm.pattern is not None and not arm.literal:
                try:
                    compiled[arm.pattern] = re.compile(arm.pattern)
                except re.error:
                    return None
        if value is None:
            # Nothing matches null and no groups are written: the result
            # is the wildcard body, or null.
            for arm in arms:
                if arm.pattern is None:
                    return arm.body
            return Literal(None, span=expr.span)
        text = str(value)
        survivors: list[MatchArm] = []
        for arm in arms:
            if arm.pattern is None:
                if survivors:
                    break  # wildcard stays as the fallback of kept arms
                return arm.body  # first hit consumes no groups
            hit = (
                text == arm.pattern
                if arm.literal
                else compiled[arm.pattern].search(text) is not None
            )
            if not hit:
                continue  # a missing arm writes no groups: always dead
            if self.group_free:
                return arm.body
            survivors.append(arm)  # hit writes groups: keep the machinery
            break
        if not survivors:
            return Literal(None, span=expr.span)
        return Match(Literal(value, span=expr.span), tuple(survivors),
                     span=expr.span)

    def _fold_table(self, expr: Table) -> Expr:
        subject = self.fold(expr.subject)
        entries = [
            TableEntry(e.key, self.fold(e.body), span=e.span)
            for e in expr.entries
        ]
        default = self.fold(expr.default) if expr.default is not None else None

        if isinstance(subject, Literal):
            if subject.value is None:
                return default if default is not None else Literal(
                    None, span=expr.span
                )
            text = str(subject.value)
            hits = [e for e in entries if e.key == text]
            if not hits:
                return default if default is not None else Literal(
                    None, span=expr.span
                )
            if self.group_free:
                return hits[0].body
            entries = hits[:1]
        elif _bool_kinded(subject):
            entries = [e for e in entries if e.key in ("True", "False")]
        return Table(subject, tuple(entries), default, span=expr.span)


def optimize_expr(expr: Expr) -> Expr:
    """Constant folding + dead-branch elimination over one expression."""
    return _Folder(not _has_groupref(expr)).fold(expr)


class ExprCompiler:
    """Compiles one expression into one CodeObject."""

    def __init__(self, name: str, optimize: bool = True):
        self.code = CodeObject(name)
        self.deps: set[str] = set()
        self.optimize = optimize

    def compile(self, expr: Expr) -> CodeObject:
        self.code.span = expr.span
        self._emit_expr(expr)
        self.code.emit(Op.RETURN)
        self.code.deps = frozenset(self.deps)
        self.code.current_span = None
        return self.code

    # -- dispatch -----------------------------------------------------------

    def _emit_expr(self, expr: Expr) -> None:
        # Tag every instruction emitted for this (sub)expression with its
        # source span; inner expressions override, then restore.
        previous_span = self.code.current_span
        if expr.span is not None:
            self.code.current_span = expr.span
        try:
            self._dispatch(expr)
        finally:
            self.code.current_span = previous_span

    def _dispatch(self, expr: Expr) -> None:
        if isinstance(expr, Literal):
            self.code.emit(Op.PUSH, self.code.const(expr.value))
        elif isinstance(expr, AttrRef):
            self.deps.add(expr.name.lower())
            self.code.emit(Op.LOAD_ATTR, self.code.const(expr.name))
        elif isinstance(expr, GroupRef):
            self.code.emit(Op.LOAD_GROUP, expr.index)
        elif isinstance(expr, ValueRef):
            self.code.emit(Op.LOAD_VALUE)
        elif isinstance(expr, Call):
            self._emit_call(expr)
        elif isinstance(expr, Compare):
            self._emit_expr(expr.left)
            self._emit_expr(expr.right)
            self.code.emit(Op.EQ if expr.op == "==" else Op.NEQ)
        elif isinstance(expr, NotOp):
            self._emit_expr(expr.operand)
            self.code.emit(Op.NOT)
        elif isinstance(expr, BoolOp):
            self._emit_bool(expr)
        elif isinstance(expr, Match):
            self._emit_match(expr)
        elif isinstance(expr, Table):
            self._emit_table(expr)
        elif isinstance(expr, Each):
            self._emit_each(expr)
        else:  # pragma: no cover - grammar is closed
            raise LexpressCompileError(f"cannot compile {type(expr).__name__}")

    # -- helpers -------------------------------------------------------------

    def _emit_call(self, expr: Call) -> None:
        if expr.function not in known_functions():
            raise LexpressCompileError(
                f"unknown function {expr.function!r} "
                f"(known: {', '.join(known_functions())})"
            )
        list_positions = _LIST_ARG_FUNCTIONS.get(expr.function, set())
        for i, arg in enumerate(expr.args):
            wants_list = list_positions == "all" or i in list_positions
            if wants_list and isinstance(arg, AttrRef):
                self.deps.add(arg.name.lower())
                self.code.emit(Op.LOAD_ALL, self.code.const(arg.name))
            else:
                self._emit_expr(arg)
        self.code.emit(Op.CALL, (self.code.const(expr.function), len(expr.args)))

    def _emit_bool(self, expr: BoolOp) -> None:
        jump_op = Op.JUMP_IF_FALSE if expr.op == "and" else Op.JUMP_IF_TRUE
        self._emit_expr(expr.left)
        first = self.code.emit(jump_op)
        self._emit_expr(expr.right)
        second = self.code.emit(jump_op)
        self.code.emit(Op.PUSH, self.code.const(expr.op == "and"))
        done = self.code.emit(Op.JUMP)
        target = len(self.code)
        self.code.patch(first, target)
        self.code.patch(second, target)
        self.code.emit(Op.PUSH, self.code.const(expr.op != "and"))
        self.code.patch(done, len(self.code))

    def _intern_arms(
        self,
        pairs: list[tuple[str, Expr]],
        default: Expr | None,
    ) -> bool:
        """Try to emit a literal-keyed arm chain as one TABLE_CONST.

        All bodies (and the default) must be literals; the subject is
        assumed already on the stack.  First key wins, mirroring the
        sequential arm chain.  Returns True when interned."""
        if not self.optimize:
            return False
        if not all(isinstance(body, Literal) for _, body in pairs):
            return False
        if default is not None and not isinstance(default, Literal):
            return False
        table: dict[str, str | bool | None] = {}
        for key, body in pairs:
            if key not in table:
                table[key] = body.value  # type: ignore[union-attr]
        fallback = default.value if isinstance(default, Literal) else None
        self.code.emit(
            Op.TABLE_CONST, self.code.const((table, fallback))
        )
        return True

    def _emit_match(self, expr: Match) -> None:
        self._emit_expr(expr.subject)
        # `p => v` chains where every reachable arm is a literal pattern
        # with a literal body collapse into one dict probe.  A trailing
        # wildcard with a literal body becomes the default.
        literal_prefix: list[tuple[str, Expr]] = []
        for arm in expr.arms:
            if arm.pattern is None:
                if self._intern_arms(literal_prefix, arm.body):
                    return
                break
            if not (arm.literal and isinstance(arm.body, Literal)):
                break
            literal_prefix.append((arm.pattern, arm.body))
        else:
            if self._intern_arms(literal_prefix, None):
                return
        end_jumps: list[int] = []
        fell_through = True
        for arm in expr.arms:
            if arm.pattern is None:  # wildcard: consumes the subject
                self.code.emit(Op.POP)
                self._emit_expr(arm.body)
                fell_through = False
                break
            self.code.emit(Op.DUP)
            if arm.literal:
                self.code.emit(Op.MATCH_LIT, self.code.const(arm.pattern))
            else:
                try:
                    compiled = re.compile(arm.pattern)
                except re.error as exc:
                    raise LexpressCompileError(
                        f"bad regex /{arm.pattern}/: {exc}"
                    ) from None
                self.code.emit(Op.MATCH_RE, self.code.const(compiled))
            next_arm = self.code.emit(Op.JUMP_IF_FALSE)
            self.code.emit(Op.POP)  # drop the subject
            self._emit_expr(arm.body)
            end_jumps.append(self.code.emit(Op.JUMP))
            self.code.patch(next_arm, len(self.code))
        if fell_through:
            # No arm matched: the result is null (unset), letting alt()
            # or later rules handle the dirty value.
            self.code.emit(Op.POP)
            self.code.emit(Op.PUSH, self.code.const(None))
        for jump in end_jumps:
            self.code.patch(jump, len(self.code))

    def _emit_table(self, expr: Table) -> None:
        self._emit_expr(expr.subject)
        if self._intern_arms(
            [(e.key, e.body) for e in expr.entries], expr.default
        ):
            return
        end_jumps: list[int] = []
        for entry in expr.entries:
            self.code.emit(Op.DUP)
            self.code.emit(Op.MATCH_LIT, self.code.const(entry.key))
            next_entry = self.code.emit(Op.JUMP_IF_FALSE)
            self.code.emit(Op.POP)
            self._emit_expr(entry.body)
            end_jumps.append(self.code.emit(Op.JUMP))
            self.code.patch(next_entry, len(self.code))
        self.code.emit(Op.POP)
        if expr.default is not None:
            self._emit_expr(expr.default)
        else:
            self.code.emit(Op.PUSH, self.code.const(None))
        for jump in end_jumps:
            self.code.patch(jump, len(self.code))

    def _emit_each(self, expr: Each) -> None:
        self.deps.add(expr.attribute.lower())
        # The folding pre-pass already optimized each bodies in place;
        # don't re-run it, just inherit the interning setting.
        body = ExprCompiler(
            f"{self.code.name}:each", optimize=self.optimize
        ).compile(expr.body)
        self.deps.update(body.deps)
        self.code.emit(Op.LOAD_ALL, self.code.const(expr.attribute))
        self.code.emit(Op.EACH_APPLY, self.code.const(body))


def compile_expr(
    expr: Expr, name: str = "<expr>", optimize: bool = True
) -> CodeObject:
    """Compile a single expression AST into byte code.

    ``optimize=True`` (the default) first runs :func:`optimize_expr` —
    constant folding, dead-arm elimination, table interning — producing
    code the closure generator (:mod:`repro.lexpress.codegen`) can lower
    aggressively.  ``optimize=False`` emits the naive instruction-per-node
    translation, kept for differential testing."""
    if optimize:
        expr = optimize_expr(expr)
    return ExprCompiler(name, optimize).compile(expr)
