"""Compiler: lexpress AST → stack-machine byte code.

Besides code generation, the compiler performs dependency analysis: every
:class:`~repro.lexpress.bytecode.CodeObject` records the set of source
attributes it reads.  Those sets drive (a) incremental translation — a
modify descriptor only re-evaluates rules whose dependencies changed — and
(b) the cross-repository transitive-closure engine.
"""

from __future__ import annotations

import re

from .ast import (
    AttrRef,
    BoolOp,
    Call,
    Compare,
    Each,
    Expr,
    GroupRef,
    Literal,
    Match,
    NotOp,
    Table,
    ValueRef,
)
from .bytecode import CodeObject, Op
from .errors import LexpressCompileError
from .functions import known_functions


# Functions whose arguments should see *all* values of a multi-valued
# attribute, not just the first: attribute references in these positions
# compile to LOAD_ALL.  "all" marks every position (alt must be able to
# fall back across multi-valued attributes).
_LIST_ARG_FUNCTIONS: dict[str, set[int] | str] = {
    "count": {0},
    "join": {0},
    "first": {0},
    "last": {0},
    "present": {0},
    "empty": {0},
    "alt": "all",
    "ifnull": {0},
}


class ExprCompiler:
    """Compiles one expression into one CodeObject."""

    def __init__(self, name: str):
        self.code = CodeObject(name)
        self.deps: set[str] = set()

    def compile(self, expr: Expr) -> CodeObject:
        self.code.span = expr.span
        self._emit_expr(expr)
        self.code.emit(Op.RETURN)
        self.code.deps = frozenset(self.deps)
        self.code.current_span = None
        return self.code

    # -- dispatch -----------------------------------------------------------

    def _emit_expr(self, expr: Expr) -> None:
        # Tag every instruction emitted for this (sub)expression with its
        # source span; inner expressions override, then restore.
        previous_span = self.code.current_span
        if expr.span is not None:
            self.code.current_span = expr.span
        try:
            self._dispatch(expr)
        finally:
            self.code.current_span = previous_span

    def _dispatch(self, expr: Expr) -> None:
        if isinstance(expr, Literal):
            self.code.emit(Op.PUSH, self.code.const(expr.value))
        elif isinstance(expr, AttrRef):
            self.deps.add(expr.name.lower())
            self.code.emit(Op.LOAD_ATTR, self.code.const(expr.name))
        elif isinstance(expr, GroupRef):
            self.code.emit(Op.LOAD_GROUP, expr.index)
        elif isinstance(expr, ValueRef):
            self.code.emit(Op.LOAD_VALUE)
        elif isinstance(expr, Call):
            self._emit_call(expr)
        elif isinstance(expr, Compare):
            self._emit_expr(expr.left)
            self._emit_expr(expr.right)
            self.code.emit(Op.EQ if expr.op == "==" else Op.NEQ)
        elif isinstance(expr, NotOp):
            self._emit_expr(expr.operand)
            self.code.emit(Op.NOT)
        elif isinstance(expr, BoolOp):
            self._emit_bool(expr)
        elif isinstance(expr, Match):
            self._emit_match(expr)
        elif isinstance(expr, Table):
            self._emit_table(expr)
        elif isinstance(expr, Each):
            self._emit_each(expr)
        else:  # pragma: no cover - grammar is closed
            raise LexpressCompileError(f"cannot compile {type(expr).__name__}")

    # -- helpers -------------------------------------------------------------

    def _emit_call(self, expr: Call) -> None:
        if expr.function not in known_functions():
            raise LexpressCompileError(
                f"unknown function {expr.function!r} "
                f"(known: {', '.join(known_functions())})"
            )
        list_positions = _LIST_ARG_FUNCTIONS.get(expr.function, set())
        for i, arg in enumerate(expr.args):
            wants_list = list_positions == "all" or i in list_positions
            if wants_list and isinstance(arg, AttrRef):
                self.deps.add(arg.name.lower())
                self.code.emit(Op.LOAD_ALL, self.code.const(arg.name))
            else:
                self._emit_expr(arg)
        self.code.emit(Op.CALL, (self.code.const(expr.function), len(expr.args)))

    def _emit_bool(self, expr: BoolOp) -> None:
        jump_op = Op.JUMP_IF_FALSE if expr.op == "and" else Op.JUMP_IF_TRUE
        self._emit_expr(expr.left)
        first = self.code.emit(jump_op)
        self._emit_expr(expr.right)
        second = self.code.emit(jump_op)
        self.code.emit(Op.PUSH, self.code.const(expr.op == "and"))
        done = self.code.emit(Op.JUMP)
        target = len(self.code)
        self.code.patch(first, target)
        self.code.patch(second, target)
        self.code.emit(Op.PUSH, self.code.const(expr.op != "and"))
        self.code.patch(done, len(self.code))

    def _emit_match(self, expr: Match) -> None:
        self._emit_expr(expr.subject)
        end_jumps: list[int] = []
        fell_through = True
        for arm in expr.arms:
            if arm.pattern is None:  # wildcard: consumes the subject
                self.code.emit(Op.POP)
                self._emit_expr(arm.body)
                fell_through = False
                break
            self.code.emit(Op.DUP)
            if arm.literal:
                self.code.emit(Op.MATCH_LIT, self.code.const(arm.pattern))
            else:
                try:
                    compiled = re.compile(arm.pattern)
                except re.error as exc:
                    raise LexpressCompileError(
                        f"bad regex /{arm.pattern}/: {exc}"
                    ) from None
                self.code.emit(Op.MATCH_RE, self.code.const(compiled))
            next_arm = self.code.emit(Op.JUMP_IF_FALSE)
            self.code.emit(Op.POP)  # drop the subject
            self._emit_expr(arm.body)
            end_jumps.append(self.code.emit(Op.JUMP))
            self.code.patch(next_arm, len(self.code))
        if fell_through:
            # No arm matched: the result is null (unset), letting alt()
            # or later rules handle the dirty value.
            self.code.emit(Op.POP)
            self.code.emit(Op.PUSH, self.code.const(None))
        for jump in end_jumps:
            self.code.patch(jump, len(self.code))

    def _emit_table(self, expr: Table) -> None:
        self._emit_expr(expr.subject)
        end_jumps: list[int] = []
        for entry in expr.entries:
            self.code.emit(Op.DUP)
            self.code.emit(Op.MATCH_LIT, self.code.const(entry.key))
            next_entry = self.code.emit(Op.JUMP_IF_FALSE)
            self.code.emit(Op.POP)
            self._emit_expr(entry.body)
            end_jumps.append(self.code.emit(Op.JUMP))
            self.code.patch(next_entry, len(self.code))
        self.code.emit(Op.POP)
        if expr.default is not None:
            self._emit_expr(expr.default)
        else:
            self.code.emit(Op.PUSH, self.code.const(None))
        for jump in end_jumps:
            self.code.patch(jump, len(self.code))

    def _emit_each(self, expr: Each) -> None:
        self.deps.add(expr.attribute.lower())
        body = compile_expr(expr.body, f"{self.code.name}:each")
        self.deps.update(body.deps)
        self.code.emit(Op.LOAD_ALL, self.code.const(expr.attribute))
        self.code.emit(Op.EACH_APPLY, self.code.const(body))


def compile_expr(expr: Expr, name: str = "<expr>") -> CodeObject:
    """Compile a single expression AST into byte code."""
    return ExprCompiler(name).compile(expr)
