"""lexpress update descriptors and translated target updates.

"When a filter receives a change notification from its associated
repository, it creates a lexpress update descriptor of the change."
(paper section 4.1.)  The descriptor is the canonical, repository-neutral
representation of one update: operation kind, old and new attribute
images, which attributes the client set explicitly, and where the update
originally entered the system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence


class UpdateOp(enum.Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


def normalize_attrs(
    attrs: Mapping[str, Sequence[str] | str] | None,
) -> dict[str, list[str]] | None:
    """Canonical attribute dict: original-ish names, list-of-string values."""
    if attrs is None:
        return None
    out: dict[str, list[str]] = {}
    for name, values in attrs.items():
        if isinstance(values, str):
            values = [values]
        out[name] = [str(v) for v in values]
    return out


def _get(attrs: Mapping[str, list[str]] | None, name: str) -> list[str]:
    if not attrs:
        return []
    wanted = name.lower()
    for key, values in attrs.items():
        if key.lower() == wanted:
            return list(values)
    return []


@dataclass(frozen=True)
class UpdateDescriptor:
    """One update in canonical form.

    ``old``/``new`` are full attribute images before/after the update
    (``None`` for the missing side of adds and deletes).  ``explicit`` is
    the set of attribute names (lower-case) the client set directly — the
    transitive-closure engine must never overwrite those (section 4.2).
    ``origin`` names the repository where the update first entered the
    system; the Originator machinery (section 5.4) compares it against
    update targets to emit conditional operations.
    """

    op: UpdateOp
    source: str
    key: str | None
    old: dict[str, list[str]] | None = None
    new: dict[str, list[str]] | None = None
    explicit: frozenset[str] = frozenset()
    origin: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "old", normalize_attrs(self.old))
        object.__setattr__(self, "new", normalize_attrs(self.new))
        object.__setattr__(
            self, "explicit", frozenset(a.lower() for a in self.explicit)
        )
        if self.origin is None:
            object.__setattr__(self, "origin", self.source)
        if self.op is UpdateOp.ADD and self.new is None:
            raise ValueError("ADD descriptor needs a new image")
        if self.op is UpdateOp.DELETE and self.old is None:
            raise ValueError("DELETE descriptor needs an old image")
        if self.op is UpdateOp.MODIFY and (self.old is None or self.new is None):
            raise ValueError("MODIFY descriptor needs both images")

    # -- derived ------------------------------------------------------------

    def changed_attributes(self) -> frozenset[str]:
        """Lower-case names of attributes whose values differ old → new."""
        old = self.old or {}
        new = self.new or {}
        names = {k.lower() for k in old} | {k.lower() for k in new}
        changed = set()
        for name in names:
            if _get(self.old, name) != _get(self.new, name):
                changed.add(name)
        return frozenset(changed)

    def get_new(self, name: str) -> list[str]:
        return _get(self.new, name)

    def get_old(self, name: str) -> list[str]:
        return _get(self.old, name)

    def with_new_attribute(self, name: str, values: Sequence[str]) -> "UpdateDescriptor":
        """A copy with one attribute of the new image replaced/added —
        used to fold device-generated information back in (section 5.5)."""
        new = dict(self.new or {})
        for key in list(new):
            if key.lower() == name.lower():
                del new[key]
        new[name] = [str(v) for v in values]
        return replace(self, new=new)


class TargetAction(enum.Enum):
    """What a translated update does at the target repository.

    The four cases are the partitioning matrix of section 4.2: whether the
    old and new attribute images satisfy the target's constraints decides
    between add, modify, delete and skip.
    """

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    SKIP = "skip"


@dataclass(frozen=True)
class TargetUpdate:
    """The result of translating a descriptor toward one target repository."""

    action: TargetAction
    target: str
    #: Target-schema key value after the update (None for deletes).
    key: str | None
    #: Target-schema key value before the update (differs from ``key`` on renames).
    old_key: str | None
    #: Name of the target-schema key attribute (from the mapping's `key` decl).
    key_attribute: str | None = None
    #: Full new attribute image in the target schema ({} for deletes).
    attributes: dict[str, list[str]] = field(default_factory=dict)
    #: Full old attribute image in the target schema ({} for adds).
    old_attributes: dict[str, list[str]] = field(default_factory=dict)
    #: For modifies: only the attributes whose values changed.
    changed: dict[str, list[str]] = field(default_factory=dict)
    #: For modifies: attributes that were set before and are now unset.
    removed: tuple[str, ...] = ()
    #: Section 5.4: true when the update is being sent back to the
    #: repository it originated from — the filter must reapply it with
    #: conditional semantics (add → conditional modify, etc.).
    conditional: bool = False
    #: Name of the mapping that produced this update (diagnostics).
    mapping: str = ""
