"""lexpress error types."""

from __future__ import annotations


class LexpressError(Exception):
    """Base class for all lexpress failures."""


class LexpressSyntaxError(LexpressError):
    """Lexing or parsing failed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexpressCompileError(LexpressError):
    """Semantic analysis or code generation failed."""


class LexpressRuntimeError(LexpressError):
    """Bytecode execution failed."""


class LexpressDivergenceError(LexpressRuntimeError):
    """``lexpress_mode="verify"`` found the compiled closure disagreeing
    with the reference interpreter for one rule evaluation."""

    def __init__(
        self,
        mapping: str,
        attribute: str,
        interpreted,
        compiled,
        span=None,
    ):
        where = f" (source {span})" if span is not None else ""
        super().__init__(
            f"divergence in mapping {mapping!r}, attribute {attribute!r}"
            f"{where}: interpreter produced {interpreted!r}, "
            f"compiled closure produced {compiled!r}"
        )
        self.mapping = mapping
        self.attribute = attribute
        self.interpreted = interpreted
        self.compiled = compiled
        self.span = span


class FixpointError(LexpressRuntimeError):
    """A cyclic dependency failed to reach a fixpoint at execution time
    (the enhancement discussed at the end of paper section 4.2)."""


class CyclicDependencyError(LexpressCompileError):
    """Compile-time detection of a dependency cycle that can never reach a
    fixpoint (the other half of the same enhancement)."""
