"""The lexpress runtime function library.

These are the "string operations" and related helpers the mapping language
exposes (paper section 4.2).  All scalar string functions propagate null:
when a required argument is null the result is null, which is what makes
``alt(...)`` fallback chains compose cleanly with missing/dirty data.

Values at runtime are ``None``, ``str``, ``bool`` or ``list[str]``.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from .errors import LexpressRuntimeError

Value = Any  # None | str | bool | list[str]

_REGISTRY: dict[str, Callable[..., Value]] = {}


def register(name: str):
    def decorate(fn: Callable[..., Value]) -> Callable[..., Value]:
        _REGISTRY[name] = fn
        return fn

    return decorate


def lookup(name: str) -> Callable[..., Value]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise LexpressRuntimeError(f"unknown function {name!r}") from None


def known_functions() -> list[str]:
    return sorted(_REGISTRY)


def _scalar(value: Value) -> str | None:
    """Coerce to a scalar string (first element of a list), or None."""
    if value is None or isinstance(value, bool):
        return None if value is None else ("true" if value else "false")
    if isinstance(value, list):
        return str(value[0]) if value else None
    return str(value)


def _require(*values: Value) -> list[str] | None:
    """Coerce all to scalars; None when any is null (null propagation)."""
    out = []
    for value in values:
        scalar = _scalar(value)
        if scalar is None:
            return None
        out.append(scalar)
    return out


# -- string operations --------------------------------------------------------


@register("concat")
def fn_concat(*args: Value) -> Value:
    scalars = _require(*args)
    return None if scalars is None else "".join(scalars)


@register("upper")
def fn_upper(value: Value) -> Value:
    scalar = _scalar(value)
    return None if scalar is None else scalar.upper()


@register("lower")
def fn_lower(value: Value) -> Value:
    scalar = _scalar(value)
    return None if scalar is None else scalar.lower()


@register("trim")
def fn_trim(value: Value) -> Value:
    scalar = _scalar(value)
    return None if scalar is None else scalar.strip()


@register("substr")
def fn_substr(value: Value, start: Value, length: Value = None) -> Value:
    scalars = _require(value, start)
    if scalars is None:
        return None
    text, start_text = scalars
    try:
        begin = int(start_text)
    except ValueError:
        raise LexpressRuntimeError(f"substr: bad start index {start_text!r}")
    if length is None:
        return text[begin:]
    length_text = _scalar(length)
    if length_text is None:
        return None
    try:
        count = int(length_text)
    except ValueError:
        raise LexpressRuntimeError(f"substr: bad length {length_text!r}")
    return text[begin:begin + count]


@register("replace")
def fn_replace(value: Value, old: Value, new: Value) -> Value:
    scalars = _require(value, old, new)
    if scalars is None:
        return None
    text, old_text, new_text = scalars
    return text.replace(old_text, new_text)


@register("pad")
def fn_pad(value: Value, width: Value, fill: Value = "0") -> Value:
    scalars = _require(value, width, fill)
    if scalars is None:
        return None
    text, width_text, fill_text = scalars
    try:
        target = int(width_text)
    except ValueError:
        raise LexpressRuntimeError(f"pad: bad width {width_text!r}")
    if not fill_text:
        raise LexpressRuntimeError("pad: empty fill")
    while len(text) < target:
        text = fill_text + text
    return text


@register("digits")
def fn_digits(value: Value) -> Value:
    """Keep only digit characters — the classic dirty-phone-number cleaner."""
    scalar = _scalar(value)
    return None if scalar is None else re.sub(r"\D", "", scalar)


# -- predicates -----------------------------------------------------------------


@register("prefix")
def fn_prefix(value: Value, prefix: Value) -> Value:
    scalars = _require(value, prefix)
    return False if scalars is None else scalars[0].startswith(scalars[1])


@register("suffix")
def fn_suffix(value: Value, suffix: Value) -> Value:
    scalars = _require(value, suffix)
    return False if scalars is None else scalars[0].endswith(scalars[1])


@register("contains")
def fn_contains(value: Value, needle: Value) -> Value:
    scalars = _require(value, needle)
    return False if scalars is None else scalars[1] in scalars[0]


@register("matches")
def fn_matches(value: Value, pattern: Value) -> Value:
    scalars = _require(value, pattern)
    if scalars is None:
        return False
    text, regex = scalars
    try:
        return re.search(regex, text) is not None
    except re.error as exc:
        raise LexpressRuntimeError(f"matches: bad regex {regex!r}: {exc}")


@register("present")
def fn_present(value: Value) -> Value:
    if isinstance(value, list):
        return bool(value)
    return value is not None


@register("empty")
def fn_empty(value: Value) -> Value:
    return not fn_present(value)


# -- alternates and defaults -------------------------------------------------------


def _unwrap(value: Value) -> Value:
    """Single-element lists act like scalars in fallback results."""
    if isinstance(value, list) and len(value) == 1:
        return str(value[0])
    return value


@register("alt")
def fn_alt(*args: Value) -> Value:
    """First non-null argument — the "alternate attribute mappings" feature."""
    for value in args:
        if isinstance(value, list):
            if value:
                return _unwrap(value)
        elif value is not None:
            return value
    return None


@register("ifnull")
def fn_ifnull(value: Value, fallback: Value) -> Value:
    if value is None or (isinstance(value, list) and not value):
        return fallback
    return _unwrap(value)


# -- multi-valued attribute processing ------------------------------------------------


@register("split")
def fn_split(value: Value, sep: Value) -> Value:
    scalars = _require(value, sep)
    if scalars is None:
        return None
    text, separator = scalars
    if not separator:
        raise LexpressRuntimeError("split: empty separator")
    return [part for part in text.split(separator)]


@register("join")
def fn_join(value: Value, sep: Value) -> Value:
    separator = _scalar(sep)
    if separator is None:
        return None
    if value is None:
        return None
    if not isinstance(value, list):
        return str(value)
    return separator.join(str(v) for v in value)


@register("first")
def fn_first(value: Value) -> Value:
    if isinstance(value, list):
        return str(value[0]) if value else None
    return _scalar(value)


@register("last")
def fn_last(value: Value) -> Value:
    if isinstance(value, list):
        return str(value[-1]) if value else None
    return _scalar(value)


@register("count")
def fn_count(value: Value) -> Value:
    if value is None:
        return "0"
    if isinstance(value, list):
        return str(len(value))
    return "1"
