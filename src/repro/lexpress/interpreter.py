"""The lexpress byte-code interpreter.

Executes a :class:`~repro.lexpress.bytecode.CodeObject` against a source
record (a mapping from attribute name to list of string values).  The
compiler and interpreter together form the "subroutine library that can be
called from any program" of paper section 4.2.

This module is the reference semantics: the closure compiler
(:mod:`repro.lexpress.codegen`) must produce byte-for-byte identical
values, and ``lexpress_mode="verify"`` runs both engines and asserts it.
The hot path is kept honest for that comparison — frames come from a
per-thread pool instead of being allocated per call, attribute-name
lowering is hoisted to :meth:`CodeObject.attr_keys`, and callers that
already hold a canonical (lower-keyed) record pass ``canonical=True`` to
skip re-lowering entirely.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Sequence

from ..obs.metrics import global_registry
from .bytecode import CodeObject, Op
from .errors import LexpressRuntimeError
from .functions import lookup

Value = Any  # None | str | bool | list[str]

#: Executed-instruction counter.  The interpreter is module-level code with
#: no instance to hang a per-system registry on, so it reports into the
#: process-wide registry; the count is accumulated locally per run and
#: flushed once, keeping the dispatch loop branch-free.
_INSTRUCTIONS = global_registry().counter(
    "lexpress_instructions_total",
    "Byte-code instructions executed by the lexpress interpreter",
)


def truthy(value: Value) -> bool:
    """Boolean coercion: null and empty values are false."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (str, list)):
        return bool(value)
    return bool(value)


class _Frame:
    __slots__ = ("attrs", "groups", "value")

    def __init__(self):
        self.attrs: Mapping[str, Sequence[str]] = {}
        self.groups: list[str | None] = []
        self.value: Value = None


#: Per-thread frame pool: `execute` is called once per rule evaluation on
#: the Update Manager hot path; reusing frames avoids one allocation plus
#: slot initialization per call.
_LOCAL = threading.local()
_POOL_LIMIT = 16


def _acquire() -> _Frame:
    pool = getattr(_LOCAL, "frames", None)
    if pool:
        return pool.pop()
    return _Frame()


def _release(frame: _Frame) -> None:
    pool = getattr(_LOCAL, "frames", None)
    if pool is None:
        pool = _LOCAL.frames = []
    if len(pool) < _POOL_LIMIT:
        frame.attrs = {}
        frame.value = None
        pool.append(frame)


def lower_attrs(
    attrs: Mapping[str, Sequence[str]],
) -> dict[str, Sequence[str]]:
    """Canonical execution view of a record: lower-cased attribute keys.

    Values are shared, not copied — the interpreter and compiled closures
    only ever read them (and coerce elements with ``str`` on load)."""
    return {k.lower(): v for k, v in attrs.items()}


def execute(
    code: CodeObject,
    attrs: Mapping[str, Sequence[str]],
    value: Value = None,
    *,
    canonical: bool = False,
) -> Value:
    """Run *code* against the source record *attrs* and return its value.

    ``canonical=True`` promises that *attrs* already has lower-cased keys
    (e.g. from :func:`lower_attrs`), skipping the per-call re-keying —
    the big win for callers that evaluate many rules against one record.
    """
    frame = _acquire()
    frame.attrs = attrs if canonical else lower_attrs(attrs)
    frame.groups = []
    frame.value = value
    try:
        return _run(code, frame)
    finally:
        _release(frame)


def _run(code: CodeObject, frame: _Frame) -> Value:
    stack: list[Value] = []
    pc = 0
    executed = 0
    instructions = code.instructions
    consts = code.consts
    attr_keys = code.attr_keys()
    try:
        while pc < len(instructions):
            ins = instructions[pc]
            op = ins.op
            pc += 1
            executed += 1
            if op is Op.PUSH:
                stack.append(consts[ins.arg])
            elif op is Op.LOAD_ATTR:
                values = frame.attrs.get(attr_keys[ins.arg], ())
                stack.append(str(values[0]) if values else None)
            elif op is Op.LOAD_ALL:
                values = frame.attrs.get(attr_keys[ins.arg], ())
                stack.append([str(v) for v in values])
            elif op is Op.LOAD_GROUP:
                index = ins.arg
                if index < len(frame.groups):
                    stack.append(frame.groups[index])
                else:
                    stack.append(None)
            elif op is Op.LOAD_VALUE:
                stack.append(frame.value)
            elif op is Op.CALL:
                name_idx, argc = ins.arg
                fn = lookup(consts[name_idx])
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                try:
                    stack.append(fn(*args))
                except TypeError as exc:
                    raise LexpressRuntimeError(
                        f"{consts[name_idx]}: {exc}"
                    ) from None
            elif op is Op.MATCH_RE:
                subject = stack.pop()
                if subject is None:
                    stack.append(False)
                    continue
                match = consts[ins.arg].search(str(subject))
                if match:
                    frame.groups = [match.group(0), *match.groups()]
                    stack.append(True)
                else:
                    stack.append(False)
            elif op is Op.MATCH_LIT:
                subject = stack.pop()
                literal = consts[ins.arg]
                matched = subject is not None and str(subject) == literal
                if matched:
                    frame.groups = [str(subject)]
                stack.append(matched)
            elif op is Op.TABLE_CONST:
                subject = stack.pop()
                table, default = consts[ins.arg]
                if subject is None:
                    stack.append(default)
                else:
                    text = str(subject)
                    if text in table:
                        frame.groups = [text]
                        stack.append(table[text])
                    else:
                        stack.append(default)
            elif op is Op.EACH_APPLY:
                body: CodeObject = consts[ins.arg]
                values = stack.pop()
                if values is None:
                    values = []
                if not isinstance(values, list):
                    values = [values]
                results: list[str] = []
                sub = _acquire()
                sub.attrs = frame.attrs  # share, no copy needed
                try:
                    for element in values:
                        sub.groups = []
                        sub.value = str(element)
                        result = _run(body, sub)
                        if result is None:
                            continue
                        if isinstance(result, list):
                            results.extend(str(r) for r in result)
                        elif isinstance(result, bool):
                            results.append("true" if result else "false")
                        else:
                            results.append(str(result))
                finally:
                    _release(sub)
                stack.append(results)
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.POP:
                stack.pop()
            elif op is Op.IS_NULL:
                stack.append(stack.pop() is None)
            elif op is Op.EQ:
                right, left = stack.pop(), stack.pop()
                stack.append(_equal(left, right))
            elif op is Op.NEQ:
                right, left = stack.pop(), stack.pop()
                stack.append(not _equal(left, right))
            elif op is Op.NOT:
                stack.append(not truthy(stack.pop()))
            elif op is Op.JUMP:
                pc = ins.arg
            elif op is Op.JUMP_IF_FALSE:
                if not truthy(stack.pop()):
                    pc = ins.arg
            elif op is Op.JUMP_IF_TRUE:
                if truthy(stack.pop()):
                    pc = ins.arg
            elif op is Op.RETURN:
                return stack.pop() if stack else None
            else:  # pragma: no cover - opcode set is closed
                raise LexpressRuntimeError(f"bad opcode {op}")
    finally:
        if executed:
            _INSTRUCTIONS.inc(executed)
    raise LexpressRuntimeError(f"code {code.name!r} fell off the end")


def _equal(left: Value, right: Value) -> bool:
    if left is None or right is None:
        return left is right
    if isinstance(left, list) or isinstance(right, list):
        left_list = left if isinstance(left, list) else [left]
        right_list = right if isinstance(right, list) else [right]
        return [str(v) for v in left_list] == [str(v) for v in right_list]
    return str(left) == str(right)
