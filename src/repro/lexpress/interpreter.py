"""The lexpress byte-code interpreter.

Executes a :class:`~repro.lexpress.bytecode.CodeObject` against a source
record (a mapping from attribute name to list of string values).  The
compiler and interpreter together form the "subroutine library that can be
called from any program" of paper section 4.2.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..obs.metrics import global_registry
from .bytecode import CodeObject, Op
from .errors import LexpressRuntimeError
from .functions import lookup

Value = Any  # None | str | bool | list[str]

#: Executed-instruction counter.  The interpreter is module-level code with
#: no instance to hang a per-system registry on, so it reports into the
#: process-wide registry; the count is accumulated locally per run and
#: flushed once, keeping the dispatch loop branch-free.
_INSTRUCTIONS = global_registry().counter(
    "lexpress_instructions_total",
    "Byte-code instructions executed by the lexpress interpreter",
)


def truthy(value: Value) -> bool:
    """Boolean coercion: null and empty values are false."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (str, list)):
        return bool(value)
    return bool(value)


class _Frame:
    __slots__ = ("attrs", "groups", "value")

    def __init__(self, attrs: Mapping[str, Sequence[str]], value: Value = None):
        # Attribute lookup is case-insensitive, like LDAP itself.
        self.attrs = {k.lower(): list(v) for k, v in attrs.items()}
        self.groups: list[str | None] = []
        self.value = value


def execute(
    code: CodeObject,
    attrs: Mapping[str, Sequence[str]],
    value: Value = None,
) -> Value:
    """Run *code* against the source record *attrs* and return its value."""
    frame = _Frame(attrs, value)
    return _run(code, frame)


def _run(code: CodeObject, frame: _Frame) -> Value:
    stack: list[Value] = []
    pc = 0
    executed = 0
    instructions = code.instructions
    consts = code.consts
    try:
        while pc < len(instructions):
            ins = instructions[pc]
            op = ins.op
            pc += 1
            executed += 1
            if op is Op.PUSH:
                stack.append(consts[ins.arg])
            elif op is Op.LOAD_ATTR:
                values = frame.attrs.get(consts[ins.arg].lower(), [])
                stack.append(str(values[0]) if values else None)
            elif op is Op.LOAD_ALL:
                values = frame.attrs.get(consts[ins.arg].lower(), [])
                stack.append([str(v) for v in values])
            elif op is Op.LOAD_GROUP:
                index = ins.arg
                if index < len(frame.groups):
                    stack.append(frame.groups[index])
                else:
                    stack.append(None)
            elif op is Op.LOAD_VALUE:
                stack.append(frame.value)
            elif op is Op.CALL:
                name_idx, argc = ins.arg
                fn = lookup(consts[name_idx])
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                try:
                    stack.append(fn(*args))
                except TypeError as exc:
                    raise LexpressRuntimeError(
                        f"{consts[name_idx]}: {exc}"
                    ) from None
            elif op is Op.MATCH_RE:
                subject = stack.pop()
                if subject is None:
                    stack.append(False)
                    continue
                match = consts[ins.arg].search(str(subject))
                if match:
                    frame.groups = [match.group(0), *match.groups()]
                    stack.append(True)
                else:
                    stack.append(False)
            elif op is Op.MATCH_LIT:
                subject = stack.pop()
                literal = consts[ins.arg]
                matched = subject is not None and str(subject) == literal
                if matched:
                    frame.groups = [str(subject)]
                stack.append(matched)
            elif op is Op.EACH_APPLY:
                body: CodeObject = consts[ins.arg]
                values = stack.pop()
                if values is None:
                    values = []
                if not isinstance(values, list):
                    values = [values]
                results: list[str] = []
                for element in values:
                    sub = _Frame(frame.attrs, str(element))
                    sub.attrs = frame.attrs  # share, no copy needed
                    result = _run(body, sub)
                    if result is None:
                        continue
                    if isinstance(result, list):
                        results.extend(str(r) for r in result)
                    elif isinstance(result, bool):
                        results.append("true" if result else "false")
                    else:
                        results.append(str(result))
                stack.append(results)
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.POP:
                stack.pop()
            elif op is Op.IS_NULL:
                stack.append(stack.pop() is None)
            elif op is Op.EQ:
                right, left = stack.pop(), stack.pop()
                stack.append(_equal(left, right))
            elif op is Op.NEQ:
                right, left = stack.pop(), stack.pop()
                stack.append(not _equal(left, right))
            elif op is Op.NOT:
                stack.append(not truthy(stack.pop()))
            elif op is Op.JUMP:
                pc = ins.arg
            elif op is Op.JUMP_IF_FALSE:
                if not truthy(stack.pop()):
                    pc = ins.arg
            elif op is Op.JUMP_IF_TRUE:
                if truthy(stack.pop()):
                    pc = ins.arg
            elif op is Op.RETURN:
                return stack.pop() if stack else None
            else:  # pragma: no cover - opcode set is closed
                raise LexpressRuntimeError(f"bad opcode {op}")
    finally:
        if executed:
            _INSTRUCTIONS.inc(executed)
    raise LexpressRuntimeError(f"code {code.name!r} fell off the end")


def _equal(left: Value, right: Value) -> bool:
    if left is None or right is None:
        return left is right
    if isinstance(left, list) or isinstance(right, list):
        left_list = left if isinstance(left, list) else [left]
        right_list = right if isinstance(right, list) else [right]
        return [str(v) for v in left_list] == [str(v) for v in right_list]
    return str(left) == str(right)
