"""Tokenizer for the lexpress mapping language.

The language is small and declarative; the full token inventory is listed
in :data:`KEYWORDS` and :class:`TokenType`.  ``#`` starts a comment that
runs to end of line.  Regular-expression literals are written ``/…/`` —
the language has no division operator, so a slash always opens a regex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexpressSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    REGEX = "regex"
    GROUP = "group"  # $1, $2, ...
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COMMA = ","
    ASSIGN = "="
    ARROW = "=>"
    MAPSTO = "->"
    EQEQ = "=="
    NEQ = "!="
    UNDERSCORE = "_"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "mapping",
        "source",
        "target",
        "key",
        "originator",
        "map",
        "partition",
        "when",
        "match",
        "table",
        "each",
        "default",
        "and",
        "or",
        "not",
        "value",
        "null",
        "true",
        "false",
    }
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> LexpressSyntaxError:
        return LexpressSyntaxError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", line, column)

        two = ch + self._peek(1)
        if two == "=>":
            self._advance(2)
            return Token(TokenType.ARROW, "=>", line, column)
        if two == "->":
            self._advance(2)
            return Token(TokenType.MAPSTO, "->", line, column)
        if two == "==":
            self._advance(2)
            return Token(TokenType.EQEQ, "==", line, column)
        if two == "!=":
            self._advance(2)
            return Token(TokenType.NEQ, "!=", line, column)

        simple = {
            "{": TokenType.LBRACE,
            "}": TokenType.RBRACE,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ";": TokenType.SEMI,
            ",": TokenType.COMMA,
            "=": TokenType.ASSIGN,
        }
        if ch in simple:
            self._advance()
            return Token(simple[ch], ch, line, column)

        if ch == '"':
            return self._string(line, column)
        if ch == "/":
            return self._regex(line, column)
        if ch == "$":
            return self._group(line, column)
        if ch == "_" and not (self._peek(1).isalnum() or self._peek(1) == "_"):
            self._advance()
            return Token(TokenType.UNDERSCORE, "_", line, column)
        if ch.isdigit():
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._ident(line, column)
        raise self.error(f"unexpected character {ch!r}")

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "#":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        out: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self.error("unterminated string literal")
            if ch == "\\":
                escape = self._peek(1)
                mapped = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape)
                if mapped is None:
                    raise self.error(f"bad string escape \\{escape}")
                out.append(mapped)
                self._advance(2)
                continue
            if ch == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(out), line, column)
            out.append(ch)
            self._advance()

    def _regex(self, line: int, column: int) -> Token:
        self._advance()  # opening slash
        out: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self.error("unterminated regex literal")
            if ch == "\\":
                out.append(ch)
                out.append(self._peek(1))
                self._advance(2)
                continue
            if ch == "/":
                self._advance()
                return Token(TokenType.REGEX, "".join(out), line, column)
            out.append(ch)
            self._advance()

    def _group(self, line: int, column: int) -> Token:
        self._advance()  # $
        digits: list[str] = []
        while self._peek().isdigit():
            digits.append(self._peek())
            self._advance()
        if not digits:
            raise self.error("expected digits after '$'")
        return Token(TokenType.GROUP, "".join(digits), line, column)

    def _number(self, line: int, column: int) -> Token:
        out: list[str] = []
        while self._peek().isdigit():
            out.append(self._peek())
            self._advance()
        return Token(TokenType.NUMBER, "".join(out), line, column)

    def _ident(self, line: int, column: int) -> Token:
        out: list[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            out.append(self._peek())
            self._advance()
        text = "".join(out)
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENT, text, line, column)


def tokenize(source: str) -> list[Token]:
    return Lexer(source).tokens()
