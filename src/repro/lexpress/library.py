"""Mapping-set builder and common telecom mapping helpers.

Section 5.4: "Although the lexpress mappings are simple to construct, we
found them to be repetitive for integrating several devices with closely
related mappings.  A graphical user interface (GUI) was implemented that
eliminates the need to enter redundant information ... We plan to automate
the repetition of dependency information in relevant mappings as part of
the generation of lexpress description files by the GUI."

:class:`MappingSetBuilder` is that generator, minus the pixels: declare an
attribute correspondence once and it emits the lexpress source for *both*
directions of the schema pair, including the Originator bookkeeping that
every device↔directory pair needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexpressCompileError
from .mapping import CompiledMapping, compile_mapping


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


@dataclass
class _Rule:
    target: str
    expression: str


class MappingSetBuilder:
    """Generates the forward and backward lexpress mappings of a schema pair."""

    def __init__(self, source: str, target: str, name: str | None = None):
        self.source = source
        self.target = target
        self.name = name or f"{source}_{target}"
        self._key: tuple[str, str] | None = None
        self._originator_attr: str | None = None
        self._forward: list[_Rule] = []
        self._backward: list[_Rule] = []
        self._partition_forward: str | None = None
        self._partition_backward: str | None = None

    # -- declarations -----------------------------------------------------------

    def key(self, source_attr: str, target_attr: str) -> "MappingSetBuilder":
        self._key = (source_attr, target_attr)
        return self

    def originator(self, attribute: str) -> "MappingSetBuilder":
        """Declare the target-side attribute recording who updated last.

        Generates ``map <attribute> = "<source>";`` in the forward mapping
        and ``originator <attribute>;`` in the backward mapping — the full
        section-5.4 pattern from one line."""
        self._originator_attr = attribute
        return self

    def map(self, source_attr: str, target_attr: str) -> "MappingSetBuilder":
        """Identity correspondence, both directions."""
        self._forward.append(_Rule(target_attr, source_attr))
        self._backward.append(_Rule(source_attr, target_attr))
        return self

    def map_with(
        self,
        source_attr: str,
        target_attr: str,
        forward: str,
        backward: str | None = None,
    ) -> "MappingSetBuilder":
        """Transformed correspondence; *forward*/*backward* are lexpress
        expressions in the respective source schema's attribute space."""
        self._forward.append(_Rule(target_attr, forward))
        if backward is not None:
            self._backward.append(_Rule(source_attr, backward))
        return self

    def table(
        self,
        source_attr: str,
        target_attr: str,
        translations: dict[str, str],
        default: str | None = None,
        reverse_default: str | None = None,
    ) -> "MappingSetBuilder":
        """Table translation declared once, inverted automatically."""
        entries = "".join(
            f"        {_quote(k)} => {_quote(v)};\n" for k, v in translations.items()
        )
        default_clause = (
            f"        default => {_quote(default)};\n" if default is not None else ""
        )
        self._forward.append(
            _Rule(
                target_attr,
                "table " + source_attr + " {\n" + entries + default_clause + "    }",
            )
        )
        inverted: dict[str, str] = {}
        for key, value in translations.items():
            inverted.setdefault(value, key)
        rentries = "".join(
            f"        {_quote(k)} => {_quote(v)};\n" for k, v in inverted.items()
        )
        rdefault = (
            f"        default => {_quote(reverse_default)};\n"
            if reverse_default is not None
            else ""
        )
        self._backward.append(
            _Rule(
                source_attr,
                "table " + target_attr + " {\n" + rentries + rdefault + "    }",
            )
        )
        return self

    def partition(
        self, forward: str | None = None, backward: str | None = None
    ) -> "MappingSetBuilder":
        if forward is not None:
            self._partition_forward = forward
        if backward is not None:
            self._partition_backward = backward
        return self

    # -- generation ------------------------------------------------------------

    def _render(
        self,
        name: str,
        source: str,
        target: str,
        key: tuple[str, str] | None,
        rules: list[_Rule],
        partition: str | None,
        originator_decl: str | None,
        originator_rule: str | None,
    ) -> str:
        lines = [f"mapping {name} {{"]
        lines.append(f"    source {source};")
        lines.append(f"    target {target};")
        if key is not None:
            lines.append(f"    key {key[0]} -> {key[1]};")
        if originator_decl is not None:
            lines.append(f"    originator {originator_decl};")
        for rule in rules:
            lines.append(f"    map {rule.target} = {rule.expression};")
        if originator_rule is not None:
            lines.append(f"    map {originator_rule} = {_quote(source)};")
        if partition is not None:
            lines.append(f"    partition when {partition};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def build(self) -> tuple[str, str]:
        """Return (forward source, backward source) lexpress texts."""
        if self._key is None:
            raise LexpressCompileError("a mapping set needs a key correspondence")
        forward = self._render(
            f"{self.source}_to_{self.target}",
            self.source,
            self.target,
            self._key,
            self._forward,
            self._partition_forward,
            originator_decl=None,
            originator_rule=self._originator_attr,
        )
        backward = self._render(
            f"{self.target}_to_{self.source}",
            self.target,
            self.source,
            (self._key[1], self._key[0]),
            self._backward,
            self._partition_backward,
            originator_decl=self._originator_attr,
            originator_rule=None,
        )
        return forward, backward

    def compile(self) -> tuple[CompiledMapping, CompiledMapping]:
        forward, backward = self.build()
        return compile_mapping(forward), compile_mapping(backward)
