"""Compiled mappings: the unit of schema translation.

A :class:`CompiledMapping` is one direction of a schema pair ("two
lexpress mappings are specified for each schema pair", section 4.2).  It
can

* compute the full target-schema *image* of a source record,
* *translate* an :class:`~repro.lexpress.descriptor.UpdateDescriptor`
  into a :class:`~repro.lexpress.descriptor.TargetUpdate`, applying the
  partitioning matrix and the Originator/conditional rule, and
* report per-rule attribute dependencies for closure analysis.

Mappings are written against *schema* names; a
:class:`MappingInstance` binds a mapping to concrete repository instances
(e.g. the same ``ldap_to_pbx`` mapping bound once per PBX, each with its
own partition constraint) — the reuse story of section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .ast import AttrRef, MappingDecl, Span
from .bytecode import CodeObject
from .compiler import compile_expr
from .descriptor import (
    TargetAction,
    TargetUpdate,
    UpdateDescriptor,
    UpdateOp,
    normalize_attrs,
)
from .codegen import run_rule
from .errors import LexpressCompileError
from .interpreter import lower_attrs
from .parser import parse
from .partition import AlwaysTrue, PartitionConstraint, route


@dataclass(frozen=True)
class CompiledRule:
    """One ``map target = expr;`` rule, compiled."""

    target: str
    code: CodeObject
    #: Source position of the ``map`` statement (None for synthesized rules).
    span: "Span | None" = None

    @property
    def deps(self) -> frozenset[str]:
        return self.code.deps


def _as_values(result) -> list[str] | None:
    """Normalize an interpreter result into attribute values (or unset)."""
    if result is None:
        return None
    if isinstance(result, bool):
        return ["true" if result else "false"]
    if isinstance(result, list):
        return [str(v) for v in result] if result else None
    return [str(result)]


class CompiledMapping:
    """A compiled one-direction schema mapping."""

    def __init__(self, decl: MappingDecl):
        self.name = decl.name
        self.source = decl.source
        self.target = decl.target
        self.key_source = decl.key_source
        self.key_target = decl.key_target
        self.originator = decl.originator
        #: The declaration this mapping was compiled from, and the source
        #: text of the description it came from — retained for static
        #: analysis (span resolution and inline suppression comments).
        self.decl = decl
        self.source_text: str | None = None
        #: Execution engine for this mapping's rules: None/"interpret"
        #: runs the byte-code interpreter, "compiled" serves closures from
        #: the process-wide cache, "verify" runs both and raises on any
        #: disagreement.  Set per MetaComm system from
        #: ``MetaCommConfig.lexpress_mode``.
        self.lexpress_mode: str | None = None

        rules = [
            CompiledRule(
                r.target,
                compile_expr(r.expr, f"{decl.name}.{r.target}"),
                span=r.span,
            )
            for r in decl.rules
        ]
        # The key attribute must always be mapped; default to identity.
        if self.key_target is not None and not any(
            r.target.lower() == self.key_target.lower() for r in rules
        ):
            if self.key_source is None:
                raise LexpressCompileError(
                    f"mapping {self.name!r}: key target without key source"
                )
            rules.insert(
                0,
                CompiledRule(
                    self.key_target,
                    compile_expr(
                        AttrRef(self.key_source), f"{decl.name}.{self.key_target}"
                    ),
                    span=decl.span,
                ),
            )
        self.rules: tuple[CompiledRule, ...] = tuple(rules)
        if decl.partition is not None:
            self.partition: PartitionConstraint = PartitionConstraint.from_expr(
                decl.partition, f"{decl.name}.partition"
            )
        else:
            self.partition = AlwaysTrue()

    # -- analysis ------------------------------------------------------------

    @property
    def deps(self) -> frozenset[str]:
        out: set[str] = set()
        for rule in self.rules:
            out.update(rule.deps)
        return frozenset(out)

    def rules_for(self, changed: frozenset[str]) -> list[CompiledRule]:
        """Rules whose dependencies intersect *changed* source attributes."""
        return [r for r in self.rules if r.deps & changed]

    def relevant(self, descriptor: UpdateDescriptor) -> bool:
        """Does this mapping care about the descriptor at all?"""
        if descriptor.op is not UpdateOp.MODIFY:
            return True
        return bool(self.rules_for(descriptor.changed_attributes()))

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        rule: CompiledRule,
        attrs: Mapping[str, Sequence[str]],
        value=None,
        *,
        canonical: bool = False,
    ) -> list[str] | None:
        """Evaluate one rule under this mapping's engine mode."""
        return _as_values(
            run_rule(
                rule.code,
                attrs,
                value,
                mapping=self.name,
                attribute=rule.target,
                mode=self.lexpress_mode,
                canonical=canonical,
            )
        )

    def image(
        self, attrs: Mapping[str, Sequence[str]] | None
    ) -> dict[str, list[str]] | None:
        """Full target-schema image of a source record (None in, None out)."""
        if attrs is None:
            return None
        attrs = normalize_attrs(attrs) or {}
        low = lower_attrs(attrs)
        out: dict[str, list[str]] = {}
        for rule in self.rules:
            values = self.evaluate(rule, low, canonical=True)
            if values is not None:
                out[rule.target] = values
        self._key_fallback(out, attrs)
        return out

    def _key_fallback(
        self, image: dict[str, list[str]], attrs: Mapping[str, list[str]]
    ) -> None:
        """The `key src -> tgt` declaration is itself an identity
        correspondence: when no rule produced the target key (e.g. a
        transformed key rule saw only nulls), fall back to it directly."""
        if (
            self.key_target is None
            or self.key_source is None
            or _lookup(image, self.key_target.lower()) is not None
        ):
            return
        for name, values in attrs.items():
            if name.lower() == self.key_source.lower() and values:
                image[self.key_target] = [str(values[0])]
                return

    def _dual_images(
        self,
        old_attrs: dict[str, list[str]],
        new_attrs: dict[str, list[str]],
        changed: frozenset[str],
    ) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
        """Old and new target images for a modify, evaluating rules whose
        dependencies did not change only once (identical inputs produce
        identical outputs) — the payoff of dependency analysis."""
        old_n = normalize_attrs(old_attrs) or {}
        new_n = normalize_attrs(new_attrs) or {}
        old_low = lower_attrs(old_n)
        new_low = lower_attrs(new_n)
        old_image: dict[str, list[str]] = {}
        new_image: dict[str, list[str]] = {}
        for rule in self.rules:
            old_values = self.evaluate(rule, old_low, canonical=True)
            if rule.deps & changed:
                new_values = self.evaluate(rule, new_low, canonical=True)
            else:
                new_values = list(old_values) if old_values is not None else None
            if old_values is not None:
                old_image[rule.target] = old_values
            if new_values is not None:
                new_image[rule.target] = new_values
        self._key_fallback(old_image, old_n)
        self._key_fallback(new_image, new_n)
        return old_image, new_image

    def key_of(self, image: Mapping[str, Sequence[str]] | None) -> str | None:
        if image is None or self.key_target is None:
            return None
        for name, values in image.items():
            if name.lower() == self.key_target.lower() and values:
                return str(values[0])
        return None

    # -- translation ------------------------------------------------------------

    def translate(
        self,
        descriptor: UpdateDescriptor,
        extra_partition: PartitionConstraint | None = None,
        target_name: str | None = None,
    ) -> TargetUpdate | None:
        """Translate *descriptor* into an update against this mapping's target.

        Returns None when the mapping is irrelevant to the change (a modify
        that touches none of the mapped attributes).
        """
        if descriptor.source.lower() != self.source.lower():
            raise LexpressCompileError(
                f"mapping {self.name!r} translates from {self.source!r}, "
                f"got a descriptor from {descriptor.source!r}"
            )
        if not self.relevant(descriptor):
            return None

        target = target_name or self.target
        if descriptor.op is UpdateOp.MODIFY:
            old_image, new_image = self._dual_images(
                descriptor.old or {},
                descriptor.new or {},
                descriptor.changed_attributes(),
            )
        else:
            old_image = self.image(descriptor.old)
            new_image = self.image(descriptor.new)

        old_sat = self.partition.satisfied_by(old_image)
        new_sat = self.partition.satisfied_by(new_image)
        if extra_partition is not None:
            old_sat = old_sat and extra_partition.satisfied_by(old_image)
            new_sat = new_sat and extra_partition.satisfied_by(new_image)

        action = route(old_sat, new_sat)
        old_key = self.key_of(old_image)
        new_key = self.key_of(new_image)

        changed: dict[str, list[str]] = {}
        removed: list[str] = []
        if action is TargetAction.MODIFY:
            names = {n.lower() for n in (old_image or {})} | {
                n.lower() for n in (new_image or {})
            }
            for name in sorted(names):
                old_values = _lookup(old_image, name)
                new_values = _lookup(new_image, name)
                if old_values == new_values:
                    continue
                if new_values is None:
                    removed.append(_spelling(old_image, name))
                else:
                    changed[_spelling(new_image, name)] = new_values
            if not changed and not removed and old_key == new_key:
                action = TargetAction.SKIP

        conditional = self._is_conditional(descriptor, target)
        return TargetUpdate(
            action=action,
            target=target,
            key=new_key if action is not TargetAction.DELETE else old_key,
            old_key=old_key,
            key_attribute=self.key_target,
            attributes=dict(new_image or {}),
            old_attributes=dict(old_image or {}),
            changed=changed,
            removed=tuple(removed),
            conditional=conditional,
            mapping=self.name,
        )

    def _is_conditional(self, descriptor: UpdateDescriptor, target: str) -> bool:
        """Section 5.4: the update is headed back to where it came from."""
        if descriptor.origin is not None and descriptor.origin.lower() == target.lower():
            return True
        if self.originator is None:
            return False
        record = descriptor.new if descriptor.new is not None else descriptor.old
        if record is None:
            return False
        for name, values in record.items():
            if name.lower() == self.originator.lower() and values:
                return str(values[0]).lower() == target.lower()
        return False


def _lookup(image: dict[str, list[str]] | None, lower_name: str) -> list[str] | None:
    if not image:
        return None
    for name, values in image.items():
        if name.lower() == lower_name:
            return values
    return None


def _spelling(image: dict[str, list[str]] | None, lower_name: str) -> str:
    if image:
        for name in image:
            if name.lower() == lower_name:
                return name
    return lower_name


@dataclass
class MappingInstance:
    """A mapping bound to concrete repository instances.

    ``source_repo``/``target_repo`` are instance names (``pbx-west``), the
    mapping's own source/target are schema names (``pbx``).  The optional
    ``partition`` narrows the instance further (each PBX manages its own
    extension prefix)."""

    mapping: CompiledMapping
    source_repo: str
    target_repo: str
    partition: PartitionConstraint | None = None

    def translate(self, descriptor: UpdateDescriptor) -> TargetUpdate | None:
        return self.mapping.translate(
            descriptor, extra_partition=self.partition, target_name=self.target_repo
        )


def compile_description(source: str) -> dict[str, CompiledMapping]:
    """Compile a lexpress description file into its mappings by name.

    "Descriptions for new sources ... can be added dynamically (to running
    programs) by compiling them at run-time" — this function is that
    entry point."""
    description = parse(source)
    out: dict[str, CompiledMapping] = {}
    for decl in description.mappings:
        if decl.name in out:
            raise LexpressCompileError(f"duplicate mapping name {decl.name!r}")
        mapping = CompiledMapping(decl)
        mapping.source_text = source
        out[decl.name] = mapping
    return out


def compile_mapping(source: str) -> CompiledMapping:
    """Compile a description expected to hold exactly one mapping."""
    mappings = compile_description(source)
    if len(mappings) != 1:
        raise LexpressCompileError(
            f"expected exactly one mapping, found {len(mappings)}"
        )
    return next(iter(mappings.values()))
