"""Recursive-descent parser for the lexpress mapping language.

Grammar (EBNF; ``#`` comments and whitespace are trivia)::

    description  := mapping+
    mapping      := "mapping" IDENT "{" statement* "}"
    statement    := "source" IDENT ";"
                  | "target" IDENT ";"
                  | "key" IDENT "->" IDENT ";"
                  | "originator" IDENT ";"
                  | "map" IDENT "=" expr ";"
                  | "partition" "when" expr ";"
    expr         := or_expr
    or_expr      := and_expr ("or" and_expr)*
    and_expr     := not_expr ("and" not_expr)*
    not_expr     := "not" not_expr | comparison
    comparison   := primary (("==" | "!=") primary)?
    primary      := STRING | NUMBER | "null" | "true" | "false"
                  | GROUP | "value"
                  | IDENT "(" [expr ("," expr)*] ")"     # function call
                  | IDENT                                # attribute reference
                  | "match" primary "{" arm+ "}"
                  | "table" primary "{" tentry* [ "default" "=>" expr ";" ] "}"
                  | "each" IDENT "=>" expr
                  | "(" expr ")"
    arm          := (REGEX | STRING | "_") "=>" expr ";"
    tentry       := STRING "=>" expr ";"
"""

from __future__ import annotations

from .ast import (
    AttrRef,
    BoolOp,
    Call,
    Compare,
    Description,
    Each,
    Expr,
    GroupRef,
    Literal,
    MapRule,
    MappingDecl,
    Match,
    MatchArm,
    NotOp,
    Span,
    Table,
    TableEntry,
    ValueRef,
)
from .errors import LexpressSyntaxError
from .lexer import Token, TokenType, tokenize


def _span(token: Token) -> Span:
    return Span(token.line, token.column)


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- plumbing -----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> LexpressSyntaxError:
        token = self.peek()
        return LexpressSyntaxError(
            f"{message}, found {token}", token.line, token.column
        )

    def expect(self, token_type: TokenType) -> Token:
        if self.peek().type is not token_type:
            raise self.error(f"expected {token_type.value!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.peek().is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def accept(self, token_type: TokenType) -> Token | None:
        if self.peek().type is token_type:
            return self.advance()
        return None

    def accept_keyword(self, word: str) -> Token | None:
        if self.peek().is_keyword(word):
            return self.advance()
        return None

    def expect_ident(self) -> str:
        token = self.peek()
        # Allow keywords like "value"/"key" to double as attribute names
        # only when unambiguous is hard; keep it strict for clarity.
        if token.type is not TokenType.IDENT:
            raise self.error("expected identifier")
        return self.advance().text

    # -- grammar -----------------------------------------------------------

    def parse_description(self) -> Description:
        mappings = []
        while not self.accept(TokenType.EOF) and self.peek().type is not TokenType.EOF:
            mappings.append(self.parse_mapping())
        if not mappings:
            raise LexpressSyntaxError("empty description: expected 'mapping'")
        return Description(tuple(mappings))

    def parse_mapping(self) -> MappingDecl:
        mapping_token = self.expect_keyword("mapping")
        name = self.expect_ident()
        self.expect(TokenType.LBRACE)

        source = target = None
        key_source = key_target = None
        originator = None
        rules: list[MapRule] = []
        partition: Expr | None = None
        partition_span: Span | None = None
        seen_targets: set[str] = set()

        while not self.accept(TokenType.RBRACE):
            token = self.peek()
            if token.is_keyword("source"):
                self.advance()
                source = self.expect_ident()
                self.expect(TokenType.SEMI)
            elif token.is_keyword("target"):
                self.advance()
                target = self.expect_ident()
                self.expect(TokenType.SEMI)
            elif token.is_keyword("key"):
                self.advance()
                key_source = self.expect_ident()
                self.expect(TokenType.MAPSTO)
                key_target = self.expect_ident()
                self.expect(TokenType.SEMI)
            elif token.is_keyword("originator"):
                self.advance()
                originator = self.expect_ident()
                self.expect(TokenType.SEMI)
            elif token.is_keyword("map"):
                self.advance()
                rule_target = self.expect_ident()
                if rule_target.lower() in seen_targets:
                    raise LexpressSyntaxError(
                        f"duplicate map rule for {rule_target!r} in mapping {name!r}",
                        token.line,
                        token.column,
                    )
                seen_targets.add(rule_target.lower())
                self.expect(TokenType.ASSIGN)
                expr = self.parse_expr()
                self.expect(TokenType.SEMI)
                rules.append(MapRule(rule_target, expr, span=_span(token)))
            elif token.is_keyword("partition"):
                self.advance()
                self.expect_keyword("when")
                partition = self.parse_expr()
                partition_span = _span(token)
                self.expect(TokenType.SEMI)
            else:
                raise self.error("expected a mapping statement")

        if source is None or target is None:
            raise LexpressSyntaxError(
                f"mapping {name!r} must declare both 'source' and 'target'"
            )
        return MappingDecl(
            name=name,
            source=source,
            target=target,
            key_source=key_source,
            key_target=key_target,
            originator=originator,
            rules=tuple(rules),
            partition=partition,
            span=_span(mapping_token),
            partition_span=partition_span,
        )

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = BoolOp("or", left, self.parse_and(), span=left.span)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = BoolOp("and", left, self.parse_not(), span=left.span)
        return left

    def parse_not(self) -> Expr:
        token = self.peek()
        if self.accept_keyword("not"):
            return NotOp(self.parse_not(), span=_span(token))
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_primary()
        if self.accept(TokenType.EQEQ):
            return Compare("==", left, self.parse_primary(), span=left.span)
        if self.accept(TokenType.NEQ):
            return Compare("!=", left, self.parse_primary(), span=left.span)
        return left

    def parse_primary(self) -> Expr:
        token = self.peek()
        span = _span(token)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.text, span=span)
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.text, span=span)
        if token.is_keyword("null"):
            self.advance()
            return Literal(None, span=span)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True, span=span)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False, span=span)
        if token.type is TokenType.GROUP:
            self.advance()
            return GroupRef(int(token.text), span=span)
        if token.is_keyword("value"):
            self.advance()
            return ValueRef(span=span)
        if token.is_keyword("match"):
            return self.parse_match()
        if token.is_keyword("table"):
            return self.parse_table()
        if token.is_keyword("each"):
            return self.parse_each()
        if token.type is TokenType.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENT:
            self.advance()
            if self.peek().type is TokenType.LPAREN:
                return self.parse_call(token.text, span)
            return AttrRef(token.text, span=span)
        raise self.error("expected an expression")

    def parse_call(self, function: str, span: Span | None = None) -> Expr:
        self.expect(TokenType.LPAREN)
        args: list[Expr] = []
        if self.peek().type is not TokenType.RPAREN:
            args.append(self.parse_expr())
            while self.accept(TokenType.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenType.RPAREN)
        return Call(function, tuple(args), span=span)

    def parse_match(self) -> Expr:
        match_token = self.expect_keyword("match")
        subject = self.parse_primary()
        self.expect(TokenType.LBRACE)
        arms: list[MatchArm] = []
        saw_wildcard = False
        while not self.accept(TokenType.RBRACE):
            token = self.peek()
            if token.type is TokenType.REGEX:
                self.advance()
                pattern: str | None = token.text
                literal = False
            elif token.type is TokenType.STRING:
                self.advance()
                pattern = token.text
                literal = True
            elif token.type is TokenType.UNDERSCORE:
                self.advance()
                pattern = None
                literal = False
                saw_wildcard = True
            else:
                raise self.error("expected a regex, string, or '_' pattern")
            self.expect(TokenType.ARROW)
            body = self.parse_expr()
            self.expect(TokenType.SEMI)
            arms.append(MatchArm(pattern, body, literal, span=_span(token)))
            if saw_wildcard and self.peek().type is not TokenType.RBRACE:
                raise self.error("'_' must be the last match arm")
        if not arms:
            raise self.error("match expression needs at least one arm")
        return Match(subject, tuple(arms), span=_span(match_token))

    def parse_table(self) -> Expr:
        table_token = self.expect_keyword("table")
        subject = self.parse_primary()
        self.expect(TokenType.LBRACE)
        entries: list[TableEntry] = []
        default: Expr | None = None
        while not self.accept(TokenType.RBRACE):
            if self.accept_keyword("default"):
                self.expect(TokenType.ARROW)
                default = self.parse_expr()
                self.expect(TokenType.SEMI)
                if self.peek().type is not TokenType.RBRACE:
                    raise self.error("'default' must be the last table entry")
                continue
            key_token = self.expect(TokenType.STRING)
            self.expect(TokenType.ARROW)
            body = self.parse_expr()
            self.expect(TokenType.SEMI)
            entries.append(TableEntry(key_token.text, body, span=_span(key_token)))
        return Table(subject, tuple(entries), default, span=_span(table_token))

    def parse_each(self) -> Expr:
        each_token = self.expect_keyword("each")
        attribute = self.expect_ident()
        self.expect(TokenType.ARROW)
        body = self.parse_expr()
        return Each(attribute, body, span=_span(each_token))


def parse(source: str) -> Description:
    """Parse lexpress source text into a :class:`Description`."""
    return Parser(tokenize(source)).parse_description()
