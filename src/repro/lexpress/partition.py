"""Partitioning constraints and update routing.

Paper section 4.2: "when a particular PBX accepts updates for phone
numbers beginning with '+1 908-582-9', lexpress checks the old phone
number for the object to determine that the object was stored in the PBX
and the new attributes for the object to determine that the object is
still stored in the PBX.  Depending on the combination of constraint
satisfaction by the old and new attributes, different operations are done
on the target directory."

The decision matrix implemented by :func:`route`:

==========  ==========  =================
old image   new image   action at target
==========  ==========  =================
violates    satisfies   ADD    (migrated in)
satisfies   satisfies   MODIFY
satisfies   violates    DELETE (migrated out)
violates    violates    SKIP   (never ours)
==========  ==========  =================
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .ast import Expr
from .bytecode import CodeObject
from .compiler import compile_expr
from .descriptor import TargetAction
from .interpreter import execute, truthy
from .lexer import tokenize
from .parser import Parser


def route(old_satisfies: bool, new_satisfies: bool) -> TargetAction:
    """The section-4.2 routing matrix."""
    if new_satisfies:
        return TargetAction.MODIFY if old_satisfies else TargetAction.ADD
    if old_satisfies:
        return TargetAction.DELETE
    return TargetAction.SKIP


class PartitionConstraint:
    """A compiled predicate over a target-schema attribute image."""

    def __init__(self, code: CodeObject, source: str = ""):
        self.code = code
        self.source = source

    @classmethod
    def compile(cls, expression: str) -> "PartitionConstraint":
        """Compile a lexpress expression, e.g.
        ``prefix(Extension, "41")`` or
        ``prefix(telephoneNumber, "+1 908 582 9") and present(cn)``."""
        parser = Parser(tokenize(expression))
        expr = parser.parse_expr()
        from .lexer import TokenType

        if parser.peek().type is not TokenType.EOF:
            raise parser.error("trailing input after partition expression")
        return cls(compile_expr(expr, f"partition:{expression}"), expression)

    @classmethod
    def from_expr(cls, expr: Expr, name: str = "partition") -> "PartitionConstraint":
        return cls(compile_expr(expr, name))

    @property
    def deps(self) -> frozenset[str]:
        return self.code.deps

    def satisfied_by(self, attrs: Mapping[str, Sequence[str]] | None) -> bool:
        """Evaluate against an attribute image; a missing image never
        satisfies (the object does not exist on that side)."""
        if attrs is None:
            return False
        return truthy(execute(self.code, attrs))

    def __repr__(self) -> str:
        return f"PartitionConstraint({self.source or self.code.name!r})"


class AlwaysTrue(PartitionConstraint):
    """Degenerate constraint for unpartitioned targets: any existing image
    satisfies it, so the routing matrix reduces to the descriptor's own
    operation kind."""

    def __init__(self) -> None:  # no code object needed
        self.code = CodeObject("partition:always")
        self.source = "true"

    @property
    def deps(self) -> frozenset[str]:
        return frozenset()

    def satisfied_by(self, attrs: Mapping[str, Sequence[str]] | None) -> bool:
        return attrs is not None
