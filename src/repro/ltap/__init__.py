"""LTAP — the Lightweight Trigger Access Process.

A gateway that "pretends to be an LDAP server" and adds the active
functionality LDAP lacks: triggers, per-entry locking, persistent
connections to trigger action servers, and a quiesce facility for isolated
synchronization sequences (paper sections 4.3 and 5.1).
"""

from .acl import AccessControl, AclRule, Rights, Subject
from .connection import (
    ActionConnection,
    ConnectionClosedError,
    ConnectionManager,
    PersistentConnection,
    SingleShotConnection,
)
from .gateway import SUPPRESS_TRIGGERS, LtapGateway, Quiesce
from .locks import EntryLock, LockManager
from .triggers import (
    ALL_OPS,
    Trigger,
    TriggerEvent,
    TriggerRegistry,
    TriggerTiming,
)

__all__ = [
    "ALL_OPS",
    "AccessControl",
    "AclRule",
    "Rights",
    "Subject",
    "ActionConnection",
    "ConnectionClosedError",
    "ConnectionManager",
    "EntryLock",
    "LockManager",
    "LtapGateway",
    "PersistentConnection",
    "Quiesce",
    "SUPPRESS_TRIGGERS",
    "SingleShotConnection",
    "Trigger",
    "TriggerEvent",
    "TriggerRegistry",
    "TriggerTiming",
]
