"""Access control for the LTAP gateway.

The paper (section 7): "the current system uses a very simple security
mechanism (based on the security model of LTAP).  As future work, we would
like to investigate more sophisticated security models."  This module is
that investigation: ordered allow/deny rules evaluated first-match-wins,
with subject classes (anonymous / authenticated / self / a specific bind
DN / members of a subtree), subtree scoping, per-attribute write grants,
and separate read/write rights.

Typical policy for a MetaComm deployment::

    acl = AccessControl(default_allow=False)
    acl.allow(Subject.ANYONE, rights=Rights.READ)              # reads open
    acl.allow("cn=Directory Manager", rights=Rights.ALL)       # root
    acl.allow(Subject.SELF, rights=Rights.WRITE,
              attributes=("telephoneNumber", "definityRoom"))  # self-service
    acl.allow(subject_subtree="ou=helpdesk,o=Lucent",
              rights=Rights.WRITE, base="o=Lucent")            # operators
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from ..ldap.dn import DN
from ..ldap.protocol import (
    AddRequest,
    DeleteRequest,
    LdapRequest,
    ModifyRdnRequest,
    ModifyRequest,
    SearchRequest,
    CompareRequest,
    Session,
)
from ..ldap.result import LdapError, ResultCode


class Rights(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    ALL = READ | WRITE


class Subject(enum.Enum):
    """Subject classes a rule can name."""

    ANYONE = "anyone"
    ANONYMOUS = "anonymous"
    AUTHENTICATED = "authenticated"
    #: The bind DN equals the target entry's DN (self-service writes).
    SELF = "self"


@dataclass(frozen=True)
class AclRule:
    """One ordered rule; the first matching rule decides."""

    allow: bool
    rights: Rights
    subject: Subject | DN = Subject.ANYONE
    #: Bind DNs under this subtree match (e.g. a helpdesk OU).
    subject_subtree: DN | None = None
    #: Targets under this base match (root = everything).
    base: DN = field(default_factory=DN.root)
    #: For WRITE rules: attribute names this rule governs (lower-case);
    #: None = all attributes.
    attributes: frozenset[str] | None = None

    def matches_subject(self, session: Session, target: DN) -> bool:
        if self.subject_subtree is not None:
            return (
                session.bound_dn is not None
                and session.bound_dn.is_under(self.subject_subtree)
            )
        if isinstance(self.subject, DN):
            return session.bound_dn == self.subject
        if self.subject is Subject.ANYONE:
            return True
        if self.subject is Subject.ANONYMOUS:
            return session.bound_dn is None
        if self.subject is Subject.AUTHENTICATED:
            return session.bound_dn is not None
        if self.subject is Subject.SELF:
            return session.bound_dn is not None and session.bound_dn == target
        return False

    def matches_target(self, target: DN) -> bool:
        return self.base.is_root() or target.is_under(self.base)

    def covers_attributes(self, touched: frozenset[str]) -> bool:
        if self.attributes is None:
            return True
        return touched <= self.attributes


class AccessControl:
    """An ordered rule list with a default decision."""

    def __init__(self, default_allow: bool = False):
        self.default_allow = default_allow
        self.rules: list[AclRule] = []
        self.statistics = {"allowed": 0, "denied": 0}

    # -- policy building -----------------------------------------------------

    def add_rule(self, rule: AclRule) -> AclRule:
        self.rules.append(rule)
        return rule

    def allow(
        self,
        subject: Subject | DN | str = Subject.ANYONE,
        rights: Rights = Rights.READ,
        base: DN | str = "",
        attributes: Iterable[str] | None = None,
        subject_subtree: DN | str | None = None,
    ) -> AclRule:
        return self.add_rule(self._rule(True, subject, rights, base, attributes, subject_subtree))

    def deny(
        self,
        subject: Subject | DN | str = Subject.ANYONE,
        rights: Rights = Rights.ALL,
        base: DN | str = "",
        attributes: Iterable[str] | None = None,
        subject_subtree: DN | str | None = None,
    ) -> AclRule:
        return self.add_rule(self._rule(False, subject, rights, base, attributes, subject_subtree))

    @staticmethod
    def _rule(allow, subject, rights, base, attributes, subject_subtree) -> AclRule:
        if isinstance(subject, str):
            subject = DN.parse(subject)
        if isinstance(base, str):
            base = DN.parse(base)
        if isinstance(subject_subtree, str):
            subject_subtree = DN.parse(subject_subtree)
        attrs = (
            frozenset(a.lower() for a in attributes)
            if attributes is not None
            else None
        )
        return AclRule(
            allow=allow,
            rights=rights,
            subject=subject,
            subject_subtree=subject_subtree,
            base=base,
            attributes=attrs,
        )

    # -- decisions ----------------------------------------------------------------

    def decide(
        self,
        session: Session,
        right: Rights,
        target: DN,
        touched: frozenset[str] = frozenset(),
    ) -> bool:
        for rule in self.rules:
            if not rule.rights & right:
                continue
            if not rule.matches_subject(session, target):
                continue
            if not rule.matches_target(target):
                continue
            if right is Rights.WRITE and not rule.covers_attributes(touched):
                continue
            self.statistics["allowed" if rule.allow else "denied"] += 1
            return rule.allow
        self.statistics["allowed" if self.default_allow else "denied"] += 1
        return self.default_allow

    def check_request(self, request: LdapRequest, session: Session) -> None:
        """Raise ``insufficientAccessRights`` when the request is denied."""
        if isinstance(request, (SearchRequest, CompareRequest)):
            target = request.base if isinstance(request, SearchRequest) else request.dn
            if not self.decide(session, Rights.READ, target):
                raise LdapError(
                    ResultCode.INSUFFICIENT_ACCESS_RIGHTS,
                    f"read access to {target} denied",
                )
            return
        if isinstance(request, AddRequest):
            target = request.entry.dn
            touched = frozenset(n.lower() for n in request.entry.attributes.names())
        elif isinstance(request, ModifyRequest):
            target = request.dn
            touched = frozenset(m.attribute.lower() for m in request.modifications)
        elif isinstance(request, DeleteRequest):
            target, touched = request.dn, frozenset()
        elif isinstance(request, ModifyRdnRequest):
            target = request.dn
            touched = frozenset(a.lower() for a, _ in request.new_rdn.items())
        else:
            return
        if not self.decide(session, Rights.WRITE, target, touched):
            raise LdapError(
                ResultCode.INSUFFICIENT_ACCESS_RIGHTS,
                f"write access to {target} denied"
                + (f" (attributes: {', '.join(sorted(touched))})" if touched else ""),
            )
