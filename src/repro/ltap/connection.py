"""Connections from LTAP to a trigger action server.

Section 5.1 of the paper: "LTAP originally only allowed a single update per
connection from LTAP to a trigger action server (e.g. UM), but to
differentiate synchronization requests from individual updates, persistent
connections were added which allow a sequence of updates."

A :class:`SingleShotConnection` carries exactly one event; a
:class:`PersistentConnection` carries a whole sequence (a synchronization
request) and signals its extent with explicit close.  The Update Manager
uses the connection kind to decide whether it is looking at an individual
update or at a sync batch that must be applied in isolation.
"""

from __future__ import annotations

import itertools
from typing import Callable

from .triggers import TriggerEvent

_connection_ids = itertools.count(1)

EventSink = Callable[[TriggerEvent, "ActionConnection"], None]


class ConnectionClosedError(RuntimeError):
    pass


class ActionConnection:
    """Base class: a channel delivering trigger events to an action server."""

    persistent = False

    def __init__(self, sink: EventSink):
        self.connection_id = next(_connection_ids)
        self._sink = sink
        self.closed = False
        self.events_sent = 0

    def send(self, event: TriggerEvent) -> None:
        if self.closed:
            raise ConnectionClosedError(
                f"connection {self.connection_id} is closed"
            )
        self._deliver(event)

    def _deliver(self, event: TriggerEvent) -> None:
        self.events_sent += 1
        self._sink(event, self)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "ActionConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.closed:
            self.close()


class SingleShotConnection(ActionConnection):
    """The original LTAP behaviour: one update per connection."""

    persistent = False

    def send(self, event: TriggerEvent) -> None:
        if self.closed:
            raise ConnectionClosedError(
                f"connection {self.connection_id} is closed"
            )
        if self.events_sent >= 1:
            raise ConnectionClosedError(
                "single-shot connections carry exactly one update"
            )
        self._deliver(event)
        self.close()


class PersistentConnection(ActionConnection):
    """The section-5.1 extension: a sequence of updates on one connection."""

    persistent = True


class ConnectionManager:
    """Opens connections toward one action server and tracks statistics."""

    def __init__(self, sink: EventSink):
        self._sink = sink
        self.statistics = {"single_shot": 0, "persistent": 0, "events": 0}

    def _counting_sink(self, event: TriggerEvent, conn: ActionConnection) -> None:
        self.statistics["events"] += 1
        self._sink(event, conn)

    def open(self, persistent: bool = False) -> ActionConnection:
        if persistent:
            self.statistics["persistent"] += 1
            return PersistentConnection(self._counting_sink)
        self.statistics["single_shot"] += 1
        return SingleShotConnection(self._counting_sink)
