"""The LTAP gateway.

"LTAP works as a gateway that pretends to be an LDAP server — LDAP
commands intended for the LDAP server are intercepted by LTAP which does
trigger processing in addition to servicing the original LDAP command."
(paper section 4.3.)

The gateway implements the same handler interface as
:class:`~repro.ldap.server.LdapServer`, so any client — the WBA, an
off-the-shelf browser, the Update Manager's own filters — can be pointed
at it transparently.  For each update it:

1. waits out a quiesce (unless the session owns it) — section 5.1's
   isolation facility for synchronization requests;
2. acquires the per-entry lock on behalf of the client session;
3. fires BEFORE triggers (which may veto);
4. forwards the operation to the real server;
5. fires AFTER triggers — in MetaComm this is the hook that drives the
   Update Manager — while still holding the lock;
6. releases the lock.

Read operations are forwarded without trigger processing.  In *gateway*
mode that is the end of the story: the UM machine does no read work, the
scalability argument of section 5.5.  In *library* mode (LTAP bound into
the UM process) every read also costs the UM a unit of work, modelled by
the ``read_tax`` callback.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..ldap.backend import ChangeType
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapRequest,
    LdapResponse,
    LdapResult,
    ModifyRdnRequest,
    ModifyRequest,
    SearchRequest,
    Session,
    UnbindRequest,
)
from ..ldap.result import BusyError, LdapError, ResultCode
from ..ldap.server import LdapServer
from ..obs.metrics import MetricsRegistry
from ..obs.trace import OBS_TRACE, Trace, Tracer, trace_span
from ..obs.views import StatsView
from .acl import AccessControl
from .locks import LockManager
from .triggers import Trigger, TriggerEvent, TriggerRegistry, TriggerTiming

_READ_REQUESTS = (SearchRequest, CompareRequest, BindRequest, UnbindRequest)

#: Session-state key: when true, triggers are not fired for this session's
#: updates (used by internal bookkeeping writers, never by device paths).
SUPPRESS_TRIGGERS = "ltap.suppress_triggers"


class Quiesce:
    """Context manager handle for a quiesce period (see section 5.1)."""

    def __init__(self, gateway: "LtapGateway", owner: Session):
        self.gateway = gateway
        self.owner = owner

    def __enter__(self) -> "Quiesce":
        return self

    def __exit__(self, *exc_info) -> None:
        self.gateway.release_quiesce(self.owner)


class LtapGateway:
    """A trigger-adding proxy in front of an LDAP server."""

    def __init__(
        self,
        server: LdapServer,
        lock_timeout: float = 5.0,
        library_mode: bool = False,
        read_tax: Callable[[], None] | None = None,
        access_control: "AccessControl | None" = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.server = server
        #: Optional section-7 security model (see :mod:`repro.ltap.acl`).
        self.access_control = access_control
        self.locks = LockManager(default_timeout=lock_timeout)
        self.triggers = TriggerRegistry()
        self.library_mode = library_mode
        self.read_tax = read_tax
        self.tracer = tracer
        #: Optional admission hook, called with ``(request, session)``
        #: before any lock or directory write.  Raising
        #: :class:`~repro.ldap.result.ServerBusyError` turns the update
        #: away with a typed busy result — the top of the backpressure
        #: chain that starts at the device links (docs/DEVICE_LINKS.md).
        self.admission: Callable[[LdapRequest, Session], None] | None = None
        self._quiesce_lock = threading.Condition()
        self._quiesce_owner: Session | None = None
        registry = registry if registry is not None else MetricsRegistry()
        self._requests = registry.counter(
            "metacomm_ltap_requests_total",
            "LDAP requests intercepted by the LTAP gateway",
            labelnames=("kind",),
        )
        self._rejected = registry.counter(
            "metacomm_ltap_updates_rejected_total",
            "Updates rejected by LTAP (veto, lock timeout, server error)",
        )
        self._quiesce_waits = registry.counter(
            "metacomm_ltap_quiesce_waits_total",
            "Updates turned away while a synchronization quiesce was held",
        )
        self._busy = registry.counter(
            "metacomm_ltap_busy_total",
            "Updates turned away with ServerBusy by admission control",
        )
        self._trigger_fires = registry.counter(
            "metacomm_ltap_trigger_fires_total",
            "Trigger-processing passes run by the gateway",
            labelnames=("timing",),
        )
        self._process_seconds = registry.histogram(
            "metacomm_ltap_process_seconds",
            "End-to-end latency of one update through the gateway "
            "(locks, triggers, server forward, the whole UM sequence)",
        )
        self.statistics = StatsView(
            {
                "reads_forwarded": lambda: self._requests.value_for(
                    kind="read"
                ),
                "updates_processed": lambda: self._requests.value_for(
                    kind="update"
                ),
                "updates_rejected": lambda: self._rejected.value,
                "quiesce_waits": lambda: self._quiesce_waits.value,
                "busy_rejected": lambda: self._busy.value,
            }
        )

    # -- trigger management -----------------------------------------------

    def register_trigger(self, trigger: Trigger) -> Trigger:
        return self.triggers.register(trigger)

    def unregister_trigger(self, name: str) -> None:
        self.triggers.unregister(name)

    # -- quiesce ------------------------------------------------------------

    def quiesce(self, owner: Session, timeout: float = 5.0) -> Quiesce:
        """Block all updates except *owner*'s until the handle is exited."""
        with self._quiesce_lock:
            deadline = None
            while self._quiesce_owner is not None and self._quiesce_owner is not owner:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + timeout
                if now >= deadline:
                    raise BusyError("another quiesce is in progress")
                self._quiesce_lock.wait(deadline - now)
            self._quiesce_owner = owner
        return Quiesce(self, owner)

    def release_quiesce(self, owner: Session) -> None:
        with self._quiesce_lock:
            if self._quiesce_owner is not owner:
                raise RuntimeError("quiesce not held by this session")
            self._quiesce_owner = None
            self._quiesce_lock.notify_all()

    @property
    def quiesced(self) -> bool:
        # Advisory status probe: a single reference read is atomic, and
        # the authoritative check (_check_quiesce) retakes the condition.
        return self._quiesce_owner is not None  # lexcheck: ignore[LX503]

    def _check_quiesce(self, session: Session) -> None:
        with self._quiesce_lock:
            if self._quiesce_owner is not None and self._quiesce_owner is not session:
                self._quiesce_waits.inc()
                raise BusyError(
                    "directory updates are quiesced while a synchronization "
                    "request is being processed"
                )

    # -- handler interface ------------------------------------------------------

    def process(
        self, request: LdapRequest, session: Session | None = None
    ) -> LdapResponse:
        session = session or Session()
        if isinstance(request, _READ_REQUESTS):
            if self.access_control is not None and isinstance(
                request, (SearchRequest, CompareRequest)
            ):
                try:
                    self.access_control.check_request(request, session)
                except LdapError as exc:
                    return LdapResponse(
                        LdapResult(exc.code, exc.matched_dn, exc.message)
                    )
            self._requests.labels(kind="read").inc()
            if self.library_mode and self.read_tax is not None:
                self.read_tax()
            return self.server.process(request, session)
        try:
            if self.access_control is not None:
                self.access_control.check_request(request, session)
            return self._process_update(request, session)
        except LdapError as exc:
            self._rejected.inc()
            return LdapResponse(LdapResult(exc.code, exc.matched_dn, exc.message))

    def _process_update(self, request: LdapRequest, session: Session) -> LdapResponse:
        self._check_quiesce(session)
        if (
            self.admission is not None
            and not session.state.get(SUPPRESS_TRIGGERS)
            and session.state.get("metacomm.origin") is None
        ):
            # Admission runs before any lock or directory write, so a busy
            # rejection leaves nothing behind to lose or compensate.
            # Internal writers bypass: supplemental writes (suppressed
            # triggers) and DDU forwards (origin-stamped sessions) carry
            # updates the system already accepted.
            try:
                self.admission(request, session)
            except BusyError:
                self._busy.inc()
                raise
        change_type, dn = self._classify(request)
        trace, owns_trace = self._begin_trace(session, change_type, dn)
        start = time.perf_counter()
        try:
            self.locks.acquire(dn, session)
            try:
                before = self._snapshot(dn)
                fire = not session.state.get(SUPPRESS_TRIGGERS)
                if fire:
                    self._trigger_fires.labels(timing="before").inc()
                    with trace_span(trace, "ltap.trigger", timing="before"):
                        self.triggers.fire(
                            TriggerEvent(
                                change_type, dn, request, before, None, session,
                                TriggerTiming.BEFORE,
                            )
                        )
                with trace_span(trace, "ltap.server"):
                    response = self.server.process(request, session)
                if not response.result.ok:
                    return response
                self._requests.labels(kind="update").inc()
                after_dn = self._result_dn(request, dn)
                after = self._snapshot(after_dn)
                if fire:
                    self._trigger_fires.labels(timing="after").inc()
                    with trace_span(trace, "ltap.trigger", timing="after"):
                        self.triggers.fire(
                            TriggerEvent(
                                change_type, dn, request, before, after, session,
                                TriggerTiming.AFTER,
                            )
                        )
                return response
            finally:
                self.locks.release(dn, session)
        finally:
            self._process_seconds.observe(time.perf_counter() - start)
            if owns_trace:
                session.state.pop(OBS_TRACE, None)
                trace.finish()

    def _begin_trace(
        self, session: Session, change_type: ChangeType, dn: DN
    ) -> tuple["Trace | None", bool]:
        """Start (or join) the trace following this update sequence.

        A fresh trace is opened for a triggering update and stamped into
        the session, where the Update Manager finds it.  Re-entrant writes
        on the same session — the supplemental LDAP write, a forwarded DDU
        — join the existing trace so the whole journey is one record.
        Suppressed-trigger writes never open traces of their own."""
        if self.tracer is None:
            return None, False
        trace = session.state.get(OBS_TRACE)
        if trace is not None:
            return trace, False
        if session.state.get(SUPPRESS_TRIGGERS):
            return None, False
        trace = self.tracer.start("update", op=change_type.value, dn=str(dn))
        if trace is None:
            return None, False
        session.state[OBS_TRACE] = trace
        return trace, True

    @staticmethod
    def _classify(request: LdapRequest) -> tuple[ChangeType, DN]:
        if isinstance(request, AddRequest):
            return ChangeType.ADD, request.entry.dn
        if isinstance(request, DeleteRequest):
            return ChangeType.DELETE, request.dn
        if isinstance(request, ModifyRequest):
            return ChangeType.MODIFY, request.dn
        if isinstance(request, ModifyRdnRequest):
            return ChangeType.MODIFY_RDN, request.dn
        raise LdapError(
            ResultCode.PROTOCOL_ERROR, f"unknown request {type(request).__name__}"
        )

    @staticmethod
    def _result_dn(request: LdapRequest, dn: DN) -> DN:
        if isinstance(request, ModifyRdnRequest):
            return dn.parent().child(request.new_rdn)
        return dn

    def _snapshot(self, dn: DN) -> Entry | None:
        try:
            return self.server.backend.get(dn)
        except LdapError:
            return None
