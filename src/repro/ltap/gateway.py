"""The LTAP gateway.

"LTAP works as a gateway that pretends to be an LDAP server — LDAP
commands intended for the LDAP server are intercepted by LTAP which does
trigger processing in addition to servicing the original LDAP command."
(paper section 4.3.)

The gateway implements the same handler interface as
:class:`~repro.ldap.server.LdapServer`, so any client — the WBA, an
off-the-shelf browser, the Update Manager's own filters — can be pointed
at it transparently.  For each update it:

1. waits out a quiesce (unless the session owns it) — section 5.1's
   isolation facility for synchronization requests;
2. acquires the per-entry lock on behalf of the client session;
3. fires BEFORE triggers (which may veto);
4. forwards the operation to the real server;
5. fires AFTER triggers — in MetaComm this is the hook that drives the
   Update Manager — while still holding the lock;
6. releases the lock.

Read operations are forwarded without trigger processing.  In *gateway*
mode that is the end of the story: the UM machine does no read work, the
scalability argument of section 5.5.  In *library* mode (LTAP bound into
the UM process) every read also costs the UM a unit of work, modelled by
the ``read_tax`` callback.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..ldap.backend import ChangeType
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.protocol import (
    AddRequest,
    BindRequest,
    CompareRequest,
    DeleteRequest,
    LdapRequest,
    LdapResponse,
    LdapResult,
    ModifyRdnRequest,
    ModifyRequest,
    SearchRequest,
    Session,
    UnbindRequest,
)
from ..ldap.result import BusyError, LdapError, ResultCode
from ..ldap.server import LdapServer
from .acl import AccessControl
from .locks import LockManager
from .triggers import Trigger, TriggerEvent, TriggerRegistry, TriggerTiming

_READ_REQUESTS = (SearchRequest, CompareRequest, BindRequest, UnbindRequest)

#: Session-state key: when true, triggers are not fired for this session's
#: updates (used by internal bookkeeping writers, never by device paths).
SUPPRESS_TRIGGERS = "ltap.suppress_triggers"


class Quiesce:
    """Context manager handle for a quiesce period (see section 5.1)."""

    def __init__(self, gateway: "LtapGateway", owner: Session):
        self.gateway = gateway
        self.owner = owner

    def __enter__(self) -> "Quiesce":
        return self

    def __exit__(self, *exc_info) -> None:
        self.gateway.release_quiesce(self.owner)


class LtapGateway:
    """A trigger-adding proxy in front of an LDAP server."""

    def __init__(
        self,
        server: LdapServer,
        lock_timeout: float = 5.0,
        library_mode: bool = False,
        read_tax: Callable[[], None] | None = None,
        access_control: "AccessControl | None" = None,
    ):
        self.server = server
        #: Optional section-7 security model (see :mod:`repro.ltap.acl`).
        self.access_control = access_control
        self.locks = LockManager(default_timeout=lock_timeout)
        self.triggers = TriggerRegistry()
        self.library_mode = library_mode
        self.read_tax = read_tax
        self._quiesce_lock = threading.Condition()
        self._quiesce_owner: Session | None = None
        self.statistics = {
            "reads_forwarded": 0,
            "updates_processed": 0,
            "updates_rejected": 0,
            "quiesce_waits": 0,
        }

    # -- trigger management -----------------------------------------------

    def register_trigger(self, trigger: Trigger) -> Trigger:
        return self.triggers.register(trigger)

    def unregister_trigger(self, name: str) -> None:
        self.triggers.unregister(name)

    # -- quiesce ------------------------------------------------------------

    def quiesce(self, owner: Session, timeout: float = 5.0) -> Quiesce:
        """Block all updates except *owner*'s until the handle is exited."""
        with self._quiesce_lock:
            deadline = None
            while self._quiesce_owner is not None and self._quiesce_owner is not owner:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + timeout
                if now >= deadline:
                    raise BusyError("another quiesce is in progress")
                self._quiesce_lock.wait(deadline - now)
            self._quiesce_owner = owner
        return Quiesce(self, owner)

    def release_quiesce(self, owner: Session) -> None:
        with self._quiesce_lock:
            if self._quiesce_owner is not owner:
                raise RuntimeError("quiesce not held by this session")
            self._quiesce_owner = None
            self._quiesce_lock.notify_all()

    @property
    def quiesced(self) -> bool:
        return self._quiesce_owner is not None

    def _check_quiesce(self, session: Session) -> None:
        with self._quiesce_lock:
            if self._quiesce_owner is not None and self._quiesce_owner is not session:
                self.statistics["quiesce_waits"] += 1
                raise BusyError(
                    "directory updates are quiesced while a synchronization "
                    "request is being processed"
                )

    # -- handler interface ------------------------------------------------------

    def process(
        self, request: LdapRequest, session: Session | None = None
    ) -> LdapResponse:
        session = session or Session()
        if isinstance(request, _READ_REQUESTS):
            if self.access_control is not None and isinstance(
                request, (SearchRequest, CompareRequest)
            ):
                try:
                    self.access_control.check_request(request, session)
                except LdapError as exc:
                    return LdapResponse(
                        LdapResult(exc.code, exc.matched_dn, exc.message)
                    )
            self.statistics["reads_forwarded"] += 1
            if self.library_mode and self.read_tax is not None:
                self.read_tax()
            return self.server.process(request, session)
        try:
            if self.access_control is not None:
                self.access_control.check_request(request, session)
            return self._process_update(request, session)
        except LdapError as exc:
            self.statistics["updates_rejected"] += 1
            return LdapResponse(LdapResult(exc.code, exc.matched_dn, exc.message))

    def _process_update(self, request: LdapRequest, session: Session) -> LdapResponse:
        self._check_quiesce(session)
        change_type, dn = self._classify(request)
        self.locks.acquire(dn, session)
        try:
            before = self._snapshot(dn)
            fire = not session.state.get(SUPPRESS_TRIGGERS)
            if fire:
                self.triggers.fire(
                    TriggerEvent(
                        change_type, dn, request, before, None, session,
                        TriggerTiming.BEFORE,
                    )
                )
            response = self.server.process(request, session)
            if not response.result.ok:
                return response
            self.statistics["updates_processed"] += 1
            after_dn = self._result_dn(request, dn)
            after = self._snapshot(after_dn)
            if fire:
                self.triggers.fire(
                    TriggerEvent(
                        change_type, dn, request, before, after, session,
                        TriggerTiming.AFTER,
                    )
                )
            return response
        finally:
            self.locks.release(dn, session)

    @staticmethod
    def _classify(request: LdapRequest) -> tuple[ChangeType, DN]:
        if isinstance(request, AddRequest):
            return ChangeType.ADD, request.entry.dn
        if isinstance(request, DeleteRequest):
            return ChangeType.DELETE, request.dn
        if isinstance(request, ModifyRequest):
            return ChangeType.MODIFY, request.dn
        if isinstance(request, ModifyRdnRequest):
            return ChangeType.MODIFY_RDN, request.dn
        raise LdapError(
            ResultCode.PROTOCOL_ERROR, f"unknown request {type(request).__name__}"
        )

    @staticmethod
    def _result_dn(request: LdapRequest, dn: DN) -> DN:
        if isinstance(request, ModifyRdnRequest):
            return dn.parent().child(request.new_rdn)
        return dn

    def _snapshot(self, dn: DN) -> Entry | None:
        try:
            return self.server.backend.get(dn)
        except LdapError:
            return None
