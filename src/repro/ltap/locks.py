"""Entry-level locking for the LTAP gateway.

The paper (section 4.3): "LTAP also provides locking facilities, forbidding
updates to an entry while trigger processing is being performed on that
entry."  Locks are:

* **per normalized DN** — independent entries never contend;
* **owner re-entrant** — the Update Manager, holding the lock that the
  triggering request acquired, can issue follow-up updates to the same
  entry without deadlocking;
* **blocking with a timeout** — a conflicting LDAP update waits until the
  update sequence finishes (paper section 4.4), and surfaces ``busy`` only
  if the wait exceeds the timeout.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..ldap.dn import DN
from ..ldap.result import BusyError


@dataclass
class _LockState:
    owner: object | None = None
    count: int = 0
    waiters: int = 0


class LockManager:
    """Owner-re-entrant per-DN locks."""

    def __init__(self, default_timeout: float = 5.0):
        self.default_timeout = default_timeout
        self._cond = threading.Condition()
        self._locks: dict[tuple, _LockState] = {}
        self.statistics = {"acquired": 0, "contended": 0, "timeouts": 0}

    def acquire(self, dn: DN, owner: object, timeout: float | None = None) -> None:
        """Acquire the lock on *dn* for *owner*, waiting if needed."""
        if timeout is None:
            timeout = self.default_timeout
        key = dn.normalized()
        deadline: float | None = None
        with self._cond:
            state = self._locks.setdefault(key, _LockState())
            if state.owner is not None and state.owner is not owner:
                self.statistics["contended"] += 1
            while state.owner is not None and state.owner is not owner:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + timeout
                remaining = deadline - now
                if remaining <= 0:
                    self.statistics["timeouts"] += 1
                    raise BusyError(f"entry {dn} is locked by trigger processing")
                state.waiters += 1
                self._cond.wait(remaining)
                state.waiters -= 1
            state.owner = owner
            state.count += 1
            self.statistics["acquired"] += 1

    def release(self, dn: DN, owner: object) -> None:
        key = dn.normalized()
        with self._cond:
            state = self._locks.get(key)
            if state is None or state.owner is not owner:
                raise RuntimeError(f"releasing lock on {dn} not held by this owner")
            state.count -= 1
            if state.count == 0:
                state.owner = None
                if state.waiters:
                    self._cond.notify_all()
                else:
                    del self._locks[key]

    def is_locked(self, dn: DN) -> bool:
        with self._cond:
            state = self._locks.get(dn.normalized())
            return state is not None and state.owner is not None

    def holder(self, dn: DN) -> object | None:
        with self._cond:
            state = self._locks.get(dn.normalized())
            return state.owner if state else None

    def held_count(self) -> int:
        with self._cond:
            return sum(1 for s in self._locks.values() if s.owner is not None)


class EntryLock:
    """Context-manager sugar: ``with EntryLock(locks, dn, owner): ...``."""

    def __init__(
        self,
        manager: LockManager,
        dn: DN,
        owner: object,
        timeout: float | None = None,
    ):
        self.manager = manager
        self.dn = dn
        self.owner = owner
        self.timeout = timeout

    def __enter__(self) -> "EntryLock":
        self.manager.acquire(self.dn, self.owner, self.timeout)
        return self

    def __exit__(self, *exc_info) -> None:
        self.manager.release(self.dn, self.owner)
