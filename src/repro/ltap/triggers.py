"""Trigger definitions for the LTAP gateway.

LDAP servers "provide no support for triggers" (paper section 4.3); LTAP
adds them by intercepting the update stream.  A trigger names the update
operations it watches, a subtree, an optional LDAP filter over the target
entry, a timing (before/after the server applies the operation), and an
action callable.

* BEFORE triggers may veto the operation by raising
  :class:`~repro.ldap.result.LdapError` (or anything else — the error is
  converted into an LDAP failure response and the operation never reaches
  the server).
* AFTER triggers run once the server has committed; in MetaComm the Update
  Manager registers an AFTER trigger whose action drives the whole
  propagation sequence while the entry lock is still held.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..ldap.backend import ChangeType
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filter import Filter, parse_filter
from ..ldap.protocol import LdapRequest, Session

ALL_OPS = frozenset(
    {ChangeType.ADD, ChangeType.DELETE, ChangeType.MODIFY, ChangeType.MODIFY_RDN}
)


class TriggerTiming(enum.Enum):
    BEFORE = "before"
    AFTER = "after"


@dataclass
class TriggerEvent:
    """What a trigger action receives."""

    change_type: ChangeType
    dn: DN
    request: LdapRequest
    #: Entry image before the operation (None for adds).
    before: Entry | None
    #: Entry image after the operation (None for deletes; None for BEFORE
    #: triggers, which run pre-commit).
    after: Entry | None
    #: The session that issued the triggering request.  Handing this to the
    #: trigger action lets the Update Manager re-enter the entry lock that
    #: the gateway is holding on the session's behalf.
    session: Session
    timing: TriggerTiming = TriggerTiming.AFTER

    @property
    def effective(self) -> Entry | None:
        return self.after if self.after is not None else self.before


TriggerAction = Callable[[TriggerEvent], None]

_trigger_ids = itertools.count(1)


@dataclass
class Trigger:
    """One registered trigger."""

    action: TriggerAction
    ops: frozenset[ChangeType] = ALL_OPS
    base: DN = field(default_factory=DN.root)
    filter: Filter | str | None = None
    timing: TriggerTiming = TriggerTiming.AFTER
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, str):
            self.base = DN.parse(self.base)
        if isinstance(self.filter, str):
            self.filter = parse_filter(self.filter)
        if not self.name:
            self.name = f"trigger-{next(_trigger_ids)}"

    def matches(self, event: TriggerEvent) -> bool:
        if event.change_type not in self.ops:
            return False
        if not event.dn.is_under(self.base):
            return False
        if self.filter is not None:
            entry = event.effective
            if entry is None or not self.filter.matches(entry):
                return False
        return True


class TriggerRegistry:
    """Ordered collection of triggers with registration management."""

    def __init__(self) -> None:
        self._triggers: list[Trigger] = []
        self.statistics = {"fired": 0, "vetoed": 0}

    def register(self, trigger: Trigger) -> Trigger:
        if any(t.name == trigger.name for t in self._triggers):
            raise ValueError(f"trigger {trigger.name!r} already registered")
        self._triggers.append(trigger)
        return trigger

    def unregister(self, name: str) -> None:
        for i, trigger in enumerate(self._triggers):
            if trigger.name == name:
                del self._triggers[i]
                return
        raise ValueError(f"no trigger named {name!r}")

    def __len__(self) -> int:
        return len(self._triggers)

    def __iter__(self):
        return iter(self._triggers)

    def fire(self, event: TriggerEvent) -> None:
        """Run all matching triggers for *event* in registration order."""
        for trigger in list(self._triggers):
            if trigger.timing is not event.timing:
                continue
            if trigger.matches(event):
                self.statistics["fired"] += 1
                try:
                    trigger.action(event)
                except Exception:
                    if event.timing is TriggerTiming.BEFORE:
                        self.statistics["vetoed"] += 1
                    raise
