"""repro.obs — observability for the MetaComm update pipeline.

The runtime health plane (see docs/OBSERVABILITY.md for the catalog):

* :mod:`repro.obs.metrics` — a thread-safe registry of Counters, Gauges
  and Histograms with label support, replacing the ad-hoc ``statistics``
  dicts (which survive as live views, :mod:`repro.obs.views`);
* :mod:`repro.obs.trace` — per-update trace spans carried with the
  session from the LTAP trigger to the supplemental LDAP write, stored in
  a bounded ring buffer;
* :mod:`repro.obs.events` — the structured event journal: an append-only
  bounded stream of typed lifecycle events, each carrying its trace id;
* :mod:`repro.obs.health` — per-device-link telemetry (rolling latency
  percentiles, error rates, failure streaks) and the derived
  healthy/degraded/unreachable state;
* :mod:`repro.obs.audit` — the background consistency auditor: a
  low-rate ``consistent()`` sampler plus staleness gauges;
* :mod:`repro.obs.alerts` — declarative threshold rules evaluated over
  the registry (``metacomm_alerts_active``);
* :mod:`repro.obs.export` — Prometheus text-format and JSON renderers
  (surfaced by ``python -m repro stats``).

:class:`Observability` bundles one registry + tracer + journal + health
board; every :class:`~repro.core.MetaComm` instance owns its own bundle
so co-hosted systems and tests never share samples.
"""

from __future__ import annotations

from .alerts import AlertEngine, AlertRule, AlertRuleError, default_rules
from .audit import AuditReport, ConsistencyAuditor
from .events import EVENT_KINDS, Event, EventJournal
from .export import render_json, render_prometheus
from .lockwitness import LockWitness, WitnessViolation, witness_system
from .health import (
    DEGRADED,
    HEALTHY,
    UNREACHABLE,
    DeviceHealth,
    HealthBoard,
    HealthPolicy,
    LatencyReservoir,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .trace import OBS_TRACE, Span, Trace, Tracer, trace_span
from .views import StatsView

__all__ = [
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "AuditReport",
    "ConsistencyAuditor",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEGRADED",
    "DeviceHealth",
    "EVENT_KINDS",
    "Event",
    "EventJournal",
    "Gauge",
    "HEALTHY",
    "HealthBoard",
    "HealthPolicy",
    "Histogram",
    "LatencyReservoir",
    "LockWitness",
    "MetricsRegistry",
    "OBS_TRACE",
    "Observability",
    "Span",
    "StatsView",
    "Trace",
    "Tracer",
    "UNREACHABLE",
    "WitnessViolation",
    "default_rules",
    "global_registry",
    "render_json",
    "render_prometheus",
    "trace_span",
    "witness_system",
]


class Observability:
    """One system's metrics registry + traces + journal + health board."""

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 256,
        journal_capacity: int = 1024,
        health_policy: HealthPolicy | None = None,
    ):
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(capacity=trace_capacity, enabled=enabled)
        self.journal = EventJournal(
            capacity=journal_capacity,
            enabled=enabled,
            registry=self.registry,
        )
        self.health = HealthBoard(
            registry=self.registry,
            journal=self.journal,
            policy=health_policy,
            enabled=enabled,
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def disable(self) -> None:
        self.registry.enabled = False
        self.tracer.enabled = False
        self.journal.enabled = False
        self.health.enabled = False

    def enable(self) -> None:
        self.registry.enabled = True
        self.tracer.enabled = True
        self.journal.enabled = True
        self.health.enabled = True

    def prometheus(self, include_global: bool = True) -> str:
        """Prometheus text format for this system (plus the process-wide
        registry, which holds module-level metrics like the lexpress
        instruction counter)."""
        registries = [self.registry]
        if include_global:
            registries.append(global_registry())
        return render_prometheus(*registries)

    def json(self, include_traces: bool = True) -> str:
        return render_json(
            self.registry, self.tracer if include_traces else None
        )
