"""repro.obs — observability for the MetaComm update pipeline.

Three pillars (see docs/OBSERVABILITY.md for the catalog):

* :mod:`repro.obs.metrics` — a thread-safe registry of Counters, Gauges
  and Histograms with label support, replacing the ad-hoc ``statistics``
  dicts (which survive as live views, :mod:`repro.obs.views`);
* :mod:`repro.obs.trace` — per-update trace spans carried with the
  session from the LTAP trigger to the supplemental LDAP write, stored in
  a bounded ring buffer;
* :mod:`repro.obs.export` — Prometheus text-format and JSON renderers
  (surfaced by ``python -m repro stats``).

:class:`Observability` bundles one registry + one tracer; every
:class:`~repro.core.MetaComm` instance owns its own bundle so co-hosted
systems and tests never share samples.
"""

from __future__ import annotations

from .export import render_json, render_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .trace import OBS_TRACE, Span, Trace, Tracer, trace_span
from .views import StatsView

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_TRACE",
    "Observability",
    "Span",
    "StatsView",
    "Trace",
    "Tracer",
    "global_registry",
    "render_json",
    "render_prometheus",
    "trace_span",
]


class Observability:
    """One system's metrics registry + trace store."""

    def __init__(self, enabled: bool = True, trace_capacity: int = 256):
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(capacity=trace_capacity, enabled=enabled)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def disable(self) -> None:
        self.registry.enabled = False
        self.tracer.enabled = False

    def enable(self) -> None:
        self.registry.enabled = True
        self.tracer.enabled = True

    def prometheus(self, include_global: bool = True) -> str:
        """Prometheus text format for this system (plus the process-wide
        registry, which holds module-level metrics like the lexpress
        instruction counter)."""
        registries = [self.registry]
        if include_global:
            registries.append(global_registry())
        return render_prometheus(*registries)

    def json(self, include_traces: bool = True) -> str:
        return render_json(
            self.registry, self.tracer if include_traces else None
        )
