"""Declarative alert rules evaluated over the metrics registry.

A rule is a threshold over one metric family, in a tiny Prometheus-like
syntax::

    metacomm_queue_oldest_age_seconds > 5
    metacomm_device_health{device="pbx-west"} >= 1 for 3
    metacomm_audit_last_mismatches > 0

``for N`` requires the condition to hold for N consecutive evaluations
before the alert fires — the "device degraded for more than N probes"
style of rule that avoids flapping on a single bad sample.  Rules with a
label selector match only that child; rules without one match *every*
child of the family independently, so one ``metacomm_device_health >= 2``
rule covers a fleet of any size and fires per device.

The engine keeps pending/active bookkeeping between evaluations, exposes
the live count per rule as ``metacomm_alerts_active{rule=...}`` and the
cumulative count as ``metacomm_alerts_fired_total{rule=...}``, and emits
``alert.raised`` / ``alert.cleared`` journal events on every transition.
Evaluation is driven by the consistency auditor's cycle (or manually via
:meth:`AlertEngine.evaluate`); rules never run on the update hot path.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field

from .events import ALERT_CLEARED, ALERT_RAISED
from .metrics import Counter, Gauge

__all__ = [
    "ActiveAlert",
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "default_rules",
]

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    "==": lambda v, t: v == t,
    "!=": lambda v, t: v != t,
}

_RULE_RE = re.compile(
    r"""^\s*
    (?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*)
    (?:\{(?P<labels>[^}]*)\})?
    \s*(?P<op>>=|<=|==|!=|>|<)\s*
    (?P<value>-?\d+(?:\.\d+)?)
    (?:\s*s)?                       # tolerate a units suffix: "> 5s"
    (?:\s+for\s+(?P<cycles>\d+))?
    \s*$""",
    re.VERBOSE,
)

_LABEL_RE = re.compile(
    r"""\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*
    (?:"(?P<quoted>[^"]*)"|(?P<bare>[^,"]+?))\s*(?:,|$)""",
    re.VERBOSE,
)


class AlertRuleError(ValueError):
    """A rule expression could not be parsed."""


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule."""

    name: str
    metric: str
    op: str
    threshold: float
    #: Label selector; empty = match every child of the family.
    labels: tuple[tuple[str, str], ...] = ()
    #: Consecutive breaching evaluations required before firing.
    for_cycles: int = 1
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise AlertRuleError(f"unknown comparator {self.op!r}")
        if self.for_cycles < 1:
            raise AlertRuleError("for_cycles must be >= 1")

    @classmethod
    def parse(cls, name: str, expr: str, description: str = "") -> "AlertRule":
        """Parse ``metric{label=value} OP number [for N]``."""
        match = _RULE_RE.match(expr)
        if match is None:
            raise AlertRuleError(f"cannot parse alert rule {expr!r}")
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            consumed = 0
            for label in _LABEL_RE.finditer(raw):
                value = (
                    label.group("quoted")
                    if label.group("quoted") is not None
                    else label.group("bare")
                )
                labels.append((label.group("name"), value))
                consumed = label.end()
            if consumed < len(raw.rstrip()):
                raise AlertRuleError(f"bad label selector in {expr!r}")
        return cls(
            name=name,
            metric=match.group("metric"),
            op=match.group("op"),
            threshold=float(match.group("value")),
            labels=tuple(labels),
            for_cycles=int(match.group("cycles") or 1),
            description=description,
        )

    @property
    def expr(self) -> str:
        selector = ""
        if self.labels:
            inner = ",".join(f'{n}="{v}"' for n, v in self.labels)
            selector = "{" + inner + "}"
        suffix = f" for {self.for_cycles}" if self.for_cycles > 1 else ""
        threshold = (
            int(self.threshold)
            if float(self.threshold).is_integer()
            else self.threshold
        )
        return f"{self.metric}{selector} {self.op} {threshold}{suffix}"

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def matches(self, labels: dict[str, str]) -> bool:
        return all(labels.get(n) == v for n, v in self.labels)


@dataclass
class ActiveAlert:
    """One firing alert instance (rule × label combination)."""

    rule: str
    expr: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0
    since: float = 0.0  # epoch seconds of the raise
    cycles: int = 0  # breaching evaluations so far

    def key(self) -> tuple:
        return (self.rule, tuple(sorted(self.labels.items())))

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "expr": self.expr,
            "labels": dict(self.labels),
            "value": self.value,
            "since": self.since,
            "cycles": self.cycles,
        }


def default_rules() -> list[AlertRule]:
    """The shipped rule set: staleness, sick links, drift."""
    return [
        AlertRule.parse(
            "queue-backlog",
            "metacomm_queue_oldest_age_seconds > 5",
            "oldest unclaimed update has waited more than 5s",
        ),
        AlertRule.parse(
            "device-degraded",
            "metacomm_device_health >= 1 for 3",
            "device link degraded for 3 consecutive probes",
        ),
        AlertRule.parse(
            "device-unreachable",
            "metacomm_device_health >= 2",
            "device link unreachable (consecutive-failure streak)",
        ),
        AlertRule.parse(
            "audit-mismatch",
            "metacomm_audit_last_mismatches > 0",
            "the consistency auditor found device/directory drift",
        ),
    ]


class AlertEngine:
    """Evaluates a rule set against a registry, tracking transitions."""

    def __init__(self, registry, journal=None, rules=None):
        self.registry = registry
        self.journal = journal
        self._rules: list[AlertRule] = list(
            rules if rules is not None else ()
        )
        self._lock = threading.Lock()
        self._pending: dict[tuple, int] = {}
        self._active: dict[tuple, ActiveAlert] = {}
        self._active_gauge = registry.gauge(
            "metacomm_alerts_active",
            "Alert instances currently firing, per rule",
            labelnames=("rule",),
        )
        self._fired_total = registry.counter(
            "metacomm_alerts_fired_total",
            "Alert raise transitions, per rule",
            labelnames=("rule",),
        )

    # -- rule management ---------------------------------------------------

    @property
    def rules(self) -> list[AlertRule]:
        with self._lock:
            return list(self._rules)

    def add_rule(self, rule: AlertRule) -> AlertRule:
        with self._lock:
            if any(r.name == rule.name for r in self._rules):
                raise AlertRuleError(f"duplicate rule name {rule.name!r}")
            self._rules.append(rule)
        # A fresh rule starts visible (and at zero) in the scrape.
        self._active_gauge.labels(rule=rule.name).set(0)
        return rule

    def remove_rule(self, name: str) -> None:
        with self._lock:
            self._rules = [r for r in self._rules if r.name != name]
            for key in [k for k in self._pending if k[0] == name]:
                del self._pending[key]
            for key in [k for k in self._active if k[0] == name]:
                del self._active[key]
        self._active_gauge.labels(rule=name).set(0)

    # -- evaluation --------------------------------------------------------

    def _samples(self, rule: AlertRule) -> list[tuple[dict[str, str], float]]:
        """(labels, value) pairs of the rule's metric family right now."""
        metric = self.registry.get(rule.metric)
        if metric is None or not isinstance(metric, (Counter, Gauge)):
            return []
        out: list[tuple[dict[str, str], float]] = []
        for key, child in metric.children():
            labels = dict(zip(metric.labelnames, key))
            if not rule.matches(labels):
                continue
            out.append((labels, child.value))
        return out

    def evaluate(self) -> list[ActiveAlert]:
        """Run every rule once; returns the alerts active afterwards.

        Transition semantics per (rule, label combination):
        breach → pending count rises; at ``for_cycles`` the alert raises
        (journal event + fired counter).  No breach → pending resets and
        a firing alert clears (journal event).
        """
        raised: list[ActiveAlert] = []
        cleared: list[ActiveAlert] = []
        with self._lock:
            rules = list(self._rules)
        now = time.time()
        for rule in rules:
            breaching: dict[tuple, tuple[dict, float]] = {}
            for labels, value in self._samples(rule):
                if rule.breached(value):
                    key = (rule.name, tuple(sorted(labels.items())))
                    breaching[key] = (labels, value)
            with self._lock:
                # Clear pending/active instances that stopped breaching.
                for key in [
                    k
                    for k in self._pending
                    if k[0] == rule.name and k not in breaching
                ]:
                    del self._pending[key]
                for key in [
                    k
                    for k in self._active
                    if k[0] == rule.name and k not in breaching
                ]:
                    cleared.append(self._active.pop(key))
                # Advance pending counts; raise at the sustain threshold.
                for key, (labels, value) in breaching.items():
                    count = self._pending.get(key, 0) + 1
                    self._pending[key] = count
                    active = self._active.get(key)
                    if active is not None:
                        active.value = value
                        active.cycles = count
                    elif count >= rule.for_cycles:
                        alert = ActiveAlert(
                            rule=rule.name,
                            expr=rule.expr,
                            labels=labels,
                            value=value,
                            since=now,
                            cycles=count,
                        )
                        self._active[key] = alert
                        raised.append(alert)
                active_count = sum(
                    1 for k in self._active if k[0] == rule.name
                )
            self._active_gauge.labels(rule=rule.name).set(active_count)
        for alert in raised:
            self._fired_total.labels(rule=alert.rule).inc()
            if self.journal is not None:
                self.journal.emit(
                    ALERT_RAISED,
                    rule=alert.rule,
                    expr=alert.expr,
                    value=alert.value,
                    **alert.labels,
                )
        for alert in cleared:
            if self.journal is not None:
                self.journal.emit(
                    ALERT_CLEARED,
                    rule=alert.rule,
                    expr=alert.expr,
                    **alert.labels,
                )
        return self.active()

    # -- introspection -----------------------------------------------------

    def active(self) -> list[ActiveAlert]:
        with self._lock:
            return sorted(
                self._active.values(), key=lambda a: (a.rule, a.since)
            )

    def is_active(self, rule: str) -> bool:
        with self._lock:
            return any(k[0] == rule for k in self._active)
