"""Background consistency auditing and staleness gauges.

``MetaComm.consistent()`` is the E1 oracle — but until now it only ran
inside tests, after the system quiesced.  The auditor turns drift
detection into a *runtime* signal, in the spirit of "Directory
Reconciliation" (Mitzenmacher & Morgan): a low-rate sampler that probes
one device binding's slice per cycle (round-robin) against live state,
**without quiescing** — updates keep flowing while the probe walks the
device dump and the directory's materialized view.

Because the system stays live, a probe can race an in-flight update
sequence and see a transient disagreement (device committed, supplemental
write not yet landed).  That is by design: the sampler reports what it
saw, and the alert layer's ``for N`` sustain absorbs one-cycle blips —
persistent drift (a lost notification, a failed compensation, operator
surgery on the device) keeps reappearing and fires.

Each cycle also refreshes the staleness gauges that the ROADMAP's
no-quiesce sync work will report through: global-queue depth and
oldest-unclaimed-update age, per-device last-applied serial lag, and the
device-health percentile gauges.  Finally the cycle hands control to the
alert engine, so rule evaluation rides the same low-rate clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .events import AUDIT_CYCLE, AUDIT_MISMATCH

__all__ = ["AuditReport", "ConsistencyAuditor"]

#: How many problem strings an ``audit.mismatch`` journal event carries.
_DETAIL_LIMIT = 3


@dataclass
class AuditReport:
    """What one audit cycle saw."""

    cycle: int
    #: Device bindings probed this cycle (one in sampling mode, all in full).
    probed: tuple[str, ...] = ()
    #: Binding name → problem strings (empty lists are pruned).
    mismatches: dict[str, list[str]] = field(default_factory=dict)
    queue_depth: int = 0
    oldest_age: float = 0.0
    last_serial: int = 0
    #: Binding name → serial lag behind the queue's last issued serial.
    device_lag: dict[str, int] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def mismatch_count(self) -> int:
        return sum(len(problems) for problems in self.mismatches.values())

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "probed": list(self.probed),
            "ok": self.ok,
            "mismatches": {k: list(v) for k, v in self.mismatches.items()},
            "queue_depth": self.queue_depth,
            "oldest_age": self.oldest_age,
            "last_serial": self.last_serial,
            "device_lag": dict(self.device_lag),
            "duration": self.duration,
        }


class ConsistencyAuditor:
    """Round-robin ``consistent()`` sampler + staleness-gauge refresher.

    ``run_cycle()`` probes the next binding slice (or every binding with
    ``full=True``) and publishes what it saw; ``start()`` runs cycles on
    a daemon thread at ``interval`` seconds.  The auditor never takes the
    gateway quiesce — it reads live state and accepts sampling noise.
    """

    def __init__(self, system, interval: float = 0.5):
        self.system = system
        self.interval = interval
        registry = system.obs.registry
        self.journal = system.obs.journal
        self._cycle = 0
        self._next_binding = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.last_report: AuditReport | None = None

        self._cycles_total = registry.counter(
            "metacomm_audit_cycles_total",
            "Consistency-audit sampling cycles completed",
        )
        self._mismatches_total = registry.counter(
            "metacomm_audit_mismatches_total",
            "Device/directory disagreements observed by the auditor",
            labelnames=("device",),
        )
        self._last_mismatches = registry.gauge(
            "metacomm_audit_last_mismatches",
            "Disagreements seen in the most recent audit cycle "
            "(the audit-mismatch alert rule's input)",
        )
        self._errors_total = registry.counter(
            "metacomm_audit_errors_total",
            "Audit cycles that raised instead of completing",
        )
        self._cycle_seconds = registry.histogram(
            "metacomm_audit_cycle_seconds",
            "Duration of one consistency-audit cycle",
        )

    # -- one cycle ---------------------------------------------------------

    def run_cycle(self, full: bool = False) -> AuditReport:
        """Probe one binding slice (round-robin), or all with ``full``."""
        start = time.perf_counter()
        bindings = list(self.system.um.bindings)
        with self._lock:
            self._cycle += 1
            cycle = self._cycle
            if full or not bindings:
                probed = bindings
            else:
                probed = [bindings[self._next_binding % len(bindings)]]
                self._next_binding += 1

        report = AuditReport(cycle=cycle, probed=tuple(b.name for b in probed))
        for binding in probed:
            problems = self.system.binding_inconsistencies(binding)
            if problems:
                report.mismatches[binding.name] = problems
                self._mismatches_total.labels(device=binding.name).inc(
                    len(problems)
                )
                if self.journal is not None:
                    self.journal.emit(
                        AUDIT_MISMATCH,
                        device=binding.name,
                        count=len(problems),
                        problems=problems[:_DETAIL_LIMIT],
                        cycle=cycle,
                    )

        # Staleness gauges: queue depth/age and per-device serial lag.
        queue = self.system.um.queue
        report.queue_depth = len(queue)
        report.oldest_age = queue.refresh_staleness()
        report.last_serial = queue.last_serial
        health = self.system.obs.health
        for binding in bindings:
            device_health = health.device(binding.name)
            report.device_lag[binding.name] = max(
                0, report.last_serial - device_health.last_applied_serial
            )
        health.refresh_gauges(last_serial=report.last_serial)

        self._last_mismatches.set(report.mismatch_count)
        self._cycles_total.inc()
        report.duration = time.perf_counter() - start
        self._cycle_seconds.observe(report.duration)
        if self.journal is not None:
            self.journal.emit(
                AUDIT_CYCLE,
                cycle=cycle,
                probed=list(report.probed),
                mismatches=report.mismatch_count,
                queue_depth=report.queue_depth,
                oldest_age=round(report.oldest_age, 6),
            )
        self.last_report = report

        # Alert rules ride the audit clock (never the update hot path).
        alerts = getattr(self.system, "alerts", None)
        if alerts is not None:
            alerts.evaluate()
        return report

    # -- background loop ---------------------------------------------------

    def start(self, interval: float | None = None) -> None:
        """Run cycles on a daemon thread every ``interval`` seconds."""
        if interval is not None:
            self.interval = interval
        if self._thread is not None:
            return
        self._stop = threading.Event()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.run_cycle()
                except Exception:
                    # The auditor observes the system; it must never be
                    # the thing that takes it down.
                    self._errors_total.inc()

        self._thread = threading.Thread(
            target=loop, name="metacomm-auditor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None
