"""The structured event journal of the MetaComm health plane.

Metrics (:mod:`repro.obs.metrics`) answer *how much* and traces
(:mod:`repro.obs.trace`) answer *how long* — but neither answers *what
happened, in order*.  The journal is the third leg: an append-only,
bounded, thread-safe stream of typed lifecycle events covering an
update's whole journey (accepted into the global queue, claimed by the
coordinator, planned, attempted/committed/failed per device, compensated,
supplementally written) plus the health plane's own observations (health
state transitions, audit mismatches, alert raises/clears, sync progress).

Every event carries the PR-1 trace id when one is active, so a journal
line can be joined with its trace's spans; the serial number of the
update sequence appears in the attributes for the same reason.  The
in-memory store is a bounded ring (oldest events drop once ``capacity``
is exceeded — counted, never silent) and the whole stream can be exported
as JSONL for offline analysis (``python -m repro events --json``).

Journals follow the registry convention: created *disabled* they turn
``emit`` into a cheap no-op, which is what the health-plane overhead
benchmark compares against.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Callable, Iterator, Mapping

__all__ = [
    "Event",
    "EventJournal",
    "EVENT_KINDS",
    # event kinds
    "UPDATE_ACCEPTED",
    "UPDATE_CLAIMED",
    "UPDATE_DEFERRED",
    "UPDATE_REJECTED",
    "LANE_BARRIER",
    "LINK_FLUSH",
    "UPDATE_PLANNED",
    "SEQUENCE_ABORTED",
    "DEVICE_ATTEMPT",
    "DEVICE_COMMIT",
    "DEVICE_FAILURE",
    "DEVICE_ROLLBACK",
    "SAGA_COMPENSATED",
    "SUPPLEMENTAL_WRITE",
    "DDU_RECEIVED",
    "SYNC_PROGRESS",
    "HEALTH_TRANSITION",
    "AUDIT_CYCLE",
    "AUDIT_MISMATCH",
    "ALERT_RAISED",
    "ALERT_CLEARED",
    "LEXPRESS_COMPILED",
    "WITNESS_VIOLATION",
]

# -- event kinds (the journal schema; see docs/OBSERVABILITY.md) ------------

#: A descriptor entered the global update queue (carries ``serial``).
UPDATE_ACCEPTED = "update.accepted"
#: The coordinator took the descriptor for processing.  Under a sharded
#: queue the event carries the lane label the routing oracle assigned.
UPDATE_CLAIMED = "update.claimed"
#: Admission control made a prospective update wait for lane capacity
#: before LTAP accepted it (carries ``lane`` and the ``waited`` seconds).
UPDATE_DEFERRED = "update.deferred"
#: Admission control turned a prospective update away — the lane stayed
#: at its depth limit and LTAP answered ServerBusy.  Emitted *before*
#: any directory write, so a rejected update leaves no partial state.
UPDATE_REJECTED = "update.rejected"
#: A serial-lane item cleared the quiescence barrier: every concurrent
#: lane drained past its serial (docs/CONCURRENCY.md).
LANE_BARRIER = "queue.barrier"
#: A device link flushed one pipelined command stream (carries ``device``,
#: the coalesced ``ops`` count and the ok/failed split).
LINK_FLUSH = "link.flush"
#: The pipeline finished enrich+plan (carries the device fan-out count).
UPDATE_PLANNED = "update.planned"
#: A repository rejection aborted the remaining sequence.
SEQUENCE_ABORTED = "sequence.aborted"
#: A planned device update is about to be applied.
DEVICE_ATTEMPT = "device.attempt"
#: The device committed its planned update.
DEVICE_COMMIT = "device.commit"
#: The device rejected (or the link dropped) its planned update.
DEVICE_FAILURE = "device.failure"
#: Parallel mode undid a commit past the abort point.
DEVICE_ROLLBACK = "device.rollback"
#: Saga compensation undid an already-applied device update.
SAGA_COMPENSATED = "saga.compensated"
#: The closing section-5.5 supplemental LDAP write.
SUPPLEMENTAL_WRITE = "supplemental.write"
#: A direct device update arrived from a device filter.
DDU_RECEIVED = "ddu.received"
#: Progress of a synchronization run (start / batch / end phases).
SYNC_PROGRESS = "sync.progress"
#: A device's derived health state changed (healthy/degraded/unreachable).
HEALTH_TRANSITION = "health.transition"
#: The consistency auditor finished one sampling cycle.
AUDIT_CYCLE = "audit.cycle"
#: The auditor found device/directory disagreements in a slice.
AUDIT_MISMATCH = "audit.mismatch"
#: An alert rule's condition was sustained long enough to fire.
ALERT_RAISED = "alert.raised"
#: A previously firing alert's condition went away.
ALERT_CLEARED = "alert.cleared"
#: A lexpress rule was lowered to a Python closure (or rejected by the
#: verifier gate) — emitted per (mapping, attribute) compile, carrying
#: ``status`` (compiled/rejected), ``seconds`` and the code fingerprint.
LEXPRESS_COMPILED = "lexpress.compiled"
#: The runtime lock witness observed an acquisition order that reverses
#: an already-recorded (or statically derived) pair — carries both lock
#: names and both acquisition stacks (docs/CONCURRENCY.md).
WITNESS_VIOLATION = "witness.violation"

#: Every kind the shipped instrumentation emits, for validation/docs.
EVENT_KINDS = (
    UPDATE_ACCEPTED,
    UPDATE_CLAIMED,
    UPDATE_DEFERRED,
    UPDATE_REJECTED,
    LANE_BARRIER,
    LINK_FLUSH,
    UPDATE_PLANNED,
    SEQUENCE_ABORTED,
    DEVICE_ATTEMPT,
    DEVICE_COMMIT,
    DEVICE_FAILURE,
    DEVICE_ROLLBACK,
    SAGA_COMPENSATED,
    SUPPLEMENTAL_WRITE,
    DDU_RECEIVED,
    SYNC_PROGRESS,
    HEALTH_TRANSITION,
    AUDIT_CYCLE,
    AUDIT_MISMATCH,
    ALERT_RAISED,
    ALERT_CLEARED,
    LEXPRESS_COMPILED,
    WITNESS_VIOLATION,
)


class Event:
    """One journal line: a typed fact with a timestamp and a trace link.

    A plain slotted class rather than a dataclass: one Event is built per
    ``emit`` on the update hot path, and slot assignment is measurably
    cheaper than dataclass construction there.
    """

    __slots__ = ("seq", "ts", "kind", "trace_id", "attributes")

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        trace_id: str | None = None,
        attributes: Mapping[str, object] | None = None,
    ):
        self.seq = seq
        #: Wall-clock time of the event (``time.time()`` epoch seconds).
        self.ts = ts
        self.kind = kind
        #: The PR-1 trace this event belongs to, when one was active.
        self.trace_id = trace_id
        self.attributes = attributes if attributes is not None else {}

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "attributes": dict(self.attributes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    def __repr__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        return f"Event(#{self.seq} {self.kind} {attrs})".rstrip()


#: Callback invoked (outside the journal lock) for every emitted event.
EventListener = Callable[[Event], None]


class EventJournal:
    """Append-only bounded ring of :class:`Event`\\ s, safe across threads.

    ``emit`` is the single producer entry point; the coordinator thread,
    fan-out workers and client threads all call it concurrently.  Readers
    (``events``, ``tail``, iteration) get consistent snapshots.
    Subscribed listeners receive each event after it is stored — the
    ``--follow`` CLI and the test harness use this; listener exceptions
    are swallowed so a broken consumer can never damage the pipeline.
    """

    def __init__(
        self,
        capacity: int = 1024,
        enabled: bool = True,
        registry=None,
    ):
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        #: Immutable snapshot, replaced wholesale on (un)subscribe, so
        #: ``emit`` can iterate it without a lock or a copy.
        self._listeners: tuple[EventListener, ...] = ()
        self._emitted = None
        self._emitted_children: dict[str, object] = {}
        self._dropped = None
        if registry is not None:
            self._emitted = registry.counter(
                "metacomm_journal_events_total",
                "Lifecycle events appended to the event journal",
                labelnames=("kind",),
            )
            self._dropped = registry.counter(
                "metacomm_journal_dropped_total",
                "Journal events evicted from the bounded ring",
            )

    # -- producing ---------------------------------------------------------

    def emit(self, kind: str, trace=None, **attributes) -> Event | None:
        """Append one event; returns it (``None`` when disabled).

        ``trace`` accepts a :class:`~repro.obs.trace.Trace`, a bare trace
        id string, or ``None``.
        """
        if not self.enabled:
            return None
        if isinstance(trace, str):
            trace_id = trace
        else:
            trace_id = getattr(trace, "trace_id", None)
        with self._lock:
            dropping = len(self._events) >= self.capacity
            event = Event(
                next(self._seq), time.time(), kind, trace_id, attributes
            )
            self._events.append(event)
            # Snapshot inside the critical section: subscribe/unsubscribe
            # swap the tuple under this lock, so the snapshot is the exact
            # listener set that existed when the event entered the journal
            # — and delivery below happens with the lock released.
            listeners = self._listeners
        if self._emitted is not None:
            child = self._emitted_children.get(kind)
            if child is None:
                # Benign race: two threads may both build the child; the
                # registry dedupes by label key, so both get the same one.
                child = self._emitted.labels(kind=kind)
                self._emitted_children[kind] = child
            child.inc()
            if dropping:
                self._dropped.inc()
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                pass  # a broken consumer must never damage the pipeline
        return event

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, listener: EventListener) -> EventListener:
        with self._lock:
            self._listeners = self._listeners + (listener,)
        return listener

    def unsubscribe(self, listener: EventListener) -> None:
        with self._lock:
            # Equality, not identity: bound methods (journal.unsubscribe
            # (seen.append)) are fresh objects on every attribute access.
            self._listeners = tuple(
                l for l in self._listeners if l != listener
            )

    # -- reading -----------------------------------------------------------

    def events(
        self,
        kind: str | None = None,
        since: int | None = None,
    ) -> list[Event]:
        """Snapshot of retained events, optionally filtered by ``kind``
        and/or to sequence numbers strictly greater than ``since``."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if since is not None:
            events = [e for e in events if e.seq > since]
        return events

    def tail(self, n: int = 10) -> list[Event]:
        with self._lock:
            events = list(self._events)
        return events[-n:] if n > 0 else []

    def last(self, kind: str | None = None) -> Event | None:
        matching = self.events(kind)
        return matching[-1] if matching else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The retained stream as JSON Lines (one event per line)."""
        lines = [event.to_json() for event in self.events()]
        return "\n".join(lines) + ("\n" if lines else "")

    def export_jsonl(self, path) -> int:
        """Write the retained stream to ``path``; returns the event count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(events)
