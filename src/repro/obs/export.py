"""Exporters: Prometheus text format and JSON snapshots.

``render_prometheus`` emits the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers, one sample per line, histograms expanded
into ``_bucket{le=...}`` / ``_sum`` / ``_count`` series — so the output of
``python -m repro stats`` can be scraped or pasted into promtool as-is.

``render_json`` bundles a metrics snapshot with the trace ring buffer for
programmatic consumption (dashboards, the experiment harness).
"""

from __future__ import annotations

import json

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Tracer

__all__ = ["render_prometheus", "render_json"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render one or more registries as Prometheus text format."""
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for metric in registry:
            if metric.name in seen:
                continue  # first registry wins on name collisions
            seen.add(metric.name)
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, child in metric.children():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(metric, (Counter, Gauge)):
                    lines.append(
                        f"{metric.name}{_format_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
                elif isinstance(metric, Histogram):
                    for bound, count in child.cumulative():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_format_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_format_labels(labels)} "
                        f"{repr(child.sum)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_format_labels(labels)} "
                        f"{child.count}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
) -> str:
    """A JSON snapshot of metrics (and, optionally, the trace store)."""
    payload: dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        payload["traces"] = [trace.to_dict() for trace in tracer.traces()]
    return json.dumps(payload, indent=indent, sort_keys=True)
