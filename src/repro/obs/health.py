"""Device-link health telemetry.

The paper's devices are reached over serial craft interfaces and slow
management links — exactly the links that flap, degrade and silently
stall in production.  This module derives a per-device **health state**
from what the pipeline already observes on every fan-out:

* a windowed reservoir of link latencies (rolling p50/p95/p99);
* a rolling success/error window (error rate over the last N outcomes);
* the consecutive-failure streak;
* the last update serial the device applied (for replication-lag gauges).

Two feeds converge here.  The **outcome feed** comes from the pipeline's
fan-out stage (:meth:`HealthBoard.record_outcome`): did this device
accept its planned update, and how long did the whole apply take?  It
owns the error window, the streak, and therefore the derived state.  The
**link feed** comes from :mod:`repro.devices.base` via each device's
``op_observer`` hook (:meth:`HealthBoard.link_observer`): the raw
wall-clock of every add/modify/delete at the device, including direct
device updates and sync pushes that never cross the fan-out stage.  It
owns the latency reservoir.  Keeping the feeds separate means a single
real-world failure is never double-counted into the streak.

States (exported as ``metacomm_device_health``, 0/1/2):

* ``healthy`` — error rate and streak below the policy thresholds;
* ``degraded`` — rolling error rate above ``degraded_error_rate`` (or
  p95 above ``degraded_p95`` when configured);
* ``unreachable`` — ``unreachable_streak`` consecutive failures.

State transitions are emitted into the event journal
(``health.transition``) so the record of a device going dark — and
coming back — is auditable after the fact.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "UNREACHABLE",
    "STATE_CODES",
    "DeviceHealth",
    "HealthBoard",
    "HealthPolicy",
    "LatencyReservoir",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNREACHABLE = "unreachable"

#: Numeric encoding used by the ``metacomm_device_health`` gauge (and
#: therefore by alert rules: ``metacomm_device_health >= 1``).
STATE_CODES = {HEALTHY: 0, DEGRADED: 1, UNREACHABLE: 2}


class LatencyReservoir:
    """A fixed-size window of the most recent latency samples.

    Percentiles are computed over the window with nearest-rank
    interpolation — exact for the window, O(n log n) on query, O(1) on
    observe, which is the right trade for a hot observe path and a
    low-rate query path (the auditor refreshing gauges).
    """

    def __init__(self, size: int = 128):
        if size < 1:
            raise ValueError("reservoir size must be >= 1")
        self.size = size
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100) of the window; 0.0 when empty."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if p <= 0:
            return samples[0]
        if p >= 100:
            return samples[-1]
        rank = (p / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        weight = rank - low
        return samples[low] * (1.0 - weight) + samples[high] * weight

    def quantiles(self) -> dict[str, float]:
        """The dashboard trio: p50/p95/p99 in one sorted pass."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

        def _at(p: float) -> float:
            rank = (p / 100.0) * (len(samples) - 1)
            low = int(rank)
            high = min(low + 1, len(samples) - 1)
            weight = rank - low
            return samples[low] * (1.0 - weight) + samples[high] * weight

        return {"p50": _at(50), "p95": _at(95), "p99": _at(99)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds that derive a state from the rolling observations."""

    #: Outcomes considered for the rolling error rate.
    window: int = 64
    #: Latency samples retained for percentile queries.
    reservoir_size: int = 128
    #: Error rate (0..1) over the window beyond which a device that is
    #: still answering counts as degraded.
    degraded_error_rate: float = 0.25
    #: Consecutive failures beyond which the device counts as unreachable.
    unreachable_streak: int = 3
    #: Optional p95 latency bound (seconds); ``None`` leaves latency out
    #: of the health judgement (simulated links are configured, not sick).
    degraded_p95: float | None = None


class DeviceHealth:
    """Rolling health facts for one device link."""

    def __init__(self, name: str, policy: HealthPolicy | None = None):
        self.name = name
        self.policy = policy if policy is not None else HealthPolicy()
        self.reservoir = LatencyReservoir(self.policy.reservoir_size)
        self._lock = threading.Lock()
        self._window: deque[bool] = deque()  # True = success
        self._window_failures = 0
        self.streak = 0  # consecutive failures
        self.successes = 0
        self.failures = 0
        self.link_ops = 0
        self.link_errors = 0
        self.last_success_at: float | None = None
        self.last_failure_at: float | None = None
        #: Highest global-queue serial this device has applied, and when.
        self.last_applied_serial = 0
        self.last_applied_at: float | None = None

    # -- feeds -------------------------------------------------------------

    def record_outcome(self, seconds: float, ok: bool) -> None:
        """One fan-out outcome: the device accepted/rejected its update."""
        now = time.time()
        with self._lock:
            self._window.append(ok)
            if not ok:
                self._window_failures += 1
            while len(self._window) > self.policy.window:
                if not self._window.popleft():
                    self._window_failures -= 1
            if ok:
                self.successes += 1
                self.streak = 0
                self.last_success_at = now
            else:
                self.failures += 1
                self.streak += 1
                self.last_failure_at = now

    def record_link(self, seconds: float, ok: bool) -> None:
        """One raw device operation (the ``op_observer`` feed)."""
        self.reservoir.observe(seconds)
        with self._lock:
            self.link_ops += 1
            if not ok:
                self.link_errors += 1

    def note_applied(self, serial: int) -> None:
        with self._lock:
            if serial > self.last_applied_serial:
                self.last_applied_serial = serial
                self.last_applied_at = time.time()

    # -- derived -----------------------------------------------------------

    @property
    def error_rate(self) -> float:
        with self._lock:
            if not self._window:
                return 0.0
            return self._window_failures / len(self._window)

    @property
    def state(self) -> str:
        with self._lock:
            streak = self.streak
            window = len(self._window)
            failures = self._window_failures
        if streak >= self.policy.unreachable_streak:
            return UNREACHABLE
        if window and failures / window > self.policy.degraded_error_rate:
            return DEGRADED
        if (
            self.policy.degraded_p95 is not None
            and len(self.reservoir)
            and self.reservoir.percentile(95) > self.policy.degraded_p95
        ):
            return DEGRADED
        return HEALTHY

    def snapshot(self) -> dict:
        quantiles = self.reservoir.quantiles()
        with self._lock:
            return {
                "device": self.name,
                "state": self.state_unlocked(),
                "successes": self.successes,
                "failures": self.failures,
                "streak": self.streak,
                "error_rate": (
                    self._window_failures / len(self._window)
                    if self._window
                    else 0.0
                ),
                "link_ops": self.link_ops,
                "link_errors": self.link_errors,
                "latency": quantiles,
                "last_applied_serial": self.last_applied_serial,
                "last_success_at": self.last_success_at,
                "last_failure_at": self.last_failure_at,
            }

    def state_unlocked(self) -> str:
        """State computed from already-held-lock fields (internal)."""
        if self.streak >= self.policy.unreachable_streak:
            return UNREACHABLE
        if (
            self._window
            and self._window_failures / len(self._window)
            > self.policy.degraded_error_rate
        ):
            return DEGRADED
        return HEALTHY

    def __repr__(self) -> str:
        return f"DeviceHealth({self.name!r}, {self.state})"


class HealthBoard:
    """All device links' health, fed by the pipeline and the devices.

    The board is the single writer of the ``metacomm_device_*`` metric
    families; it also emits ``health.transition`` journal events whenever
    an outcome flips a device's derived state.
    """

    def __init__(
        self,
        registry=None,
        journal=None,
        policy: HealthPolicy | None = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.policy = policy if policy is not None else HealthPolicy()
        self.journal = journal
        self._devices: dict[str, DeviceHealth] = {}
        self._states: dict[str, str] = {}
        self._lock = threading.Lock()
        #: name -> (ok counter, error counter, streak gauge, state gauge)
        #: children, resolved once per device — ``.labels()`` key building
        #: is measurable on the per-outcome hot path.
        self._hot_children: dict[str, tuple] = {}
        self._state_gauge = None
        if registry is not None:
            self._state_gauge = registry.gauge(
                "metacomm_device_health",
                "Derived device-link health (0=healthy 1=degraded "
                "2=unreachable)",
                labelnames=("device",),
            )
            self._attempts = registry.counter(
                "metacomm_device_attempts_total",
                "Fan-out apply outcomes per device link",
                labelnames=("device", "outcome"),
            )
            self._streak_gauge = registry.gauge(
                "metacomm_device_consecutive_failures",
                "Current consecutive-failure streak of a device link",
                labelnames=("device",),
            )
            self._error_rate_gauge = registry.gauge(
                "metacomm_device_error_rate",
                "Rolling error rate of a device link over the health window",
                labelnames=("device",),
            )
            self._latency_gauge = registry.gauge(
                "metacomm_device_link_latency_seconds",
                "Rolling latency percentile of a device link "
                "(refreshed each audit cycle)",
                labelnames=("device", "quantile"),
            )
            self._lag_gauge = registry.gauge(
                "metacomm_device_last_applied_lag",
                "Update serials between the global queue head and the "
                "last serial this device applied",
                labelnames=("device",),
            )
        else:
            self._attempts = None
            self._streak_gauge = None
            self._error_rate_gauge = None
            self._latency_gauge = None
            self._lag_gauge = None

    # -- device registry ---------------------------------------------------

    def device(self, name: str) -> DeviceHealth:
        with self._lock:
            health = self._devices.get(name)
            if health is None:
                health = DeviceHealth(name, self.policy)
                self._devices[name] = health
                self._states[name] = HEALTHY
            return health

    def devices(self) -> list[DeviceHealth]:
        with self._lock:
            return list(self._devices.values())

    def states(self) -> dict[str, str]:
        return {h.name: h.state for h in self.devices()}

    # -- feeds -------------------------------------------------------------

    def _hot(self, name: str) -> tuple | None:
        if self._attempts is None:
            return None
        children = self._hot_children.get(name)
        if children is None:
            # Benign race: both threads resolve the same registry children.
            children = (
                self._attempts.labels(device=name, outcome="ok"),
                self._attempts.labels(device=name, outcome="error"),
                self._streak_gauge.labels(device=name),
                self._state_gauge.labels(device=name),
            )
            self._hot_children[name] = children
        return children

    def record_outcome(self, name: str, seconds: float, ok: bool) -> None:
        """The fan-out feed: one per-device apply outcome."""
        if not self.enabled:
            return
        health = self.device(name)
        health.record_outcome(seconds, ok)
        children = self._hot(name)
        if children is not None:
            ok_child, error_child, streak_child, _ = children
            (ok_child if ok else error_child).inc()
            streak_child.set(health.streak)
        self._after_change(health, children)

    def record_link(
        self, name: str, op: str, seconds: float, ok: bool
    ) -> None:
        """The device feed: one raw add/modify/delete at the device."""
        if not self.enabled:
            return
        self.device(name).record_link(seconds, ok)

    def link_observer(self, name: str):
        """An ``op_observer`` callable for :class:`repro.devices.base.Device`."""

        def observer(op: str, key: str, seconds: float, ok: bool) -> None:
            self.record_link(name, op, seconds, ok)

        return observer

    def note_applied(self, name: str, serial: int) -> None:
        if not self.enabled:
            return
        self.device(name).note_applied(serial)

    # -- derived / export --------------------------------------------------

    def _after_change(
        self, health: DeviceHealth, children: tuple | None
    ) -> None:
        """Detect a state transition and publish it (gauge + journal)."""
        state = health.state
        with self._lock:
            previous = self._states.get(health.name, HEALTHY)
            self._states[health.name] = state
        if children is not None:
            children[3].set(STATE_CODES[state])
        if state != previous and self.journal is not None:
            self.journal.emit(
                "health.transition",
                device=health.name,
                previous=previous,
                state=state,
                streak=health.streak,
                error_rate=round(health.error_rate, 4),
            )

    def refresh_gauges(self, last_serial: int | None = None) -> None:
        """Publish the low-rate gauges (percentiles, error rate, lag).

        Called by the consistency auditor each cycle — percentile sorts
        and lag math stay off the per-update hot path.
        """
        if not self.enabled:
            return
        for health in self.devices():
            name = health.name
            if self._error_rate_gauge is not None:
                self._error_rate_gauge.labels(device=name).set(
                    health.error_rate
                )
                self._streak_gauge.labels(device=name).set(health.streak)
                self._state_gauge.labels(device=name).set(
                    STATE_CODES[health.state]
                )
            if self._latency_gauge is not None:
                for quantile, value in health.reservoir.quantiles().items():
                    self._latency_gauge.labels(
                        device=name, quantile=quantile
                    ).set(value)
            if self._lag_gauge is not None and last_serial is not None:
                lag = max(0, last_serial - health.last_applied_serial)
                self._lag_gauge.labels(device=name).set(lag)

    def snapshot(self) -> dict:
        return {h.name: h.snapshot() for h in self.devices()}
