"""Runtime lock witness: the dynamic half of the LX5xx concurrency tier.

The static pass (:mod:`repro.analysis.concur`) derives a lock acquisition-
order graph from the source; this module *checks the running system
against it*.  ``MetaCommConfig(lock_witness=True)`` wraps every
registered subsystem lock in an order-recording proxy:

* each thread keeps a stack of the witness locks it currently holds;
* every acquisition records the ordered pair ``(held, acquired)`` into a
  process graph pre-seeded with the static analyzer's edges;
* an acquisition whose reverse order is already reachable in that graph
  is an **inversion witness** — exactly the two-threads-opposite-orders
  interleaving LX501 reports statically, caught in vivo.  The witness
  journals a ``witness.violation`` event carrying both lock names and
  both acquisition stacks, and keeps counting (it never raises into the
  runtime's own code paths).

``Condition.wait`` is modelled faithfully: the wait releases the
underlying lock, so the witness pops it for the duration and re-pushes on
wake — a foreign lock held across the wait still produces its edge.

Metrics: ``metacomm_lockwitness_acquisitions_total{lock=...}``,
``metacomm_lockwitness_violations_total`` and
``metacomm_lockwitness_edges`` (observed-edge count, static seeds
excluded).

Overhead is one dict probe plus a list push per acquisition — meant for
tests, stress runs and canary deployments, not steady-state production.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass

from .events import WITNESS_VIOLATION

__all__ = ["LockWitness", "WitnessViolation", "witness_system"]


@dataclass(frozen=True)
class WitnessViolation:
    """One observed acquisition-order reversal."""

    held: str
    acquired: str
    #: The path held -> ... -> acquired already present in the graph that
    #: the new (acquired -> ... -> held edge's reverse) pair contradicts.
    known_path: tuple[str, ...]
    thread: str
    acquire_stack: str
    #: Stack captured when the conflicting *held* lock was taken.
    held_stack: str

    def to_dict(self) -> dict:
        return {
            "held": self.held,
            "acquired": self.acquired,
            "known_path": list(self.known_path),
            "thread": self.thread,
            "acquire_stack": self.acquire_stack,
            "held_stack": self.held_stack,
        }


@dataclass
class _Held:
    """One entry of a thread's held-lock stack."""

    name: str
    stack: str
    #: Re-entrant acquisition depth (RLocks re-acquire without edges).
    count: int = 1
    #: Condition.wait temporarily releases the lock without popping
    #: bookkeeping in the caller's ``with`` block.
    suspended: bool = False


class LockWitness:
    """Order-recording proxies over the runtime's locks."""

    def __init__(self, journal=None, registry=None, static_order=None):
        self.journal = journal
        #: name -> set of names observed/declared to be acquired later.
        self._after: dict[str, set[str]] = {}
        self._static_pairs: set[tuple[str, str]] = set()
        for held, acquired in static_order or ():
            self._after.setdefault(held, set()).add(acquired)
            self._static_pairs.add((held, acquired))
        self._observed: set[tuple[str, str]] = set()
        self._violations: list[WitnessViolation] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._acquisitions = None
        self._violation_count = None
        self._edge_gauge = None
        if registry is not None:
            self._acquisitions = registry.counter(
                "metacomm_lockwitness_acquisitions_total",
                "Lock acquisitions recorded by the runtime lock witness.",
                labelnames=("lock",),
            )
            self._violation_count = registry.counter(
                "metacomm_lockwitness_violations_total",
                "Acquisition-order reversals the lock witness observed.",
            )
            self._edge_gauge = registry.gauge(
                "metacomm_lockwitness_edges",
                "Distinct acquisition-order pairs observed at runtime.",
            )

    # -- wrapping -----------------------------------------------------------

    def wrap(self, name: str, lock):
        """An order-recording proxy for *lock*, registered as *name*.

        Names follow the static analyzer's identity convention —
        ``DefiningClass.attr`` — so runtime pairs line up with the
        static graph's nodes."""
        if isinstance(lock, (_WitnessLock, _WitnessCondition)):
            return lock
        if hasattr(lock, "wait"):
            return _WitnessCondition(self, name, lock)
        return _WitnessLock(self, name, lock)

    # -- inspection ---------------------------------------------------------

    def violations(self) -> list[WitnessViolation]:
        with self._lock:
            return list(self._violations)

    def observed_pairs(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._observed)

    def pairs(self) -> list[tuple[str, str]]:
        """Every edge in the merged graph (static seeds + observed)."""
        with self._lock:
            return sorted(
                (held, acquired)
                for held, afters in self._after.items()
                for acquired in afters
            )

    @property
    def ok(self) -> bool:
        with self._lock:
            return not self._violations

    # -- the recording core -------------------------------------------------

    def _stack(self) -> list[_Held]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def _note_acquired(self, name: str) -> None:
        if self._acquisitions is not None:
            self._acquisitions.labels(lock=name).inc()
        stack = self._stack()
        for entry in reversed(stack):
            if entry.name == name and not entry.suspended:
                entry.count += 1  # re-entrant RLock acquire: no new edges
                return
        frame = "".join(traceback.format_stack(limit=12)[:-2])
        for entry in stack:
            if entry.suspended or entry.name == name:
                continue
            self._record_edge(entry, name, frame)
        stack.append(_Held(name=name, stack=frame))

    def _note_released(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.name == name and not entry.suspended:
                entry.count -= 1
                if entry.count == 0:
                    del stack[index]
                return

    def _record_edge(self, held: _Held, acquired: str, frame: str) -> None:
        with self._lock:
            if acquired in self._after.get(held.name, ()):
                return
            path = self._path(acquired, held.name)
            if path is not None:
                violation = WitnessViolation(
                    held=held.name,
                    acquired=acquired,
                    known_path=tuple(path),
                    thread=threading.current_thread().name,
                    acquire_stack=frame,
                    held_stack=held.stack,
                )
                self._violations.append(violation)
            else:
                violation = None
                self._after.setdefault(held.name, set()).add(acquired)
                self._observed.add((held.name, acquired))
                if self._edge_gauge is not None:
                    self._edge_gauge.set(len(self._observed))
        if violation is None:
            return
        if self._violation_count is not None:
            self._violation_count.inc()
        if self.journal is not None:
            self.journal.emit(WITNESS_VIOLATION, **violation.to_dict())

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A path start -> ... -> goal in the graph, or None.

        Caller holds ``_lock``."""
        if start == goal:
            return [start]
        seen = {start}
        frontier = [[start]]
        while frontier:
            path = frontier.pop()
            for nxt in self._after.get(path[-1], ()):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    # -- Condition.wait bookkeeping -----------------------------------------

    def _suspend(self, name: str) -> _Held | None:
        """Mark *name* released for the duration of a Condition.wait."""
        for entry in reversed(self._stack()):
            if entry.name == name and not entry.suspended:
                entry.suspended = True
                return entry
        return None

    def _resume(self, entry: _Held | None) -> None:
        if entry is not None:
            entry.suspended = False


class _WitnessLock:
    """Proxy over ``threading.Lock``/``RLock`` recording order pairs."""

    def __init__(self, witness: LockWitness, name: str, inner):
        self._witness = witness
        self._name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._witness._note_acquired(self._name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._witness._note_released(self._name)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"<witness {self._name} over {self._inner!r}>"


class _WitnessCondition:
    """Proxy over ``threading.Condition`` — wait releases, wake reacquires."""

    def __init__(self, witness: LockWitness, name: str, inner):
        self._witness = witness
        self._name = name
        self._inner = inner

    def acquire(self, *args, **kwargs) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._witness._note_acquired(self._name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._witness._note_released(self._name)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        entry = self._witness._suspend(self._name)
        try:
            return self._inner.wait(timeout)
        finally:
            self._witness._resume(entry)

    def wait_for(self, predicate, timeout: float | None = None):
        entry = self._witness._suspend(self._name)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._witness._resume(entry)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:
        return f"<witness {self._name} over {self._inner!r}>"


def witness_system(system, witness: LockWitness | None = None) -> LockWitness:
    """Wrap a :class:`~repro.core.MetaComm` instance's subsystem locks.

    Each lock is registered under its static identity
    (``DefiningClass.attr``), so observed pairs line up with
    :func:`repro.analysis.concur.static_lock_order` — which seeds the
    witness graph unless a pre-built *witness* is passed in."""
    if witness is None:
        from ..analysis.concur import static_lock_order

        witness = LockWitness(
            journal=system.obs.journal,
            registry=system.obs.registry,
            static_order=static_lock_order(),
        )
    journal = system.obs.journal
    journal._lock = witness.wrap("EventJournal._lock", journal._lock)
    tracer = system.obs.tracer
    tracer._lock = witness.wrap("Tracer._lock", tracer._lock)
    board = system.obs.health
    board._lock = witness.wrap("HealthBoard._lock", board._lock)
    backend = system.server.backend
    backend._lock = witness.wrap("Backend._lock", backend._lock)
    gateway = system.gateway
    gateway._quiesce_lock = witness.wrap(
        "LtapGateway._quiesce_lock", gateway._quiesce_lock
    )
    queue = system.um.queue
    if hasattr(queue, "_cond"):
        queue._cond = witness.wrap("ShardedUpdateQueue._cond", queue._cond)
    if hasattr(queue, "_lock"):
        queue._lock = witness.wrap("GlobalUpdateQueue._lock", queue._lock)
    pipeline = system.um.pipeline
    pipeline._pool_lock = witness.wrap(
        "UpdateSequencePipeline._pool_lock", pipeline._pool_lock
    )
    alerts = system.alerts
    alerts._lock = witness.wrap("AlertEngine._lock", alerts._lock)
    error_log = system.error_log
    error_log._lock = witness.wrap("ErrorLog._lock", error_log._lock)
    auditor = system.auditor
    auditor._lock = witness.wrap("ConsistencyAuditor._lock", auditor._lock)
    links = getattr(system, "links", None)
    if links is not None:
        # Safe only because MetaComm defers links.start() until after this
        # wrapping: swapping a Condition out from under a waiting thread
        # would split the waiters between two locks.
        links._cond = witness.wrap("LinkDispatcher._cond", links._cond)
        links._notify_cond = witness.wrap(
            "LinkDispatcher._notify_cond", links._notify_cond
        )
    return witness
