"""Thread-safe metrics primitives for the MetaComm pipeline.

The paper's evaluation (sections 4.4/5.4) argues that one serialized
pipeline keeps every repository convergent — but the seed code could only
*assert* that, not measure it: each component kept an ad-hoc
``statistics`` dict.  This module replaces those dicts with a small,
dependency-free metrics registry in the style of the Prometheus client
libraries:

* :class:`Counter` — monotonically increasing totals (fan-outs, DDUs);
* :class:`Gauge` — instantaneous values (queue depth);
* :class:`Histogram` — latency distributions with cumulative buckets
  (enqueue→dequeue wait, per-device apply time);

all three supporting **labels** (``counter.labels(device="pbx-west")``)
and all safe to update from the coordinator thread and client threads
concurrently.

A :class:`MetricsRegistry` owns a namespace of metrics; every MetaComm
system creates its own registry so tests and co-hosted systems never share
counters.  Module-level code with no instance to hang a registry on (the
lexpress interpreter) uses the process-wide :func:`global_registry`.

Registries can be created *disabled*: every update becomes a cheap no-op,
which is what the instrumentation-overhead smoke benchmark compares
against.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "global_registry",
]

#: Default histogram buckets — tuned for sub-millisecond in-process hops
#: up to multi-second synchronization runs (seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base class: a named family of children, one per label combination."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        registry: "MetricsRegistry | None" = None,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.registry = registry
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Unlabelled metrics have exactly one child, created eagerly so
            # the hot path never takes the family lock.
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    @property
    def enabled(self) -> bool:
        return self.registry is None or self.registry.enabled

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child bound to one label combination (created on demand)."""
        key = _label_key(self.labelnames, labels)
        # Double-checked create: the bare read is a hot-path fast lane; a
        # stale miss just falls into the locked setdefault, which dedupes.
        child = self._children.get(key)  # lexcheck: ignore[LX503]
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _child(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self._default

    def children(self) -> Iterator[tuple[tuple[str, ...], object]]:
        with self._lock:
            items = list(self._children.items())
        return iter(sorted(items))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class _CounterChild:
    __slots__ = ("_value", "_lock", "_metric")

    def __init__(self, metric: "Counter"):
        self._metric = metric
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # Scrape-side read of one float: torn-read-free under the GIL,
        # and a scrape racing an inc() legitimately sees either total.
        return self._value  # lexcheck: ignore[LX503]


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self)

    def inc(self, amount: float = 1.0) -> None:
        self._child().inc(amount)

    @property
    def value(self) -> float:
        return self._child().value

    def value_for(self, **labels: str) -> float:
        child = self._children.get(_label_key(self.labelnames, labels))
        return child.value if child is not None else 0.0

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(child.value for _, child in self.children())


class _GaugeChild:
    __slots__ = ("_value", "_lock", "_metric")

    def __init__(self, metric: "Gauge"):
        self._metric = metric
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not self._metric.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def track(self) -> "_GaugeTracker":
        return _GaugeTracker(self)

    @property
    def value(self) -> float:
        # Same benign race as _CounterChild.value: single-float snapshot.
        return self._value  # lexcheck: ignore[LX503]


class _GaugeTracker:
    """Context manager: +1 on entry, -1 on exit (in-flight tracking)."""

    __slots__ = ("_child",)

    def __init__(self, child: _GaugeChild):
        self._child = child

    def __enter__(self) -> "_GaugeTracker":
        self._child.inc()
        return self

    def __exit__(self, *exc_info) -> None:
        self._child.dec()


class Gauge(Metric):
    """An instantaneous value that can go up and down."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self)

    def set(self, value: float) -> None:
        self._child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._child().dec(amount)

    def track(self) -> _GaugeTracker:
        """Track a block's concurrency: the gauge counts blocks in flight."""
        return self._child().track()

    @property
    def value(self) -> float:
        return self._child().value


class _HistogramChild:
    __slots__ = ("_metric", "_lock", "counts", "sum", "count")

    def __init__(self, metric: "Histogram"):
        self._metric = metric
        self._lock = threading.Lock()
        self.counts = [0] * (len(metric.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._metric.enabled:
            return
        buckets = self._metric.buckets
        index = len(buckets)
        for i, bound in enumerate(buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def time(self) -> "_HistogramTimer":
        return _HistogramTimer(self)

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self.counts)
        out: list[tuple[float, int]] = []
        running = 0
        bounds = [*self._metric.buckets, _INF]
        for bound, count in zip(bounds, counts):
            running += count
            out.append((bound, running))
        return out


class _HistogramTimer:
    """Context manager observing the wall-clock time of its block."""

    def __init__(self, child: _HistogramChild):
        self._child = child
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._child.observe(time.perf_counter() - self._start)


class Histogram(Metric):
    """A latency/size distribution with cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        registry: "MetricsRegistry | None" = None,
        buckets: Iterable[float] | None = None,
    ):
        self.buckets = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        super().__init__(name, help, labelnames, registry)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self)

    def observe(self, value: float) -> None:
        self._child().observe(value)

    def time(self) -> _HistogramTimer:
        return self._child().time()

    @property
    def count(self) -> int:
        return self._child().count

    @property
    def sum(self) -> float:
        return self._child().sum

    def cumulative(self) -> list[tuple[float, int]]:
        return self._child().cumulative()


class MetricsRegistry:
    """A namespace of metrics; get-or-create semantics per name.

    Asking twice for the same name returns the same metric object, so
    several components can share a family (e.g. every device filter's
    ``metacomm_filter_events_total``) and differ only in labels.  Asking
    for an existing name with a different kind or label set raises.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- get-or-create -----------------------------------------------------

    def _register(self, cls, name, help, labelnames, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return iter(metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def value(self, name: str, **labels: str) -> float:
        """Convenience: current value of a counter/gauge child (0 if absent)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        if labels:
            child = metric._children.get(
                _label_key(metric.labelnames, labels)
            )
            return getattr(child, "value", 0.0) if child is not None else 0.0
        if isinstance(metric, Counter) and metric.labelnames:
            return metric.total()
        return getattr(metric, "value", 0.0)

    def snapshot(self) -> dict:
        """A JSON-able dump of every metric and child."""
        out: dict[str, dict] = {}
        for metric in self:
            entry: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": [],
            }
            for key, child in metric.children():
                labels = dict(zip(metric.labelnames, key))
                if metric.kind == "histogram":
                    entry["samples"].append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                [bound, count]
                                for bound, count in child.cumulative()
                            ],
                        }
                    )
                else:
                    entry["samples"].append(
                        {"labels": labels, "value": child.value}
                    )
            out[metric.name] = entry
        return out


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (used by module-level instrumentation)."""
    return _GLOBAL
