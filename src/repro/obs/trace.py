"""Per-update trace spans for the MetaComm pipeline.

Section 4.4's guarantee is end-to-end: an update enters at LTAP (or at a
device), flows through the global queue, fans out to every device filter,
and finishes with the supplemental LDAP write.  A :class:`Trace` follows
one :class:`~repro.lexpress.descriptor.UpdateDescriptor` journey through
those stages; each stage contributes a :class:`Span` with wall-clock
timing and free-form attributes.

The :class:`Tracer` keeps finished (and in-flight) traces in a bounded
ring buffer, so a long-running system can always answer "what did the
last N updates cost, stage by stage" without unbounded memory — the
lag/convergence monitoring that replication systems rely on (see
PAPERS.md: multimaster replication without quiescing, CRDT convergence).

The trace handle travels *with the session*: the LTAP gateway stamps it
into ``session.state[OBS_TRACE]`` when an update sequence starts, and the
Update Manager (which receives the same session via the trigger event)
picks it up from there — including across the hop onto the coordinator
thread in threaded mode.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

__all__ = ["OBS_TRACE", "Span", "Trace", "Tracer", "trace_span"]

#: Session-state key under which the active trace travels with an update.
OBS_TRACE = "obs.trace"

_trace_ids = itertools.count(1)


class Span:
    """One timed stage of an update's journey."""

    __slots__ = ("name", "started_at", "duration", "attributes")

    def __init__(
        self,
        name: str,
        started_at: float,
        duration: float = 0.0,
        attributes: dict | None = None,
    ):
        self.name = name
        #: Wall-clock start (``time.time()`` epoch seconds).
        self.started_at = started_at
        #: Elapsed seconds (``time.perf_counter()`` difference).
        self.duration = duration
        self.attributes = attributes if attributes is not None else {}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e6:.1f}us)"


class Trace:
    """All spans of one update descriptor's journey through the pipeline."""

    def __init__(self, trace_id: str, name: str, attributes: dict | None = None):
        self.trace_id = trace_id
        self.name = name
        self.attributes = attributes if attributes is not None else {}
        self.started_at = time.time()
        self._start = time.perf_counter()
        self.duration: float | None = None  # None while in flight
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes):
        """Context manager: time the enclosed block as one span."""
        span = Span(name, time.time(), attributes=dict(attributes))
        start = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.attributes.setdefault("error", str(exc))
            raise
        finally:
            span.duration = time.perf_counter() - start
            self._append(span)

    def record(self, name: str, duration: float, **attributes) -> Span:
        """Add a span whose timing was measured externally (e.g. the
        enqueue→dequeue wait, whose endpoints live in different frames)."""
        span = Span(
            name,
            time.time() - duration,
            duration=duration,
            attributes=dict(attributes),
        )
        self._append(span)
        return span

    def _append(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._start

    @property
    def finished(self) -> bool:
        return self.duration is not None

    # -- queries -----------------------------------------------------------

    def span_names(self) -> list[str]:
        with self._lock:
            return [span.name for span in self.spans]

    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def to_dict(self) -> dict:
        with self._lock:
            spans = [span.to_dict() for span in self.spans]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "started_at": self.started_at,
            "duration": self.duration,
            "spans": spans,
        }

    def __repr__(self) -> str:
        state = "done" if self.finished else "open"
        return (
            f"Trace({self.trace_id!r}, {self.name!r}, "
            # Diagnostic repr: len() of a list is atomic; a repr racing a
            # span append may be off by one, which a debugger tolerates.
            f"{len(self.spans)} spans, {state})"  # lexcheck: ignore[LX503]
        )


class Tracer:
    """Bounded ring-buffer store of traces."""

    def __init__(self, capacity: int = 256, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def start(self, name: str, **attributes) -> Trace | None:
        """Open a new trace (``None`` when tracing is disabled)."""
        if not self.enabled:
            return None
        trace = Trace(f"trace-{next(_trace_ids)}", name, dict(attributes))
        with self._lock:
            self._traces.append(trace)
        return trace

    def traces(self, name: str | None = None) -> list[Trace]:
        with self._lock:
            traces = list(self._traces)
        if name is not None:
            traces = [t for t in traces if t.name == name]
        return traces

    def last(self, name: str | None = None) -> Trace | None:
        matching = self.traces(name)
        return matching[-1] if matching else None

    def finish_open(self) -> int:
        """Close every still-open trace; returns how many were closed.

        Exporters call this before dumping so the output never shows
        dangling in-flight spans — an open trace at dump time means the
        workload finished without its owner closing it (or is genuinely
        mid-flight), and either way the dump should be self-consistent."""
        closed = 0
        for trace in self.traces():
            if not trace.finished:
                trace.finish()
                closed += 1
        return closed

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces())


@contextmanager
def trace_span(trace: Trace | None, name: str, **attributes):
    """``trace.span(...)`` when a trace is active, else a cheap no-op.

    Yields the :class:`Span` (or ``None``), so call sites can attach
    outcome attributes without re-checking whether tracing is on.
    """
    if trace is None:
        yield None
        return
    with trace.span(name, **attributes) as span:
        yield span
