"""Backward-compatible ``statistics`` views over registry metrics.

The seed code exposed an ad-hoc ``statistics`` dict on each component
(``UpdateManager``, ``GlobalUpdateQueue``, ``LtapGateway``, the filters,
``LdapServer``); tests, benchmarks and examples read them — some with
exact dict equality.  The metrics registry is now the single source of
truth, and ``statistics`` became a read-only live view that *derives* the
legacy keys from registry metrics, so every pre-existing consumer keeps
working unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable

__all__ = ["StatsView"]


def _as_int(value: float) -> int | float:
    """Counters are floats internally; legacy consumers expect ints."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class StatsView(Mapping):
    """A read-only, dict-like live view: key → callable producing a value.

    Compares equal to a plain dict with the same items, and renders like
    one, so seed assertions such as
    ``queue.statistics == {"enqueued": 1, "processed": 1}`` and
    ``print(system.um.statistics)`` behave exactly as before.
    """

    def __init__(self, getters: dict[str, Callable[[], float]]):
        self._getters = dict(getters)

    def __getitem__(self, key: str) -> int | float:
        return _as_int(self._getters[key]())

    def __iter__(self):
        return iter(self._getters)

    def __len__(self) -> int:
        return len(self._getters)

    def __eq__(self, other) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def to_dict(self) -> dict:
        return dict(self)

    # Mapping deliberately unhashable once __eq__ is defined.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return repr(dict(self))
