"""The MetaComm integrated schema and standard mapping library."""

from .integrated import (
    DEFINITY_ATTRIBUTES,
    MESSAGING_ATTRIBUTES,
    METACOMM_ATTRIBUTES,
    PERSON_CLASSES,
    build_integrated_schema,
    person_entry,
    uses_messaging,
    uses_pbx,
)
from .mappings import (
    DEFAULT_PHONE_PREFIX,
    render_mp_pair,
    render_pbx_pair,
    standard_mappings,
)
from .x500 import STANDARD_ATTRIBUTES, build_standard_schema

__all__ = [
    "DEFAULT_PHONE_PREFIX",
    "DEFINITY_ATTRIBUTES",
    "MESSAGING_ATTRIBUTES",
    "METACOMM_ATTRIBUTES",
    "PERSON_CLASSES",
    "STANDARD_ATTRIBUTES",
    "build_integrated_schema",
    "build_standard_schema",
    "person_entry",
    "render_mp_pair",
    "render_pbx_pair",
    "standard_mappings",
    "uses_messaging",
    "uses_pbx",
]
