"""The MetaComm integrated schema.

Section 5.2 describes the design the team settled on after the lack of
LDAP transactions killed the child-entry approach:

* one **auxiliary** object class per device, carrying the user's
  device-specific attributes directly on the person entry so every
  read/write unit is a single object;
* **unique attribute names** per auxiliary class (``definityExtension``,
  ``mpMailboxId``, ...) so fields can be attributed to their class;
* auxiliary classes have **no mandatory attributes** (LDAP forbids it), so
  the presence of ``definityUser`` only means the person *may* use a PBX —
  code must check the extension field itself.

The bookkeeping attribute ``lastUpdater`` implements section 5.4's
Originator scheme.
"""

from __future__ import annotations

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.schema import AttributeType, ClassKind, ObjectClass, Schema
from .x500 import STANDARD_ATTRIBUTES, define_standard_classes

#: Attributes added for the Definity auxiliary class — names are unique to
#: the class, per section 5.2.
DEFINITY_ATTRIBUTES = (
    AttributeType("definityExtension"),
    AttributeType("definityName"),
    AttributeType("definityRoom"),
    AttributeType("definityBuilding"),
    AttributeType("definityPort"),
    AttributeType("definityCOR"),
    AttributeType("definityCOS"),
    AttributeType("definityType"),
    AttributeType("definityCoveragePath"),
    AttributeType("definityPbxName", single_value=True),
)

#: Attributes added for the messaging-platform auxiliary class.
MESSAGING_ATTRIBUTES = (
    AttributeType("mpMailboxId", single_value=True),
    AttributeType("mpSubscriberName"),
    AttributeType("mpCOS"),
    AttributeType("mpLanguage"),
)

#: MetaComm bookkeeping.
METACOMM_ATTRIBUTES = (
    AttributeType("lastUpdater", single_value=True),
    AttributeType("metacommError"),
    AttributeType("metacommErrorTime"),
    AttributeType("metacommErrorTarget"),
)


def build_integrated_schema(strict: bool = True) -> Schema:
    """The full MetaComm schema: X.500 classes + device auxiliaries."""
    schema = Schema(strict=strict)
    for group in (
        STANDARD_ATTRIBUTES,
        DEFINITY_ATTRIBUTES,
        MESSAGING_ATTRIBUTES,
        METACOMM_ATTRIBUTES,
    ):
        for attribute in group:
            schema.define_attribute(attribute)
    define_standard_classes(schema)

    schema.define_class(
        ObjectClass(
            "definityUser",
            kind=ClassKind.AUXILIARY,
            sup="top",
            may=tuple(a.name for a in DEFINITY_ATTRIBUTES),
            description="User data held in a Definity PBX (one aux class "
            "per device, section 5.2)",
        )
    )
    schema.define_class(
        ObjectClass(
            "messagingUser",
            kind=ClassKind.AUXILIARY,
            sup="top",
            may=tuple(a.name for a in MESSAGING_ATTRIBUTES),
            description="User data held in the voice messaging platform",
        )
    )
    schema.define_class(
        ObjectClass(
            "metacommObject",
            kind=ClassKind.AUXILIARY,
            sup="top",
            may=tuple(a.name for a in METACOMM_ATTRIBUTES),
            description="MetaComm bookkeeping (Originator, error log)",
        )
    )
    # Error-log entries (section 4.4: failures are logged into the directory).
    schema.define_class(
        ObjectClass(
            "metacommErrorEntry",
            sup="top",
            must=("cn",),
            may=("metacommError", "metacommErrorTime", "metacommErrorTarget",
                 "description"),
        )
    )
    return schema


#: Object classes every MetaComm-managed person entry carries.
PERSON_CLASSES = (
    "top",
    "person",
    "organizationalPerson",
    "inetOrgPerson",
    "definityUser",
    "messagingUser",
    "metacommObject",
)


def person_entry(
    dn: DN | str,
    cn: str,
    sn: str,
    **attributes: str | list[str],
) -> Entry:
    """Build a schema-complete person entry for the integrated DIT."""
    attrs: dict[str, object] = {
        "objectClass": list(PERSON_CLASSES),
        "cn": cn,
        "sn": sn,
    }
    attrs.update(attributes)
    return Entry(dn, attrs)  # type: ignore[arg-type]


def uses_pbx(entry: Entry) -> bool:
    """Section 5.2: the auxiliary class only says the person *may* use the
    device — the extension field decides."""
    return entry.has("definityExtension")


def uses_messaging(entry: Entry) -> bool:
    return entry.has("mpMailboxId")
