"""Standard X.500/LDAP schema elements.

The subset of the X.500 person/organization class family that MetaComm's
integrated schema extends (paper section 4: "The integrated schema of
MetaComm is an extension of a standard X.500 class that describes
people").
"""

from __future__ import annotations

from ..ldap.schema import AttributeType, ClassKind, ObjectClass, Schema

STANDARD_ATTRIBUTES = (
    AttributeType("cn", aliases=("commonName",)),
    AttributeType("sn", aliases=("surname",)),
    AttributeType("givenName"),
    AttributeType("displayName", single_value=True),
    AttributeType("o", aliases=("organizationName",)),
    AttributeType("ou", aliases=("organizationalUnitName",)),
    AttributeType("telephoneNumber"),
    AttributeType("facsimileTelephoneNumber"),
    AttributeType("mail", aliases=("rfc822Mailbox",)),
    AttributeType("uid", aliases=("userid",)),
    AttributeType("userPassword"),
    AttributeType("roomNumber"),
    AttributeType("departmentNumber"),
    AttributeType("employeeNumber", single_value=True),
    AttributeType("employeeType"),
    AttributeType("title"),
    AttributeType("description"),
    AttributeType("seeAlso"),
    AttributeType("postalAddress"),
    AttributeType("l", aliases=("localityName",)),
    AttributeType("street"),
    AttributeType("manager"),
)


def define_standard_classes(schema: Schema) -> None:
    schema.define_class(ObjectClass("top", kind=ClassKind.ABSTRACT))
    schema.define_class(
        ObjectClass(
            "person",
            sup="top",
            must=("cn", "sn"),
            may=("telephoneNumber", "userPassword", "description", "seeAlso"),
        )
    )
    schema.define_class(
        ObjectClass(
            "organizationalPerson",
            sup="person",
            may=("ou", "title", "roomNumber", "postalAddress", "l", "street",
                 "facsimileTelephoneNumber"),
        )
    )
    schema.define_class(
        ObjectClass(
            "inetOrgPerson",
            sup="organizationalPerson",
            may=(
                "givenName",
                "displayName",
                "mail",
                "uid",
                "employeeNumber",
                "employeeType",
                "departmentNumber",
                "manager",
            ),
        )
    )
    schema.define_class(
        ObjectClass("organization", sup="top", must=("o",), may=("description", "l"))
    )
    schema.define_class(
        ObjectClass(
            "organizationalUnit", sup="top", must=("ou",), may=("description", "l")
        )
    )


def build_standard_schema(strict: bool = True) -> Schema:
    """A Schema with the plain X.500 classes only."""
    schema = Schema(strict=strict)
    for attribute in STANDARD_ATTRIBUTES:
        schema.define_attribute(attribute)
    define_standard_classes(schema)
    return schema
