"""Web-Based Administration: the single point of administration of Figure 1."""

from .app import UserRow, WebAdmin
from .forms import FIELDS_BY_NAME, USER_FORM, FormField, FormValidationError, validate

__all__ = [
    "FIELDS_BY_NAME",
    "FormField",
    "FormValidationError",
    "USER_FORM",
    "UserRow",
    "WebAdmin",
    "validate",
]
