"""Web-Based Administration (WBA).

Figure 1's client application: "a single point of administration for the
telecom devices. ... any LDAP tool can contact LTAP to administer the
telecom devices, for example, any LDAP enabled Web browser."  The WBA here
is that tool, minus the browser chrome: form in, LDAP operations through
LTAP out, with a plain-text renderer standing in for HTML.

It also implements the hoteling application of section 4.5 / reference
[2]: shared workspaces reserved as needed, realized by redirecting a
person's extension to a room (and its port) and back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metacomm import MetaComm
from ..ldap.client import LdapConnection
from ..ldap.dn import DN, Rdn
from ..ldap.protocol import Modification, Scope
from ..ldap.result import LdapError, ResultCode
from ..schemas.integrated import PERSON_CLASSES
from .forms import FIELDS_BY_NAME, USER_FORM, validate


@dataclass(frozen=True)
class UserRow:
    """One row of the WBA user listing."""

    dn: str
    name: str
    extension: str
    phone: str
    room: str
    mailbox: str


class WebAdmin:
    """The WBA application object (one per operator session)."""

    def __init__(self, system: MetaComm, operator: str = "wba"):
        self.system = system
        self.operator = operator
        self.connection: LdapConnection = system.connection()

    # -- listing / viewing -------------------------------------------------------

    def list_users(self, filter_text: str = "(objectClass=person)") -> list[UserRow]:
        entries = self.connection.search(
            self.system.suffix, Scope.SUB, filter_text
        )
        rows = []
        for entry in entries:
            if "person" not in [c.lower() for c in entry.object_classes]:
                continue
            rows.append(
                UserRow(
                    dn=str(entry.dn),
                    name=entry.first("cn", "") or "",
                    extension=entry.first("definityExtension", "") or "",
                    phone=entry.first("telephoneNumber", "") or "",
                    room=entry.first("definityRoom", "") or "",
                    mailbox=entry.first("mpMailboxId", "") or "",
                )
            )
        return sorted(rows, key=lambda r: r.name)

    def user_form(self, dn: DN | str) -> dict[str, str]:
        """Current form values for one user (what the browser renders)."""
        entry = self.connection.get(dn)
        return {
            f.name: entry.first(f.attribute, "") or "" for f in USER_FORM
        }

    # -- create / update / delete ----------------------------------------------------

    def create_user(self, organization: str | None, **values: str) -> str:
        """Submit the new-user form; returns the created DN."""
        cleaned = validate(values, require_mandatory=True)
        parent = (
            self.system.suffix.child(f"o={organization}")
            if organization
            else self.system.suffix
        )
        dn = parent.child(Rdn.single("cn", cleaned["full_name"]))
        attrs: dict[str, object] = {"objectClass": list(PERSON_CLASSES)}
        for name, value in cleaned.items():
            if value:
                attrs[FIELDS_BY_NAME[name].attribute] = value
        self.connection.add(dn, attrs)  # type: ignore[arg-type]
        return str(dn)

    def update_user(self, dn: DN | str, **values: str) -> None:
        """Submit the edit form: empty string clears a field."""
        cleaned = validate(values, require_mandatory=False)
        entry = self.connection.get(dn)
        mods: list[Modification] = []
        for name, value in cleaned.items():
            attribute = FIELDS_BY_NAME[name].attribute
            if value:
                if entry.get(attribute) != [value]:
                    mods.append(Modification.replace(attribute, value))
            elif entry.has(attribute):
                mods.append(Modification.delete(attribute))
        rename = next(
            (m for m in mods if m.attribute.lower() == "cn"), None
        )
        if rename is not None:
            mods.remove(rename)
            self.connection.modify_rdn(dn, Rdn.single("cn", rename.values[0]))
            dn = DN.parse(str(dn)).parent().child(
                Rdn.single("cn", rename.values[0])
            )
        if mods:
            self.connection.modify(dn, mods)

    def delete_user(self, dn: DN | str) -> None:
        self.connection.delete(dn)

    # -- hoteling (section 4.5) ------------------------------------------------------

    def hotel_checkin(self, dn: DN | str, room: str, port: str | None = None) -> None:
        """Redirect a person's extension to a visited workspace."""
        entry = self.connection.get(dn)
        if not entry.has("definityExtension"):
            raise LdapError(
                ResultCode.UNWILLING_TO_PERFORM,
                f"{dn} has no PBX extension to redirect",
            )
        mods = [Modification.replace("definityRoom", room)]
        if port:
            mods.append(Modification.replace("definityPort", port))
        # Remember home room for checkout, in the description field.
        home = entry.first("definityRoom", "")
        if home and not entry.has("description"):
            mods.append(Modification.add("description", f"home-room:{home}"))
        self.connection.modify(dn, mods)

    def hotel_checkout(self, dn: DN | str) -> None:
        """Restore the person's home workspace."""
        entry = self.connection.get(dn)
        home = None
        for value in entry.get("description"):
            if value.startswith("home-room:"):
                home = value.split(":", 1)[1]
        mods: list[Modification] = []
        if home:
            mods.append(Modification.replace("definityRoom", home))
            mods.append(Modification.delete("description", f"home-room:{home}"))
        elif entry.has("definityRoom"):
            mods.append(Modification.delete("definityRoom"))
        if entry.has("definityPort"):
            mods.append(Modification.delete("definityPort"))
        if mods:
            self.connection.modify(dn, mods)

    # -- rendering ----------------------------------------------------------------------

    def render_user_list(self, rows: list[UserRow] | None = None) -> str:
        rows = self.list_users() if rows is None else rows
        lines = [
            f"{'Name':<24}{'Ext':<7}{'Phone':<18}{'Room':<9}{'Mailbox':<10}",
            "-" * 68,
        ]
        for row in rows:
            lines.append(
                f"{row.name:<24}{row.extension:<7}{row.phone:<18}"
                f"{row.room:<9}{row.mailbox:<10}"
            )
        return "\n".join(lines)

    def render_user_form(self, dn: DN | str) -> str:
        values = self.user_form(dn)
        lines = [f"User form — {dn}", "-" * 40]
        for form_field in USER_FORM:
            marker = " (read-only)" if form_field.read_only else ""
            lines.append(
                f"{form_field.label + ':':<20}{values[form_field.name]}{marker}"
            )
        return "\n".join(lines)
