"""Form definitions for the Web-Based Administration tool.

The WBA presents one integrated user form; each field maps to an attribute
of the integrated LDAP schema.  Validation here is deliberately friendlier
than the devices' own (the paper's point: the web interface "compares
favorably with proprietary interfaces")."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable


class FormValidationError(ValueError):
    """One or more form fields failed validation."""

    def __init__(self, problems: dict[str, str]):
        super().__init__("; ".join(f"{k}: {v}" for k, v in sorted(problems.items())))
        self.problems = problems


@dataclass(frozen=True)
class FormField:
    """One field of the user form."""

    name: str
    label: str
    attribute: str  # integrated-schema attribute this field reads/writes
    required: bool = False
    read_only: bool = False
    validator: Callable[[str], str | None] | None = None


def _extension_ok(value: str) -> str | None:
    if not re.fullmatch(r"[0-9]{3,5}", value):
        return "extension must be 3-5 digits"
    return None


def _cos_ok(value: str) -> str | None:
    if not re.fullmatch(r"[0-9]{1,2}", value):
        return "class of service must be 1-2 digits"
    return None


def _phone_ok(value: str) -> str | None:
    if not re.fullmatch(r"\+?[0-9 ()\-]{7,20}", value):
        return "telephone number looks malformed"
    return None


USER_FORM: tuple[FormField, ...] = (
    FormField("full_name", "Full name", "cn", required=True),
    FormField("surname", "Surname", "sn", required=True),
    FormField("mail", "E-mail", "mail"),
    FormField("phone", "Telephone number", "telephoneNumber", validator=_phone_ok),
    FormField("extension", "PBX extension", "definityExtension",
              validator=_extension_ok),
    FormField("room", "Room", "definityRoom"),
    FormField("building", "Building", "definityBuilding"),
    FormField("cos", "Class of service", "definityCOS", validator=_cos_ok),
    FormField("mailbox", "Voice mailbox", "mpMailboxId", read_only=True),
    FormField("updated_by", "Last updated by", "lastUpdater", read_only=True),
)

FIELDS_BY_NAME = {f.name: f for f in USER_FORM}


def validate(values: dict[str, str], require_mandatory: bool = True) -> dict[str, str]:
    """Validate submitted values; returns the cleaned dict or raises."""
    problems: dict[str, str] = {}
    cleaned: dict[str, str] = {}
    for name, raw in values.items():
        form_field = FIELDS_BY_NAME.get(name)
        if form_field is None:
            problems[name] = "unknown form field"
            continue
        if form_field.read_only:
            problems[name] = "field is read-only"
            continue
        value = raw.strip()
        if value and form_field.validator is not None:
            problem = form_field.validator(value)
            if problem:
                problems[name] = problem
                continue
        cleaned[name] = value
    if require_mandatory:
        for form_field in USER_FORM:
            if form_field.required and not cleaned.get(form_field.name):
                problems.setdefault(form_field.name, "required")
    if problems:
        raise FormValidationError(problems)
    return cleaned
