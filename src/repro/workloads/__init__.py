"""Synthetic workload generation (the paper's data substitute)."""

from .names import GIVEN_NAMES, ORGANIZATIONS, SURNAMES, NameGenerator
from .population import (
    PersonSpec,
    make_population,
    populate_via_ldap,
    populate_via_pbx,
)
from .updates import (
    UpdateEvent,
    UpdatePath,
    apply_event,
    apply_stream,
    make_stream,
)

__all__ = [
    "GIVEN_NAMES",
    "NameGenerator",
    "ORGANIZATIONS",
    "PersonSpec",
    "SURNAMES",
    "UpdateEvent",
    "UpdatePath",
    "apply_event",
    "apply_stream",
    "make_population",
    "make_stream",
    "populate_via_ldap",
    "populate_via_pbx",
]
