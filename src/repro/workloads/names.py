"""Deterministic synthetic name/identity generation.

The paper's evaluation ran against real corporate data we do not have; the
workload generator substitutes a seeded synthetic population with the same
shape: people with names (including the dirty variants lexpress patterns
exist for), extensions drawn from PBX dial plans, and organizational
placement.  Everything is seeded — benchmarks are reproducible run to run.
"""

from __future__ import annotations

import random

GIVEN_NAMES = (
    "John", "Jill", "Pat", "Tim", "Ana", "Wei", "Ravi", "Maria", "Luke",
    "Qian", "Daniel", "Joann", "Juliana", "Lalit", "Hector", "Gavin",
    "Julian", "Robert", "Nina", "Omar", "Sofia", "Yuki", "Ivan", "Lena",
)

SURNAMES = (
    "Doe", "Lu", "Smith", "Dickens", "Freire", "Lieuwen", "Ordille",
    "Garg", "Holder", "Urroz", "Michael", "Orbach", "Tucker", "Ye",
    "Arlein", "Chen", "Patel", "Garcia", "Kim", "Novak", "Okafor",
)

ORGANIZATIONS = ("Marketing", "Accounting", "R&D", "DEN Group", "Operations")


class NameGenerator:
    """Seeded generator of unique person identities."""

    def __init__(self, seed: int = 1999):
        self.random = random.Random(seed)
        self._used: set[str] = set()

    def full_name(self) -> tuple[str, str]:
        """A unique (given, surname) pair; suffixes disambiguate overflow."""
        for _ in range(10_000):
            given = self.random.choice(GIVEN_NAMES)
            surname = self.random.choice(SURNAMES)
            key = f"{given} {surname}"
            if key not in self._used:
                self._used.add(key)
                return given, surname
        serial = len(self._used) + 1
        given = self.random.choice(GIVEN_NAMES)
        surname = f"{self.random.choice(SURNAMES)}{serial}"
        self._used.add(f"{given} {surname}")
        return given, surname

    def pbx_name(self, given: str, surname: str) -> str:
        """The Definity 'Last, First' convention — sometimes dirty."""
        roll = self.random.random()
        if roll < 0.85:
            return f"{surname}, {given}"
        if roll < 0.92:
            return f"{surname},{given}"  # missing space: dirty but mappable
        if roll < 0.97:
            return f"{given} {surname}"  # entered the wrong way round
        return surname  # surname only

    def organization(self) -> str:
        return self.random.choice(ORGANIZATIONS)

    def room(self) -> str:
        return (
            f"{self.random.randint(1, 6)}"
            f"{self.random.choice('ABCDEF')}-{self.random.randint(100, 699)}"
        )

    def cos(self) -> str:
        return str(self.random.randint(1, 4))
