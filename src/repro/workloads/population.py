"""Population builders: load N users into a MetaComm deployment.

Two entry paths, matching the two arrows of Figure 1:

* :func:`populate_via_ldap` — users created through LTAP (the WBA path);
* :func:`populate_via_pbx` — stations administered on the switch first
  (legacy reality), then pulled in by synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metacomm import MetaComm
from ..schemas.integrated import PERSON_CLASSES
from .names import NameGenerator


@dataclass(frozen=True)
class PersonSpec:
    """One synthetic person, ready for either entry path."""

    given: str
    surname: str
    cn: str
    pbx_name: str
    extension: str
    room: str
    cos: str
    organization: str


def make_population(
    count: int,
    seed: int = 1999,
    extension_start: int = 4000,
) -> list[PersonSpec]:
    """Generate *count* unique synthetic people."""
    names = NameGenerator(seed)
    people = []
    for i in range(count):
        given, surname = names.full_name()
        people.append(
            PersonSpec(
                given=given,
                surname=surname,
                cn=f"{given} {surname}",
                pbx_name=f"{surname}, {given}",
                extension=str(extension_start + i),
                room=names.room(),
                cos=names.cos(),
                organization=names.organization(),
            )
        )
    return people


def populate_via_ldap(system: MetaComm, people: list[PersonSpec]) -> int:
    """Create person entries through LTAP; devices follow automatically."""
    conn = system.connection()
    created = 0
    for person in people:
        conn.add(
            system.suffix.child(f"cn={person.cn}"),
            {
                "objectClass": list(PERSON_CLASSES),
                "cn": person.cn,
                "sn": person.surname,
                "givenName": person.given,
                "definityExtension": person.extension,
                "definityRoom": person.room,
                "definityCOS": person.cos,
            },
        )
        created += 1
    return created


def populate_via_pbx(
    system: MetaComm, people: list[PersonSpec], pbx_name: str | None = None
) -> int:
    """Administer stations directly on the switch (no MetaComm involved),
    e.g. to set up an initial-load scenario.  Writes behind the filter's
    back so no DDU notifications fire."""
    pbx = system.pbx(pbx_name)
    created = 0
    for person in people:
        if not pbx.manages_extension(person.extension):
            continue
        pbx._records[person.extension] = {
            "Extension": person.extension,
            "Name": person.pbx_name[:27],
            "Room": person.room[:10],
            "COS": person.cos,
        }
        created += 1
    return created
