"""Update-stream generation: mixed LDAP / DDU workloads.

The paper's consistency argument (section 4.4) rests on a workload
property: "a small number of DDUs are made against any given entry per
day", so LDAP-originated and device-originated updates to the same entry
rarely race.  The stream generator makes that property a dial: the
``ddu_fraction`` and ``conflict_probability`` parameters let experiments
sweep from the paper's regime to the adversarial one the paper says the
technique "would not work well" in.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..core.metacomm import MetaComm
from ..ldap.protocol import Modification
from .population import PersonSpec


class UpdatePath(enum.Enum):
    LDAP = "ldap"  # through LTAP (WBA, browser, ...)
    DDU = "ddu"    # directly on the device (craft terminal)


@dataclass(frozen=True)
class UpdateEvent:
    """One update in a generated stream."""

    path: UpdatePath
    person: PersonSpec
    field: str       # "room" | "cos" | "building"
    value: str


_FIELDS = ("room", "cos", "building")

_LDAP_ATTR = {"room": "definityRoom", "cos": "definityCOS", "building": "definityBuilding"}
_PBX_FIELD = {"room": "Room", "cos": "COS", "building": "Building"}


def make_stream(
    people: list[PersonSpec],
    count: int,
    ddu_fraction: float = 0.2,
    conflict_probability: float = 0.0,
    seed: int = 7,
) -> list[UpdateEvent]:
    """Generate *count* update events over *people*.

    ``conflict_probability`` is the chance that an event targets the same
    person as the previous event (modelling racing update paths);
    otherwise targets are drawn uniformly."""
    rng = random.Random(seed)
    events: list[UpdateEvent] = []
    previous: PersonSpec | None = None
    for i in range(count):
        if previous is not None and rng.random() < conflict_probability:
            person = previous
        else:
            person = rng.choice(people)
        path = UpdatePath.DDU if rng.random() < ddu_fraction else UpdatePath.LDAP
        field = rng.choice(_FIELDS)
        if field == "cos":
            value = str(rng.randint(1, 9))
        elif field == "room":
            value = f"{rng.randint(1, 9)}{rng.choice('ABC')}-{rng.randint(100, 999)}"
        else:
            value = rng.choice(("MH", "HO", "WST", "NR"))
        events.append(UpdateEvent(path, person, field, value))
        previous = person
    return events


def apply_event(system: MetaComm, event: UpdateEvent) -> None:
    """Apply one event through its designated path."""
    if event.path is UpdatePath.LDAP:
        conn = system.connection()
        dn = system.suffix.child(f"cn={event.person.cn}")
        conn.modify(
            dn, [Modification.replace(_LDAP_ATTR[event.field], event.value)]
        )
    else:
        pbx = _pbx_for(system, event.person.extension)
        pbx.modify(
            event.person.extension,
            {_PBX_FIELD[event.field]: event.value},
            agent="craft",
        )


def _pbx_for(system: MetaComm, extension: str):
    for pbx in system.pbxes.values():
        if pbx.manages_extension(extension):
            return pbx
    raise KeyError(f"no PBX manages extension {extension}")


def apply_stream(system: MetaComm, events: list[UpdateEvent]) -> int:
    """Apply a whole stream; returns how many events were applied."""
    for event in events:
        apply_event(system, event)
    return len(events)
